//! Offline stand-in for `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` wrappers over the `std` primitives. A poisoned `std` lock is
//! recovered transparently (parking_lot locks never poison), which is
//! exactly the semantics the streaming monitor relies on when a detector
//! thread panics while holding the status lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
