//! Offline stand-in for the `bytes` subset used by `am-dsp::io`:
//! `Bytes`/`BytesMut` as thin `Vec<u8>` wrappers plus the little-endian
//! `Buf`/`BufMut` accessors the signal container format needs.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (little-endian subset). Reading past the end
/// panics, matching the real crate's contract; `am-dsp::io` length-checks
/// before every read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a `u16`, little-endian.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"AMSG");
        buf.put_u16_le(1);
        buf.put_u32_le(7);
        buf.put_u64_le(99);
        buf.put_f64_le(-2.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"AMSG");
        assert_eq!(r.get_u16_le(), 1);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 99);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
