//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact `usize` or a half-open
/// `Range<usize>`.
pub trait SizeRange {
    /// Half-open `(min, max)` bounds on the length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end.max(self.start + 1))
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generates vectors with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.max > self.min {
            rng.gen_range(self.min..self.max)
        } else {
            self.min
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
