//! Offline stand-in for the `proptest` subset this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, numeric-range and `collection::vec`
//! strategies, and tuple strategies.
//!
//! Semantics: each property test runs `cases` deterministic random cases
//! seeded from the test's module path and name. There is no shrinking —
//! a failing case reports its inputs via the assertion message instead.

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite fast while
        // still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for a named test (FNV-1a over the name).
#[doc(hidden)]
pub fn __rng_for(name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

/// The commonly glob-imported prelude.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, v in proptest::collection::vec(0usize..9, 1..8)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Property assertion; this stub forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; forwards to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vectors_sample_in_bounds(
            x in -2.0f64..3.0,
            n in 1usize..10,
            v in crate::collection::vec(0.0f64..1.0, 2..6),
            pair in (0.0f64..1.0, 5usize..9),
        ) {
            crate::prop_assert!((-2.0..3.0).contains(&x));
            crate::prop_assert!((1..10).contains(&n));
            crate::prop_assert!(v.len() >= 2 && v.len() < 6);
            crate::prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
            crate::prop_assert!((0.0..1.0).contains(&pair.0));
            crate::prop_assert!((5..9).contains(&pair.1));
        }

        #[test]
        fn exact_length_vec(v in crate::collection::vec(-1.0f64..1.0, 7)) {
            crate::prop_assert_eq!(v.len(), 7);
        }
    }
}
