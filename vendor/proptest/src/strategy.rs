//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn sample(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.start as u64..self.end as u64) as u32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut StdRng) -> i64 {
        let span = (self.end - self.start).max(1) as u64;
        self.start + (rng.gen::<u64>() % span) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut StdRng) -> i32 {
        let span = (self.end as i64 - self.start as i64).max(1) as u64;
        (self.start as i64 + (rng.gen::<u64>() % span) as i64) as i32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Always produces a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
