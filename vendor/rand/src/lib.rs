//! Offline drop-in replacement for the subset of the `rand` 0.8 API used
//! by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, dependency-free implementation: a seeded xoshiro256**
//! generator behind the familiar `StdRng` / `SeedableRng` / `Rng` names.
//! Streams are deterministic for a given seed but are **not** the same
//! streams the real `rand` crate produces; everything in this repository
//! that consumes randomness asserts statistical properties rather than
//! exact draws, so the substitution is behavior-preserving.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for usize {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly (`rand`'s `gen` with the `Standard`
    /// distribution).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from a `Range` via [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws one value from `range`; callers must pass a non-empty range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u: f64 = rng.gen();
        range.start + u * (range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + rng.next_u64() % span
    }
}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded xoshiro256** generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
