//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds offline, so serialization is annotated but not
//! materialized: the derives accept (and ignore) `#[serde(...)]`
//! attributes and expand to nothing. Code that merely *derives* the
//! traits keeps compiling unchanged; nothing in the workspace calls a
//! serializer at runtime.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
