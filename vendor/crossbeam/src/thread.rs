//! Scoped threads with the `crossbeam::scope` calling convention,
//! implemented over `std::thread::scope`.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Scope handle passed to the closure given to [`scope`]; spawned
/// closures receive it again as their argument (crossbeam convention).
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    panicked: Arc<AtomicBool>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; panics inside it are caught and surfaced
    /// as the `Err` of the enclosing [`scope`] call.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, Option<T>>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let std_scope = self.std;
        let panicked = Arc::clone(&self.panicked);
        std_scope.spawn(move || {
            let child = Scope {
                std: std_scope,
                panicked: Arc::clone(&panicked),
            };
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&child))) {
                Ok(v) => Some(v),
                Err(_) => {
                    panicked.store(true, Ordering::SeqCst);
                    None
                }
            }
        })
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// joins them all before returning.
///
/// # Errors
///
/// Returns `Err` if any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panicked = Arc::new(AtomicBool::new(false));
    let observed = Arc::clone(&panicked);
    let result = std::thread::scope(|s| {
        let wrapper = Scope {
            std: s,
            panicked,
        };
        f(&wrapper)
    });
    if observed.load(Ordering::SeqCst) {
        Err(Box::new("a scoped thread panicked") as Box<dyn Any + Send>)
    } else {
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sum = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panic_in_child_is_reported() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
