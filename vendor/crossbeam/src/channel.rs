//! MPMC channels with the `crossbeam-channel` API surface used by this
//! workspace: `unbounded`, `bounded`, cloneable `Sender`/`Receiver`,
//! blocking and non-blocking send/recv, timeouts, and iterator drains.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on a channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl Error for RecvTimeoutError {}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when
/// full. A capacity of zero is promoted to one (this stub does not
/// implement rendezvous channels, and the workspace never requests one).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
    shared
        .inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or every receiver is dropped.
    ///
    /// # Errors
    ///
    /// Returns the message if all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = lock(&self.shared);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// Returns the message if the channel is full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = lock(&self.shared);
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock(&self.shared);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] once all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.shared);
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline,
    /// [`RecvTimeoutError::Disconnected`] once empty and disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.shared);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = lock(&self.shared);
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Non-blocking drain, see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking drain, see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let t = thread::spawn(move || tx.send(1).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx1.try_iter().collect();
        let b: Vec<i32> = rx2.try_iter().collect();
        assert_eq!(a.len() + b.len(), 100);
    }
}
