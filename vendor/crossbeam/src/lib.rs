//! Offline stand-in for the `crossbeam` subset this workspace uses:
//! multi-producer multi-consumer channels (bounded and unbounded) and
//! scoped threads. Implemented over `std` primitives (`Mutex` +
//! `Condvar`, `std::thread::scope`) with the same surface semantics:
//! cloneable senders *and* receivers, disconnect detection on both ends,
//! and blocking `send` on a full bounded channel (backpressure).

pub mod channel;
pub mod thread;

pub use thread::scope;
