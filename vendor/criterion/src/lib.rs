//! Offline stand-in for the `criterion` subset the `bench` crate uses.
//!
//! Each benchmark closure is timed with a fixed, small iteration budget
//! and a one-line wall-clock summary is printed — enough to compare
//! kernels locally without the statistical machinery (or the crates.io
//! dependency tree) of real Criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration budget.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.sample_size, f);
        self
    }

    /// Runs one named benchmark with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let n = self.sample_size;
        run_one(id.into(), n, |b| f(b, input));
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: BenchmarkId, iters: usize, mut f: F) {
    let mut b = Bencher {
        iters: iters as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {:<40} {:>12.3?}/iter ({} iters)", id.name, per_iter, b.iters);
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = qualify(&self.name, id.into());
        run_one(id, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an input inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = qualify(&self.name, id.into());
        let n = self.sample_size;
        run_one(id, n, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn qualify(group: &str, id: BenchmarkId) -> BenchmarkId {
    BenchmarkId {
        name: format!("{group}/{}", id.name),
    }
}

/// Declares a benchmark group function, supporting both the positional
/// and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        target(&mut c);
    }
}
