//! Offline stand-in for the `serde` facade.
//!
//! Exposes the `Serialize` / `Deserialize` trait names and the matching
//! no-op derive macros so `#[derive(Serialize, Deserialize)]` keeps
//! compiling without crates.io access. No serializer backend exists in
//! this workspace, so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
