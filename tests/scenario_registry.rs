//! Scenario-zoo contract: every registered scenario is gridable,
//! deterministic across two runs, and malformed rows are rejected with
//! typed errors. Firmware-family rows additionally pin the threat
//! model's core claim: the G-code sent to the printer is byte-identical
//! to benign, yet the attack is detected from a side channel.

use am_dataset::{ProcessMix, Profile, RunRole, Transform};
use am_eval::{evaluate_split, DetectorKind, DetectorSpec, Split};
use am_gcode::writer::write_program;
use am_scenarios::{AttackGen, Family, Part, ScenarioError, ScenarioRegistry};
use am_sensors::channel::SideChannel;

/// Small-but-meaningful mix for materialization checks.
fn tiny_mix() -> ProcessMix {
    ProcessMix {
        train: 1,
        test_benign: 1,
        malicious_per_attack: 1,
    }
}

#[test]
fn every_registered_scenario_is_gridable() {
    let registry = ScenarioRegistry::standard();
    assert!(registry.len() >= 12);
    for sc in &registry {
        let set = sc
            .build_with_mix(Profile::Small, 0xA11CE, tiny_mix())
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", sc.name));
        // Reference + train + benign test always present.
        assert!(set.runs.iter().any(|r| r.role == RunRole::Reference));
        assert!(set.runs.iter().any(|r| matches!(r.role, RunRole::Train(_))));
        assert!(set
            .runs
            .iter()
            .any(|r| matches!(r.role, RunRole::TestBenign(_))));
        let malicious = set
            .runs
            .iter()
            .filter(|r| matches!(r.role, RunRole::Malicious { .. }))
            .count();
        if sc.attack.is_some() {
            assert_eq!(malicious, 1, "{}", sc.name);
        } else {
            assert_eq!(malicious, 0, "{} is benign-only", sc.name);
        }
        // Benign-only rows carry their stressor into the capture path.
        assert_eq!(sc.stressor.is_some(), set.stressor.is_some(), "{}", sc.name);
    }
}

#[test]
fn scenarios_are_deterministic_across_two_builds() {
    let registry = ScenarioRegistry::standard();
    // One representative per family keeps this under test-time budget
    // while still covering every code path family.
    for sc in registry.quick_subset() {
        let a = sc.build_with_mix(Profile::Small, 0xD0, tiny_mix()).unwrap();
        let b = sc.build_with_mix(Profile::Small, 0xD0, tiny_mix()).unwrap();
        assert_eq!(a.runs.len(), b.runs.len(), "{}", sc.name);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.role, y.role, "{}", sc.name);
            assert_eq!(x.seed, y.seed, "{}", sc.name);
            assert_eq!(
                x.trajectory.duration(),
                y.trajectory.duration(),
                "{}: wall clocks must replay bit-for-bit",
                sc.name
            );
        }
        // Captures replay bit-for-bit too (covers the stressor overlay).
        let ca = a.capture_channel(SideChannel::Acc).unwrap();
        let cb = b.capture_channel(SideChannel::Acc).unwrap();
        for (x, y) in ca.iter().zip(&cb) {
            for ch in 0..x.signal.channels() {
                assert_eq!(x.signal.channel(ch), y.signal.channel(ch), "{}", sc.name);
            }
        }
    }
}

#[test]
fn malformed_scenarios_are_rejected_with_typed_errors() {
    let registry = ScenarioRegistry::standard();
    let template = registry.get("base-um3-void").cloned().unwrap();

    let mut empty = template.clone();
    empty.name = "".into();
    assert!(matches!(empty.validate(), Err(ScenarioError::EmptyName)));

    let mut bad_floor = template.clone();
    bad_floor.floors.max_false_alarm = -0.5;
    assert!(matches!(
        bad_floor.validate(),
        Err(ScenarioError::InvalidFloor {
            field: "max_false_alarm",
            ..
        })
    ));

    let mut bad_combo = template.clone();
    bad_combo.part = Part::Bracket;
    match bad_combo.validate() {
        Err(ScenarioError::UnsupportedCombination { scenario, .. }) => {
            assert_eq!(scenario, "base-um3-void");
        }
        other => panic!("expected UnsupportedCombination, got {other:?}"),
    }

    // Malformed rows are rejected at build time too, before any
    // trajectory work happens.
    assert!(bad_combo.build(Profile::Small, 1).is_err());

    // And the registry refuses duplicates wholesale.
    let rows = vec![template.clone(), template];
    assert!(matches!(
        ScenarioRegistry::new(rows),
        Err(ScenarioError::DuplicateName(_))
    ));
}

#[test]
fn firmware_rows_keep_gcode_byte_identical_yet_detectable() {
    let registry = ScenarioRegistry::standard();
    let mut firmware_rows = 0;
    for sc in &registry {
        let Some(gen) = &sc.attack else { continue };
        let (benign, malicious) = sc.programs(Profile::Small).unwrap();
        let malicious = malicious.expect("attack rows have a malicious program");
        match gen {
            AttackGen::Firmware(_) => {
                firmware_rows += 1;
                assert_eq!(
                    write_program(&benign),
                    write_program(&malicious),
                    "{}: firmware attacks must not touch the G-code",
                    sc.name
                );
            }
            AttackGen::Gcode(_) => {
                assert_ne!(
                    write_program(&benign),
                    write_program(&malicious),
                    "{}: G-code attacks must modify the program",
                    sc.name
                );
            }
            other => panic!("unclassified attack generator {other:?}"),
        }
    }
    assert!(
        firmware_rows >= 4,
        "zoo must keep several firmware/thermal rows (got {firmware_rows})"
    );

    // The flagship firmware row: byte-identical G-code, detected from
    // the acceleration channel by the NSYNC DWM lane.
    let sc = registry.get("fw-um3-clock").unwrap();
    let mix = ProcessMix {
        train: 4,
        test_benign: 3,
        malicious_per_attack: 3,
    };
    let set = sc.build_with_mix(Profile::Small, 0x5EED, mix).unwrap();
    let captures = set.capture(SideChannel::Acc, Transform::Raw).unwrap();
    let split = Split::from_captures(captures).unwrap();
    let spec = DetectorSpec {
        kind: DetectorKind::NsyncDwm,
        window_s: None,
    };
    let outcome = evaluate_split(&spec, Profile::Small, set.spec.printer, &split).unwrap();
    assert!(
        outcome.overall.tpr() > 0.5,
        "timing skew must be visible from acceleration (recall {:.2})",
        outcome.overall.tpr()
    );
}

#[test]
fn stressor_row_is_benign_labeled_and_perturbs_benign_tests() {
    let registry = ScenarioRegistry::standard();
    let sc = registry.get("stress-um3-exfil").unwrap();
    assert_eq!(sc.family, Family::Stressor);
    assert!(sc.attack.is_none());
    assert_eq!(sc.floors.min_recall, 0.0);

    let set = sc
        .build_with_mix(Profile::Small, 0xBEEF, tiny_mix())
        .unwrap();
    // Same scenario without the stressor: benign test captures differ,
    // everything else is identical.
    let mut clean_sc = sc.clone();
    clean_sc.stressor = None;
    let clean = clean_sc
        .build_with_mix(Profile::Small, 0xBEEF, tiny_mix())
        .unwrap();
    let stressed_caps = set.capture_channel(SideChannel::Aud).unwrap();
    let clean_caps = clean.capture_channel(SideChannel::Aud).unwrap();
    for (s, c) in stressed_caps.iter().zip(&clean_caps) {
        assert_eq!(s.role, c.role);
        let differs =
            (0..s.signal.channels()).any(|ch| s.signal.channel(ch) != c.signal.channel(ch));
        assert_eq!(
            differs,
            matches!(s.role, RunRole::TestBenign(_)),
            "stressor must overlay exactly the benign test runs ({})",
            s.role
        );
    }
}
