//! Quality contract for the structured-verdict stack (DESIGN.md §15):
//! cross-channel fusion must never detect worse than its best single
//! channel, debouncing must suppress single-window transients, online
//! calibration must be bit-deterministic, and the deprecated flat-alert
//! shim must show zero drift against the verdict path.

use am_dsp::Signal;
use am_fleet::sim::{FleetSim, SimConfig};
use am_fleet::PrinterId;
use nsync::prelude::*;
use nsync::verdict::ChannelEvidence;
use nsync::{CalibrationConfig, SubModule, Verdict};

const PRINTERS: u64 = 48;

fn evidence(window: usize) -> ChannelEvidence {
    ChannelEvidence {
        channel: "acc".into(),
        module: SubModule::HDist,
        value: 1.4,
        threshold: 0.9,
        window,
    }
}

/// Fused acc+pwr detection over the simulated population catches at
/// least as many scripted attacks as either single channel alone — the
/// core cross-channel fusion claim.
#[test]
fn fused_recall_meets_or_beats_single_channel() {
    let sim = FleetSim::build(SimConfig::default()).unwrap();
    let fused_spec = sim.fused_spec(FusionPolicy::default(), CalibrationConfig::default());

    let mut single_detected = 0usize;
    let mut fused_detected = 0usize;
    let mut malicious = 0usize;
    for id in (0..PRINTERS).map(PrinterId) {
        let script = sim.fused_script(id).unwrap();
        if !script.malicious {
            continue;
        }
        malicious += 1;

        // Single channel: the lane this printer would have run standalone.
        let mut alone = sim.spec_of(id).open().unwrap();
        let lane0 = (id.0 % script.lanes.len() as u64) as usize;
        for chunk in &script.lanes[lane0] {
            alone.push(chunk).unwrap();
        }
        if alone.max_severity().is_some() {
            single_detected += 1;
        }

        // Fused: both lanes interleaved frame by frame, as the fleet
        // ingests them.
        let mut fused = fused_spec.open().unwrap();
        let longest = script.lanes.iter().map(Vec::len).max().unwrap_or(0);
        for frame in 0..longest {
            for (lane, chunks) in script.lanes.iter().enumerate() {
                if let Some(chunk) = chunks.get(frame) {
                    fused.push(lane, chunk).unwrap();
                }
            }
        }
        if fused.max_severity().is_some() {
            fused_detected += 1;
        }
    }
    assert!(malicious >= 5, "population must script several attacks");
    assert!(
        fused_detected >= single_detected,
        "fusion lost recall: fused {fused_detected} < single {single_detected} of {malicious}"
    );
}

/// A single alerting window followed by quiet never surfaces under a
/// two-window debounce; a sustained streak does, spanning the streak.
#[test]
fn debounce_suppresses_single_window_transient() {
    let policy = FusionPolicy::default().with_debounce_windows(2);
    let mut assembler = VerdictAssembler::new(policy);

    // Transient: one alerting window, then quiet.
    assert!(assembler.observe(3, vec![evidence(3)]).is_none());
    assert!(assembler.observe(4, Vec::new()).is_none());
    assert!(
        assembler.max_severity().is_none(),
        "transient must not latch"
    );
    assert!(assembler.last_verdict().is_none());

    // Sustained: two consecutive alerting windows fire one verdict
    // carrying both windows' evidence.
    assert!(assembler.observe(7, vec![evidence(7)]).is_none());
    let verdict = assembler
        .observe(8, vec![evidence(8)])
        .expect("a sustained streak must fire");
    assert_eq!(verdict.window_span, (7, 8));
    assert_eq!(verdict.evidence.len(), 2);
    assert_eq!(assembler.max_severity(), Some(verdict.severity));
}

fn benign(phase: f64) -> Signal {
    Signal::from_fn(20.0, 1, 2400, |t, f| {
        f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin()
    })
    .unwrap()
}

fn calibrated_spec() -> StreamSpec {
    let params = DwmParams::from_window(4.0);
    let train: Vec<Signal> = (1..=4).map(|i| benign(i as f64 * 1e-3)).collect();
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap()
        .train(&train, benign(0.0), 0.3)
        .unwrap();
    let spec = trained.stream_spec(params);
    let calibration = CalibrationConfig::adaptive().with_warmup_windows(8);
    StreamSpec::new(spec.reference().clone(), spec.params(), spec.thresholds())
        .with_config(spec.config().with_calibration(calibration))
}

fn feed(ids: &mut StreamingIds, signal: &Signal) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    let mut i = 0;
    while i < signal.len() {
        let end = (i + 16).min(signal.len());
        verdicts.extend(ids.push(&signal.slice(i..end).unwrap()).unwrap());
        i = end;
    }
    verdicts
}

/// Two detectors opened from the same spec and fed the same benign
/// stream calibrate to bit-identical thresholds and verdict streams —
/// calibration is a pure function of the observed windows.
#[test]
fn calibration_is_deterministic_on_a_benign_stream() {
    let spec = calibrated_spec();
    let observed = benign(5e-3);
    let mut a = spec.open().unwrap();
    let mut b = spec.open().unwrap();
    let va = feed(&mut a, &observed);
    let vb = feed(&mut b, &observed);

    assert_eq!(
        format!("{va:?}").into_bytes(),
        format!("{vb:?}").into_bytes(),
        "verdict streams must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", a.active_thresholds()).into_bytes(),
        format!("{:?}", b.active_thresholds()).into_bytes(),
        "calibrated thresholds must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", a.calibration_state()).into_bytes(),
        format!("{:?}", b.calibration_state()).into_bytes()
    );
    // The warmup genuinely completed: the calibrator is in its terminal
    // Calibrated state (the benign stream must not trip the drift guard).
    assert!(
        matches!(a.calibration_state(), CalibrationState::Calibrated { .. }),
        "warmup must complete on a long benign stream: {:?}",
        a.calibration_state()
    );
    // Raise-only contract: calibration never lowers a trained threshold.
    let trained = spec.thresholds();
    let live = a.active_thresholds();
    assert!(live.c_c >= trained.c_c);
    assert!(live.h_c >= trained.h_c);
    assert!(live.v_c >= trained.v_c);
}

/// The deprecated flat-alert shim drifts by zero bytes from the verdict
/// path: `push_alerts` is exactly `flatten_verdicts(push(..))` and the
/// boolean latch mirrors the severity latch. (The full shim contract
/// lives in `deprecated_shims.rs`; this pins the verdict-side half.)
#[test]
#[allow(deprecated)]
fn deprecated_shim_zero_drift() {
    let spec = calibrated_spec();
    let observed = benign(5e-3);
    let mut via_verdicts = spec.open().unwrap();
    let mut via_shim = spec.open().unwrap();
    let mut i = 0;
    while i < observed.len() {
        let end = (i + 16).min(observed.len());
        let chunk = observed.slice(i..end).unwrap();
        let flattened = nsync::streaming::flatten_verdicts(&via_verdicts.push(&chunk).unwrap());
        let shimmed = via_shim.push_alerts(&chunk).unwrap();
        assert_eq!(
            format!("{shimmed:?}").into_bytes(),
            format!("{flattened:?}").into_bytes()
        );
        assert_eq!(
            via_shim.intrusion_detected(),
            via_verdicts.max_severity().is_some()
        );
        i = end;
    }
}
