//! Spectrogram transform (Table III) feeding the synchronizers.

use am_dataset::RunRole;
use am_eval::figures::{fig10_hdisp, hdisp_consistency};
use am_eval::harness::{Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{DtwSynchronizer, Synchronizer};

#[test]
fn spectrogram_shapes_follow_spec() {
    let set = tiny_set(PrinterModel::Um3);
    let profile = set.spec.profile;
    for channel in [SideChannel::Mag, SideChannel::Acc] {
        let split = Split::generate(&set, channel, Transform::Spectrogram).unwrap();
        let stft = profile.spectrogram(channel);
        let fs = profile.fs(channel);
        let expected_channels = channel.channel_count() * stft.bins(fs);
        assert_eq!(
            split.reference.signal.channels(),
            expected_channels,
            "{channel}"
        );
        assert!((split.reference.signal.fs() - 1.0 / stft.delta_t).abs() < 1e-9);
    }
}

#[test]
fn raw_and_spectrogram_hdisp_agree_on_acc() {
    // Fig 10's claim: h_disp is a property of the printing process, not
    // of the side channel or transform.
    let set = tiny_set(PrinterModel::Um3);
    let series = fig10_hdisp(&set, &[SideChannel::Acc]).unwrap();
    assert_eq!(series.len(), 2);
    let consistency = hdisp_consistency(&series[0], &series[1]);
    assert!(
        consistency > 0.5,
        "raw/spectro h_disp consistency only {consistency}"
    );
}

#[test]
fn dtw_synchronizes_benign_spectrograms() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Mag, Transform::Spectrogram).unwrap();
    let benign = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .unwrap();
    let sync = DtwSynchronizer::default();
    let alignment = sync
        .synchronize(&benign.signal, &split.reference.signal)
        .unwrap();
    assert_eq!(alignment.h_disp.len(), benign.signal.len());
    // The warp stays near the diagonal for benign runs (end misalignment
    // is seconds, i.e. a few dozen spectrogram frames at most).
    let fs = benign.signal.fs();
    let max_h = alignment.h_disp.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    assert!(max_h < 10.0 * fs, "warp wandered {max_h} frames");
}
