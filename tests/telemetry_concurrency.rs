//! Telemetry under the 8-thread grid: the registry's counters and span
//! aggregates must stay mutually consistent when every worker records
//! concurrently (DESIGN.md §10).
//!
//! Runs in its own test binary so the process-global telemetry registry
//! is not shared with unrelated tests.

use am_eval::engine::{run_grid_with, EngineConfig};
use am_eval::tables::TableContext;
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use std::sync::Mutex;

/// The registry is process-global; serialize the tests in this binary so
/// one test's `reset` cannot race another's assertions.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn eight_thread_grid_keeps_registry_consistent() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    am_telemetry::reset();
    am_telemetry::set_enabled(true);

    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(8)).unwrap();
    assert_eq!(report.threads, 8);
    assert!(!grid.cells.is_empty());

    // Every capture lookup resolved as exactly one hit or one miss, even
    // with eight workers hammering the store concurrently.
    let lookups = am_telemetry::counter_value("capture.lookups");
    let hits = am_telemetry::counter_value("capture.hits");
    let misses = am_telemetry::counter_value("capture.misses");
    assert!(lookups > 0, "grid ran without a single capture lookup");
    assert_eq!(
        hits + misses,
        lookups,
        "capture counters leaked under concurrency: {hits} + {misses} != {lookups}"
    );
    // The registry agrees with the store's own (independently atomic)
    // bookkeeping that the engine report carries.
    assert_eq!(hits, report.capture.hits as u64);
    assert_eq!(misses, report.capture.misses as u64);

    // Span nesting: child totals cannot exceed the enclosing parent.
    let run = am_telemetry::span_stats("grid.run");
    let prewarm = am_telemetry::span_stats("grid.prewarm");
    let cell = am_telemetry::span_stats("grid.cell");
    let fit = am_telemetry::span_stats("grid.fit");
    let judge = am_telemetry::span_stats("grid.judge");

    assert_eq!(run.count, 1);
    assert_eq!(cell.count as usize, grid.cells.len());
    assert_eq!(fit.count, cell.count);
    assert_eq!(judge.count, cell.count);
    assert!(
        fit.total_nanos + judge.total_nanos <= cell.total_nanos,
        "fit ({}) + judge ({}) exceeded their parent cell spans ({})",
        fit.total_nanos,
        judge.total_nanos,
        cell.total_nanos
    );
    assert!(
        prewarm.total_nanos <= run.total_nanos,
        "prewarm ({}) exceeded the whole run ({})",
        prewarm.total_nanos,
        run.total_nanos
    );
    // The sync kernels inside the cells reported too.
    assert!(am_telemetry::span_stats("sync.dwm").count > 0);

    // The summary renders every touched site.
    let summary = am_telemetry::json_summary();
    for site in ["capture.lookups", "grid.cell", "grid.fit", "sync.dwm"] {
        assert!(summary.contains(site), "summary missing {site}: {summary}");
    }
}

#[test]
fn tracing_grid_exports_a_wellformed_chrome_trace() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    am_telemetry::reset();
    am_telemetry::set_tracing(true);

    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();

    assert!(am_telemetry::trace_event_count() > 0);
    let trace = am_telemetry::chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    // Complete events with the spans the ISSUE promises in the trace.
    assert!(trace.contains("\"ph\":\"X\""));
    for name in ["grid.prewarm", "grid.cell", "sync.dwm", "daq.capture"] {
        assert!(trace.contains(name), "trace missing span {name}");
    }

    am_telemetry::set_enabled(false);
    am_telemetry::reset();
}
