//! Telemetry under the 8-thread grid: the registry's counters and span
//! aggregates must stay mutually consistent when every worker records
//! concurrently (DESIGN.md §10).
//!
//! Runs in its own test binary so the process-global telemetry registry
//! is not shared with unrelated tests.

use am_eval::engine::{run_grid_with, EngineConfig};
use am_eval::tables::TableContext;
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use std::sync::Mutex;

/// The registry is process-global; serialize the tests in this binary so
/// one test's `reset` cannot race another's assertions.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn eight_thread_grid_keeps_registry_consistent() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    am_telemetry::reset();
    am_telemetry::set_enabled(true);

    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(8)).unwrap();
    assert_eq!(report.threads, 8);
    assert!(!grid.cells.is_empty());

    // Every capture lookup resolved as exactly one hit or one miss, even
    // with eight workers hammering the store concurrently.
    let lookups = am_telemetry::counter_value("capture.lookups");
    let hits = am_telemetry::counter_value("capture.hits");
    let misses = am_telemetry::counter_value("capture.misses");
    assert!(lookups > 0, "grid ran without a single capture lookup");
    assert_eq!(
        hits + misses,
        lookups,
        "capture counters leaked under concurrency: {hits} + {misses} != {lookups}"
    );
    // The registry agrees with the store's own (independently atomic)
    // bookkeeping that the engine report carries.
    assert_eq!(hits, report.capture.hits as u64);
    assert_eq!(misses, report.capture.misses as u64);

    // Same consistency for the fit store: the judge stage looks every
    // shared fit up again, so lookups = misses (fit stage) + hits (judge
    // stage) and the registry mirrors the report.
    let fit_lookups = am_telemetry::counter_value("fit.lookups");
    let fit_hits = am_telemetry::counter_value("fit.hits");
    let fit_misses = am_telemetry::counter_value("fit.misses");
    assert!(fit_lookups > 0, "grid ran without a single fit lookup");
    assert_eq!(
        fit_hits + fit_misses,
        fit_lookups,
        "fit counters leaked under concurrency: {fit_hits} + {fit_misses} != {fit_lookups}"
    );
    assert_eq!(fit_hits, report.fit_store.hits as u64);
    assert_eq!(fit_misses, report.fit_store.misses as u64);

    // Span nesting across the stage DAG: fits now live in their own
    // stage (one span per shared fit, not per cell); judging stays
    // nested inside `grid.cell`.
    let run = am_telemetry::span_stats("grid.run");
    let prewarm = am_telemetry::span_stats("grid.prewarm");
    let cell = am_telemetry::span_stats("grid.cell");
    let fit = am_telemetry::span_stats("grid.fit");
    let judge = am_telemetry::span_stats("grid.judge");

    assert_eq!(run.count, 1);
    assert_eq!(cell.count as usize, grid.cells.len());
    assert_eq!(fit.count as usize, report.fits.len());
    assert_eq!(fit.count, fit_misses, "one fit span per fit-store miss");
    assert_eq!(judge.count, cell.count);
    assert!(
        judge.total_nanos <= cell.total_nanos,
        "judge ({}) exceeded its parent cell spans ({})",
        judge.total_nanos,
        cell.total_nanos
    );
    assert!(
        prewarm.total_nanos <= run.total_nanos,
        "prewarm ({}) exceeded the whole run ({})",
        prewarm.total_nanos,
        run.total_nanos
    );
    // Worker lanes: the first worker's span exists at every stage that
    // ran parallel (fit + judge here), and no lane outlives the run.
    let worker0 = am_telemetry::span_stats("grid.worker0");
    assert!(worker0.count >= 1, "no grid.worker0 lane recorded");
    assert!(
        worker0.max_nanos <= run.total_nanos,
        "a worker lane ({}) outlived the run span ({})",
        worker0.max_nanos,
        run.total_nanos
    );
    // The sync kernels inside the cells reported too.
    assert!(am_telemetry::span_stats("sync.dwm").count > 0);

    // The summary renders every touched site.
    let summary = am_telemetry::json_summary();
    for site in [
        "capture.lookups",
        "fit.lookups",
        "grid.cell",
        "grid.fit",
        "grid.worker0",
        "sync.dwm",
    ] {
        assert!(summary.contains(site), "summary missing {site}: {summary}");
    }
}

#[test]
fn tracing_grid_exports_a_wellformed_chrome_trace() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    am_telemetry::reset();
    am_telemetry::set_tracing(true);

    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();

    assert!(am_telemetry::trace_event_count() > 0);
    let trace = am_telemetry::chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    // Complete events with the spans the ISSUE promises in the trace.
    assert!(trace.contains("\"ph\":\"X\""));
    for name in [
        "grid.prewarm",
        "grid.fit",
        "grid.cell",
        "grid.worker0",
        "grid.worker1",
        "sync.dwm",
        "daq.capture",
    ] {
        assert!(trace.contains(name), "trace missing span {name}");
    }

    am_telemetry::set_enabled(false);
    am_telemetry::reset();
}
