//! FitStore contract (DESIGN.md §13): hoisting detector training out of
//! grid cells into the shared, memoized fit stage changes *what work
//! runs*, never *what the grid computes* — and concurrent requesters of
//! one fit key serialize on one slot instead of fitting duplicates.

use am_baselines::RunData;
use am_eval::detector::{Detector, DetectorKind, DetectorSpec, Verdict};
use am_eval::engine::{run_grid_with, EngineConfig, GridResults};
use am_eval::harness::{EvalError, Transform};
use am_eval::tables::{average_accuracies, table5, table6, table7, table8, table9, TableContext};
use am_eval::{FitKey, FitStore, SharedDetector};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

fn rendered(grid: &GridResults) -> String {
    let mut out = String::new();
    for table in [
        table5(grid),
        table6(grid),
        table7(grid),
        table8(grid),
        table9(grid),
    ] {
        out.push_str(&table.render());
        out.push('\n');
    }
    for (name, acc) in average_accuracies(grid) {
        out.push_str(&format!("{name} {acc:.6}\n"));
    }
    out
}

/// Sharing fits across cells must be invisible in the results: the
/// structured grid AND the rendered tables are byte-identical with the
/// FitStore enabled and disabled, at one thread and at four.
#[test]
fn fit_sharing_is_byte_identical_on_vs_off() {
    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    let (shared, shared_report) = run_grid_with(&ctx, &EngineConfig::with_threads(4)).unwrap();
    let (unshared, unshared_report) =
        run_grid_with(&ctx, &EngineConfig::with_threads(4).without_fit_sharing()).unwrap();
    let (shared_seq, _) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();

    assert_eq!(shared, unshared);
    assert_eq!(shared, shared_seq);
    let r = rendered(&shared);
    assert!(!r.is_empty());
    assert_eq!(r.into_bytes(), rendered(&unshared).into_bytes());

    // The A/B arm really did take different paths: the shared run went
    // through the store, the unshared run fitted inline per cell.
    assert!(shared_report.fit_store.misses > 0);
    assert_eq!(unshared_report.fit_store.hits, 0);
    assert_eq!(unshared_report.fit_store.misses, 0);
    assert_eq!(unshared_report.fits.len(), unshared.cells.len());
}

/// Pinned cache traffic for the small Um3 profile: every constrained
/// cell owns a distinct fit key today (no registry entry differs by a
/// judge-only parameter yet), so the fit stage misses once per cell and
/// the judge stage hits once per cell.
#[test]
fn small_profile_fit_store_counts_are_pinned() {
    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();

    assert_eq!(grid.cells.len(), 35);
    assert_eq!(report.fits.len(), 35, "one shared fit per distinct key");
    assert_eq!(report.fit_store.misses, 35);
    assert_eq!(report.fit_store.hits, 35);
}

struct SlowDetector;

impl Detector for SlowDetector {
    fn name(&self) -> String {
        "slow".into()
    }
    fn fit(&mut self, _: &RunData, _: &[RunData]) -> Result<(), EvalError> {
        Ok(())
    }
    fn judge(&self, _: &RunData) -> Result<Verdict, EvalError> {
        Ok(Verdict::simple(false))
    }
}

/// N workers racing for one fit key serialize on that key's slot: the
/// winner fits once, the losers block (observable as `blocked_nanos`)
/// and come away holding the winner's `Arc`.
#[test]
fn concurrent_workers_on_one_key_block_on_one_slot() {
    const WORKERS: usize = 4;
    let key = FitKey::for_cell(
        DetectorSpec::of(DetectorKind::Moore),
        PrinterModel::Um3,
        SideChannel::Mag,
        Transform::Raw,
    );
    let store = FitStore::new([key]);
    let fits = AtomicUsize::new(0);
    let start = Barrier::new(WORKERS);

    let detectors: Vec<SharedDetector> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                scope.spawn(|| {
                    start.wait();
                    store
                        .get_or_fit(&key, || {
                            fits.fetch_add(1, Ordering::Relaxed);
                            // Hold the slot long enough that the other
                            // workers demonstrably queue behind it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok::<_, EvalError>(Arc::new(SlowDetector) as SharedDetector)
                        })
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(fits.load(Ordering::Relaxed), 1, "exactly one fit ran");
    for d in &detectors[1..] {
        assert!(
            Arc::ptr_eq(&detectors[0], d),
            "every worker shares the winner's detector"
        );
    }
    let stats = store.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, WORKERS - 1);
    assert!(
        stats.blocked_nanos > 0,
        "losers must observably block on the slot"
    );
}
