//! The paper's headline comparison on a tiny mix: NSYNC/DWM must beat
//! the no-DSYNC baseline on the same data.

use am_eval::harness::{eval_gao, eval_gatlin, eval_moore, eval_nsync, Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::DwmSynchronizer;

#[test]
fn nsync_dwm_beats_moore_on_acc_raw() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let nsync = eval_nsync(&split, Box::new(DwmSynchronizer::new(params)), 0.3).unwrap();
    let moore = eval_moore(&split, 0.0).unwrap();
    assert!(
        nsync.overall.accuracy() > moore.accuracy(),
        "nsync {:.2} vs moore {:.2}",
        nsync.overall.accuracy(),
        moore.accuracy()
    );
    // NSYNC detects most attacks; Moore's time-noise-inflated threshold
    // misses most of them.
    assert!(nsync.overall.tpr() >= 0.8, "{:?}", nsync.overall);
    assert!(moore.tpr() <= 0.6, "{:?}", moore);
}

#[test]
fn coarse_dsync_sits_between_none_and_fine() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let gao = eval_gao(&split, 0.0).unwrap();
    let gatlin = eval_gatlin(&split, 0.0).unwrap();
    // Gatlin's time sub-module catches the timing attacks even on a tiny
    // mix (Speed0.95, Layer0.3, Scale0.95 all shift layer moments).
    assert!(gatlin.time.tpr() >= 0.4, "{:?}", gatlin.time);
    // Both coarse detectors keep FPR at most moderate.
    assert!(gao.fpr() <= 0.5);
    assert!(gatlin.overall.fpr() <= 0.5);
}
