//! The paper's headline comparison on a tiny mix: NSYNC/DWM must beat
//! the no-DSYNC baseline on the same data, driven through the unified
//! detector registry.

use am_eval::detector::{DetectorKind, DetectorSpec};
use am_eval::engine::evaluate_split;
use am_eval::harness::{Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

#[test]
fn nsync_dwm_beats_moore_on_acc_raw() {
    let set = tiny_set(PrinterModel::Um3);
    let profile = set.spec.profile;
    let printer = set.spec.printer;
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let nsync = evaluate_split(
        &DetectorSpec::of(DetectorKind::NsyncDwm),
        profile,
        printer,
        &split,
    )
    .unwrap();
    let moore = evaluate_split(
        &DetectorSpec::of(DetectorKind::Moore),
        profile,
        printer,
        &split,
    )
    .unwrap();
    assert!(
        nsync.overall.accuracy() > moore.overall.accuracy(),
        "nsync {:.2} vs moore {:.2}",
        nsync.overall.accuracy(),
        moore.overall.accuracy()
    );
    // NSYNC detects most attacks; Moore's time-noise-inflated threshold
    // misses most of them.
    assert!(nsync.overall.tpr() >= 0.8, "{:?}", nsync.overall);
    assert!(moore.overall.tpr() <= 0.6, "{:?}", moore.overall);
}

#[test]
fn coarse_dsync_sits_between_none_and_fine() {
    let set = tiny_set(PrinterModel::Um3);
    let profile = set.spec.profile;
    let printer = set.spec.printer;
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let gao = evaluate_split(
        &DetectorSpec::of(DetectorKind::Gao),
        profile,
        printer,
        &split,
    )
    .unwrap();
    let gatlin = evaluate_split(
        &DetectorSpec::of(DetectorKind::Gatlin),
        profile,
        printer,
        &split,
    )
    .unwrap();
    // Gatlin's time sub-module catches the timing attacks even on a tiny
    // mix (Speed0.95, Layer0.3, Scale0.95 all shift layer moments).
    let time = gatlin.sub(am_eval::SubModuleId::Time);
    assert!(time.tpr() >= 0.4, "{time:?}");
    // Both coarse detectors keep FPR at most moderate.
    assert!(gao.overall.fpr() <= 0.5);
    assert!(gatlin.overall.fpr() <= 0.5);
}
