//! The whole pipeline is a pure function of its seeds: identical
//! experiment specs yield bit-identical signals and identical verdicts.

use am_dataset::{ExperimentSpec, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_integration::helpers::{tiny_mix, tiny_set};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

#[test]
fn captures_are_bit_identical_across_generations() {
    let a = tiny_set(PrinterModel::Um3);
    let b = tiny_set(PrinterModel::Um3);
    let ca = a.capture_channel(SideChannel::Mag).unwrap();
    let cb = b.capture_channel(SideChannel::Mag).unwrap();
    assert_eq!(ca.len(), cb.len());
    for (x, y) in ca.iter().zip(cb.iter()) {
        assert_eq!(x.role, y.role);
        assert_eq!(x.signal, y.signal);
        assert_eq!(x.layer_times, y.layer_times);
    }
}

#[test]
fn different_base_seeds_give_different_noise() {
    let mut spec = ExperimentSpec::small(PrinterModel::Um3);
    let a = TrajectorySet::generate_with_mix(spec, tiny_mix()).unwrap();
    spec.base_seed ^= 0xABCD;
    let b = TrajectorySet::generate_with_mix(spec, tiny_mix()).unwrap();
    let da: Vec<f64> = a.runs.iter().map(|r| r.trajectory.duration()).collect();
    let db: Vec<f64> = b.runs.iter().map(|r| r.trajectory.duration()).collect();
    assert_ne!(da, db, "seeds must steer the time noise");
}

#[test]
fn splits_are_deterministic() {
    let set = tiny_set(PrinterModel::Rm3);
    let s1 = Split::generate(&set, SideChannel::Mag, Transform::Spectrogram).unwrap();
    let s2 = Split::generate(&set, SideChannel::Mag, Transform::Spectrogram).unwrap();
    assert_eq!(s1.reference.signal, s2.reference.signal);
    assert_eq!(s1.tests.len(), s2.tests.len());
    for (a, b) in s1.tests.iter().zip(s2.tests.iter()) {
        assert_eq!(a.signal, b.signal);
    }
}
