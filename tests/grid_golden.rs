//! Golden-equivalence pins: the unified [`am_eval::engine::evaluate_split`]
//! driver must reproduce the exact counts the pre-refactor per-IDS
//! drivers (`eval_moore`, `eval_gao`, `eval_gatlin`, `eval_bayens`,
//! `eval_belikovetsky`, `eval_nsync`) produced on the tiny Um3 mix
//! (seed 0x5EED) before they were deleted. One cell per IDS, recorded
//! from the old code paths at commit 26216ad.

use am_eval::detector::{DetectorKind, DetectorSpec, SubModuleId};
use am_eval::engine::{evaluate_split, Outcome};
use am_eval::harness::{Split, Transform};
use am_eval::Rates;
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

fn rates(fp: usize, benign: usize, tp: usize, malicious: usize) -> Rates {
    Rates {
        fp,
        benign,
        tp,
        malicious,
    }
}

fn eval(spec: DetectorSpec, channel: SideChannel, transform: Transform) -> Outcome {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, channel, transform).unwrap();
    evaluate_split(&spec, set.spec.profile, set.spec.printer, &split).unwrap()
}

#[test]
fn moore_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::Moore),
        SideChannel::Mag,
        Transform::Raw,
    );
    assert_eq!(out.overall, rates(0, 2, 0, 5));
}

#[test]
fn gao_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::Gao),
        SideChannel::Mag,
        Transform::Raw,
    );
    assert_eq!(out.overall, rates(1, 2, 3, 5));
}

#[test]
fn gatlin_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::Gatlin),
        SideChannel::Mag,
        Transform::Raw,
    );
    assert_eq!(out.overall, rates(1, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::Time), rates(1, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::Match), rates(0, 2, 0, 5));
}

#[test]
fn bayens_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec {
            kind: DetectorKind::Bayens,
            window_s: Some(20.0),
        },
        SideChannel::Aud,
        Transform::Raw,
    );
    assert_eq!(out.overall, rates(1, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::Sequence), rates(1, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::Threshold), rates(0, 2, 2, 5));
}

#[test]
fn belikovetsky_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::Belikovetsky),
        SideChannel::Aud,
        Transform::Spectrogram,
    );
    assert_eq!(out.overall, rates(2, 2, 5, 5));
}

#[test]
fn nsync_dwm_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::NsyncDwm),
        SideChannel::Mag,
        Transform::Raw,
    );
    assert_eq!(out.overall, rates(0, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::CDisp), rates(0, 2, 5, 5));
    assert_eq!(out.sub(SubModuleId::HDist), rates(0, 2, 3, 5));
    assert_eq!(out.sub(SubModuleId::VDist), rates(0, 2, 4, 5));
}

#[test]
fn nsync_dtw_matches_pre_refactor_counts() {
    let out = eval(
        DetectorSpec::of(DetectorKind::NsyncDtw),
        SideChannel::Mag,
        Transform::Spectrogram,
    );
    assert_eq!(out.overall, rates(0, 2, 4, 5));
    assert_eq!(out.sub(SubModuleId::CDisp), rates(0, 2, 4, 5));
    assert_eq!(out.sub(SubModuleId::HDist), rates(0, 2, 4, 5));
    assert_eq!(out.sub(SubModuleId::VDist), rates(0, 2, 1, 5));
}
