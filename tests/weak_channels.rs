//! §VIII-B: TMP and PWR are weakly correlated with printer state — their
//! `h_disp` is "noise like" and the paper drops them. This test pins that
//! behaviour so a sensor-model change cannot silently make the weak
//! channels strong (or vice versa).

use am_eval::figures::{fig10_hdisp, hdisp_consistency};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

#[test]
fn tmp_and_pwr_hdisp_are_inconsistent_with_acc() {
    let set = tiny_set(PrinterModel::Um3);
    let series = fig10_hdisp(
        &set,
        &[SideChannel::Acc, SideChannel::Tmp, SideChannel::Pwr],
    )
    .unwrap();
    // Series order: [ACC raw, ACC spec, TMP raw, TMP spec, PWR raw, PWR spec].
    let acc_raw = &series[0];
    let strong = hdisp_consistency(acc_raw, &series[1]); // ACC spectro
    let tmp_raw = hdisp_consistency(acc_raw, &series[2]);
    let pwr_raw = hdisp_consistency(acc_raw, &series[4]);
    assert!(strong > 0.5, "ACC raw/spectro should agree: {strong}");
    assert!(
        tmp_raw < strong,
        "TMP should track the process worse than ACC does ({tmp_raw} vs {strong})"
    );
    assert!(
        pwr_raw < strong,
        "PWR should track the process worse than ACC does ({pwr_raw} vs {strong})"
    );
}

#[test]
fn kept_channels_exclude_tmp_and_pwr() {
    // The paper's §VIII-B decision, encoded as API.
    let kept = SideChannel::kept();
    assert!(!kept.contains(&SideChannel::Tmp));
    assert!(!kept.contains(&SideChannel::Pwr));
    assert!(kept.contains(&SideChannel::Acc));
    assert!(kept.contains(&SideChannel::Ept));
}
