//! The service edge's determinism contract (DESIGN.md §12): a recorded
//! AMW1 byte log replayed through the wire decoder reproduces the
//! verdict stream of in-process ingestion **exactly** — whether the
//! bytes arrive through a real loopback TCP socket into a
//! [`WireServer`] or straight through a [`FrameDecoder`]. Replaying the
//! same log twice is also pinned to be self-identical, which is what
//! makes recorded wire logs forensically useful.

use am_fleet::sim::{FleetSim, PrinterScript, SimConfig};
use am_fleet::{AlertPolicy, Fleet, FleetConfig, FleetReport, IngestPolicy, PrinterId};
use am_wire::{EdgeConfig, FrameDecoder, WireFrame, WireServer};
use nsync::Verdict;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const PRINTERS: u64 = 24;
const FRAMES: usize = 32;

/// One printer's full observable outcome, in byte-comparable form.
#[derive(Debug, PartialEq)]
struct Verdicts {
    verdicts: Vec<Verdict>,
    windows_seen: usize,
    intrusion: bool,
    health: String,
}

fn scripts(sim: &FleetSim) -> Vec<PrinterScript> {
    (0..PRINTERS)
        .map(|id| {
            let mut s = sim.script(PrinterId(id)).expect("script builds");
            s.chunks.truncate(FRAMES);
            s
        })
        .collect()
}

/// Serializes every script into one AMW1 byte log, frame-major across
/// printers (the interleaving a shared gateway would produce).
fn record_log(scripts: &[PrinterScript]) -> Vec<u8> {
    let mut log = Vec::new();
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
    for frame in 0..longest {
        for script in scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                WireFrame {
                    printer: script.printer,
                    channel: (script.printer.0 % 2) as u8,
                    seq: frame as u64,
                    chunk: chunk.clone(),
                }
                .encode_into(&mut log);
            }
        }
    }
    log
}

fn fleet_for(sim: &FleetSim, scripts: &[PrinterScript]) -> Fleet {
    let cfg = FleetConfig::default()
        .with_ingest(IngestPolicy::Block)
        .with_alert_policy(AlertPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    for script in scripts {
        fleet
            .register(script.printer, sim.spec_of(script.printer))
            .expect("register");
    }
    fleet
}

/// Merges the leftover (undelivered-at-shutdown) verdicts into the
/// drained map and folds everything into per-printer outcomes. Verdicts
/// are consumed by exactly one consumer at a time (the caller's
/// `try_recv` loop, then [`am_fleet::Fleet::finish`]'s leftover sweep),
/// so `drained + leftover` preserves per-printer emission order.
fn collect(
    report: FleetReport,
    mut drained: BTreeMap<PrinterId, Vec<Verdict>>,
) -> BTreeMap<PrinterId, Verdicts> {
    for v in &report.leftover_verdicts {
        drained
            .entry(v.printer)
            .or_default()
            .push(v.verdict.clone());
    }
    report
        .printers
        .iter()
        .map(|r| {
            (
                r.printer,
                Verdicts {
                    verdicts: drained.remove(&r.printer).unwrap_or_default(),
                    windows_seen: r.windows_seen,
                    intrusion: r.intrusion,
                    health: format!("{:?}", r.health),
                },
            )
        })
        .collect()
}

fn drain_into(
    rx: &crossbeam::channel::Receiver<am_fleet::FleetVerdict>,
    by_printer: &mut BTreeMap<PrinterId, Vec<Verdict>>,
) {
    while let Ok(v) = rx.try_recv() {
        by_printer.entry(v.printer).or_default().push(v.verdict);
    }
}

/// Baseline: the same chunks handed to `Fleet::send` directly.
fn run_in_process(sim: &FleetSim, scripts: &[PrinterScript]) -> BTreeMap<PrinterId, Verdicts> {
    let fleet = fleet_for(sim, scripts);
    let rx = fleet.verdicts();
    let mut drained = BTreeMap::new();
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
    for frame in 0..longest {
        for script in scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                fleet
                    .send(script.printer, chunk.clone())
                    .expect("block ingest");
            }
        }
        drain_into(&rx, &mut drained);
    }
    let report = fleet.finish().expect("clean shutdown");
    assert_eq!(report.snapshot.alerts_lost(), 0);
    collect(report, drained)
}

/// Replays the byte log through a pure [`FrameDecoder`] (no sockets)
/// into the fleet — the forensic "decode a recorded capture" path.
fn replay_via_decoder(
    sim: &FleetSim,
    scripts: &[PrinterScript],
    log: &[u8],
) -> BTreeMap<PrinterId, Verdicts> {
    let fleet = fleet_for(sim, scripts);
    let rx = fleet.verdicts();
    let mut drained = BTreeMap::new();
    let mut dec = FrameDecoder::new(1 << 20);
    // Arbitrary re-chunking must not matter: feed awkward slices.
    for piece in log.chunks(4093) {
        dec.extend(piece);
        while let Some(result) = dec.next_frame() {
            let frame = result.expect("recorded log has no malformed frames");
            fleet
                .send(frame.printer, frame.chunk)
                .expect("block ingest");
        }
        drain_into(&rx, &mut drained);
    }
    dec.finish().expect("no partial frame at end of log");
    let report = fleet.finish().expect("clean shutdown");
    collect(report, drained)
}

/// Replays the byte log through a real loopback TCP connection into a
/// [`WireServer`] — the full network decode path.
fn replay_via_tcp(
    sim: &FleetSim,
    scripts: &[PrinterScript],
    log: &[u8],
    total_frames: u64,
) -> BTreeMap<PrinterId, Verdicts> {
    let fleet = fleet_for(sim, scripts);
    let server = WireServer::spawn(
        fleet,
        EdgeConfig::default()
            .with_udp_bind(None)
            .with_rate_limit(1_000_000.0, 1_000_000.0),
    )
    .expect("bind loopback listener");
    let rx = server.verdicts();
    let mut drained = BTreeMap::new();
    let mut conn = TcpStream::connect(server.tcp_addr().expect("tcp enabled")).expect("connect");
    conn.write_all(log).expect("stream the log");
    drop(conn);
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.snapshot().wire.frames_ok < total_frames && Instant::now() < deadline {
        drain_into(&rx, &mut drained);
        std::thread::sleep(Duration::from_millis(10));
    }
    let edge = server.finish().expect("clean edge shutdown");
    assert_eq!(edge.wire.frames_ok, total_frames, "every frame delivered");
    assert_eq!(edge.wire.rejects.total(), 0, "{:?}", edge.wire.rejects);
    assert_eq!(edge.wire.seq_gaps, 0);
    collect(edge.fleet, drained)
}

fn assert_identical(
    label: &str,
    expected: &BTreeMap<PrinterId, Verdicts>,
    got: &BTreeMap<PrinterId, Verdicts>,
) {
    assert_eq!(expected.len(), got.len(), "{label}: printer count");
    for (printer, want) in expected {
        let have = got.get(printer).expect("printer present");
        assert_eq!(
            format!("{want:?}").into_bytes(),
            format!("{have:?}").into_bytes(),
            "{label}: {printer} verdict stream diverged"
        );
    }
}

#[test]
fn wire_replay_reproduces_the_verdict_stream_exactly() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    let scripts = scripts(&sim);
    let log = record_log(&scripts);
    let total_frames: u64 = scripts.iter().map(|s| s.chunks.len() as u64).sum();
    assert!(total_frames > 0 && !log.is_empty());

    let baseline = run_in_process(&sim, &scripts);
    // The baseline must contain real alert traffic, or "identical"
    // would be vacuous.
    assert!(
        baseline.values().any(|v| !v.verdicts.is_empty()),
        "seeded population produced no verdicts"
    );

    let via_decoder = replay_via_decoder(&sim, &scripts, &log);
    assert_identical("decoder replay vs in-process", &baseline, &via_decoder);

    let via_tcp = replay_via_tcp(&sim, &scripts, &log, total_frames);
    assert_identical("tcp replay vs in-process", &baseline, &via_tcp);

    // Replaying the same recorded bytes again is self-identical — the
    // property that makes wire logs replayable evidence.
    let again = replay_via_tcp(&sim, &scripts, &log, total_frames);
    assert_identical("tcp replay vs tcp replay", &via_tcp, &again);
}
