//! Real-time operation: the streaming NSYNC detector fed DAQ-sized
//! chunks must agree with batch detection and fire mid-print.

use am_dataset::RunRole;
use am_eval::harness::{Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use nsync::prelude::*;

#[test]
fn streaming_agrees_with_batch_and_alerts_early() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);

    // Batch training provides the thresholds.
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids
        .train(&train, split.reference.signal.clone(), 0.3)
        .unwrap();
    let spec = trained.stream_spec(params);

    for test in &split.tests {
        let batch = trained.detect(&test.signal).unwrap();
        let mut stream = spec.open().unwrap();
        // Feed 0.5-second chunks like a DAQ would.
        let chunk = (0.5 * test.signal.fs()) as usize;
        let mut first_alert_window = None;
        let mut i = 0;
        while i < test.signal.len() {
            let end = (i + chunk).min(test.signal.len());
            let verdicts = stream.push(&test.signal.slice(i..end).unwrap()).unwrap();
            if first_alert_window.is_none() {
                first_alert_window = verdicts.iter().map(|v| v.window_span.0).min();
            }
            i = end;
        }
        assert_eq!(
            stream.max_severity().is_some(),
            batch.intrusion,
            "stream/batch disagree on {}",
            test.role
        );
        if let (Some(stream_first), Some(batch_first)) =
            (first_alert_window, batch.first_alert_index)
        {
            assert_eq!(
                stream_first, batch_first,
                "first alert differs on {}",
                test.role
            );
        }
    }
}

#[test]
fn speed_attack_alert_arrives_before_print_ends() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids
        .train(&train, split.reference.signal.clone(), 0.3)
        .unwrap();
    let speed = split
        .tests
        .iter()
        .find(|c| matches!(&c.role, RunRole::Malicious { attack, .. } if attack == "Speed0.95"))
        .unwrap();
    let detection = trained.detect(&speed.signal).unwrap();
    assert!(detection.intrusion);
    let windows = detection.h_dist_filtered.len();
    let first = detection.first_alert_index.unwrap();
    assert!(
        first < windows,
        "alert must come before the final window ({first}/{windows})"
    );
}
