//! The parallel grid engine is deterministic: identical [`GridResults`]
//! and byte-identical rendered tables at 1 thread, at N threads, and
//! across repeated invocations.

use am_eval::engine::{run_grid_with, EngineConfig, GridResults};
use am_eval::tables::{average_accuracies, table5, table6, table7, table8, table9, TableContext};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;

fn rendered(grid: &GridResults) -> String {
    let mut out = String::new();
    for table in [
        table5(grid),
        table6(grid),
        table7(grid),
        table8(grid),
        table9(grid),
    ] {
        out.push_str(&table.render());
        out.push('\n');
    }
    for (name, acc) in average_accuracies(grid) {
        out.push_str(&format!("{name} {acc:.6}\n"));
    }
    out
}

#[test]
fn grid_is_byte_identical_across_thread_counts_and_runs() {
    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);
    let (one, report_one) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();
    let (four, report_four) = run_grid_with(&ctx, &EngineConfig::with_threads(4)).unwrap();
    let (again, _) = run_grid_with(&ctx, &EngineConfig::with_threads(4)).unwrap();

    assert_eq!(report_one.threads, 1);
    assert_eq!(report_four.threads, 4);
    // Structured results identical regardless of scheduling.
    assert_eq!(one, four);
    assert_eq!(four, again);
    // And the rendered artifacts are byte-identical.
    let r1 = rendered(&one);
    assert!(!r1.is_empty());
    assert_eq!(r1, rendered(&four));
    assert_eq!(r1, rendered(&again));
    // Cell order itself is part of the contract (tables iterate it).
    let order: Vec<_> = one
        .cells
        .iter()
        .map(|c| (c.spec.kind, c.channel, c.transform))
        .collect();
    let order4: Vec<_> = four
        .cells
        .iter()
        .map(|c| (c.spec.kind, c.channel, c.transform))
        .collect();
    assert_eq!(order, order4);
}
