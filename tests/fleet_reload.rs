//! Hot-reload integration: manifest-driven add/drop/swap against a live
//! fleet (DESIGN.md §12.4). The load-bearing properties:
//!
//! - printers not named by a reload plan produce **byte-identical**
//!   verdict streams to a run with no reload at all;
//! - a spec swap rides the shard FIFO — the swapped printer's
//!   `windows_seen` keeps counting across the swap;
//! - a shape-mismatched swap is refused on the shard thread (counted in
//!   `spec_swap_failures`) and the old detector keeps running;
//! - per-entry reload failures (unknown spec key, unknown printer) are
//!   collected, not fatal;
//! - `WireServer::reload` admits a printer mid-stream: frames that were
//!   `unknown_printer` rejects before the reload deliver after it.

use am_fleet::sim::{FleetSim, PrinterScript, SimConfig};
use am_fleet::{
    AlertPolicy, Fleet, FleetConfig, FleetError, FleetManifest, FleetSnapshot, IngestPolicy,
    PrinterId, ReloadPlan,
};
use am_wire::{EdgeConfig, WireFrame, WireServer};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const FRAMES: usize = 24;

fn scripts(sim: &FleetSim, ids: &[u64], frames: usize) -> Vec<PrinterScript> {
    ids.iter()
        .map(|&id| {
            let mut s = sim.script(PrinterId(id)).expect("script builds");
            s.chunks.truncate(frames);
            s
        })
        .collect()
}

fn blocking_fleet() -> Fleet {
    Fleet::spawn(
        FleetConfig::default()
            .with_ingest(IngestPolicy::Block)
            .with_alert_policy(AlertPolicy::Block),
    )
}

fn send_frame_range(fleet: &Fleet, scripts: &[PrinterScript], frames: std::ops::Range<usize>) {
    for frame in frames {
        for script in scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                fleet
                    .send(script.printer, chunk.clone())
                    .expect("block ingest");
            }
        }
    }
}

fn spec_swaps(snapshot: &FleetSnapshot) -> (u64, u64) {
    snapshot.shards.iter().fold((0, 0), |(ok, bad), s| {
        (ok + s.stats.spec_swaps, bad + s.stats.spec_swap_failures)
    })
}

/// Drains the alert channel so `AlertPolicy::Block` senders never stall.
fn discard_alerts(fleet: &Fleet) -> std::thread::JoinHandle<()> {
    let rx = fleet.verdicts();
    std::thread::spawn(move || for _ in rx.iter() {})
}

#[test]
fn reload_touches_only_the_printers_it_names() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    // Printer ids 0..6; even ids run um3/acc, odd um3/pwr (sim layout).
    // The swap happens early: a re-seated stream needs a full detection
    // window of fresh samples before it produces verdicts again (same
    // cost as a resync), so most of the script must follow it.
    const LONG: usize = 48;
    const SWAP_AT: usize = 12;
    let roster: Vec<u64> = (0..6).collect();
    let scripts = scripts(&sim, &roster, LONG);

    // A re-trained model published under a fresh registry key: same
    // shape as um3/acc, so live detectors can adopt it.
    let acc = sim
        .registry()
        .get(sim.key_of(PrinterId(0)))
        .expect("acc spec");
    sim.registry().insert("um3/acc-v2", acc.as_ref().clone());

    let dropped = PrinterId(5);
    let mut v1 = FleetManifest::new();
    for s in &scripts {
        v1.assign(s.printer, &s.key);
    }
    // v2, as a farm controller would rewrite it: printer 0 re-trained,
    // printer 5 retired, printer 6 commissioned.
    let v2_text: String = v1
        .entries()
        .filter(|(p, _)| *p != dropped)
        .map(|(p, k)| {
            let key = if p == PrinterId(0) { "um3/acc-v2" } else { k };
            format!("printer {} {key}\n", p.0)
        })
        .chain([format!("printer 6 {}\n", sim.key_of(PrinterId(6)))])
        .collect();
    let v2 = FleetManifest::parse(&v2_text).expect("well-formed manifest");

    let plan = v1.diff(&v2);
    assert_eq!(plan.add.len(), 1);
    assert_eq!(plan.drop, vec![dropped]);
    assert_eq!(plan.swap.len(), 1);

    // Baseline: same roster, same chunks, no reload.
    let baseline = {
        let mut fleet = blocking_fleet();
        for s in &scripts {
            fleet.register(s.printer, sim.spec_of(s.printer)).unwrap();
        }
        let drain = discard_alerts(&fleet);
        send_frame_range(&fleet, &scripts, 0..LONG);
        let report = fleet.finish().expect("clean shutdown");
        drain.join().unwrap();
        report
    };

    // Reloaded run: half the stream, apply the plan, rest of the stream.
    let mut fleet = blocking_fleet();
    for s in &scripts {
        fleet.register(s.printer, sim.spec_of(s.printer)).unwrap();
    }
    let drain = discard_alerts(&fleet);
    send_frame_range(&fleet, &scripts, 0..SWAP_AT);
    let mid_chunks = fleet.snapshot().chunks();
    assert!(mid_chunks > 0, "stream is live pre-reload");

    let report = fleet.apply(&plan, sim.registry());
    assert!(
        report.clean(),
        "unexpected reload errors: {:?}",
        report.errors
    );
    assert_eq!(report.added, vec![PrinterId(6)]);
    assert_eq!(report.dropped, vec![dropped]);
    assert_eq!(report.swapped, vec![PrinterId(0)]);

    let survivors: Vec<PrinterScript> = scripts
        .iter()
        .filter(|s| s.printer != dropped)
        .cloned()
        .chain(scripts_tail(&sim, 6, LONG))
        .collect();
    send_frame_range(&fleet, &survivors, SWAP_AT..LONG);
    let report = fleet.finish().expect("clean shutdown");
    drain.join().unwrap();

    let (swaps, swap_failures) = spec_swaps(&report.snapshot);
    assert_eq!(swaps, 1, "exactly one spec adoption");
    assert_eq!(swap_failures, 0);

    let of = |r: &am_fleet::FleetReport, id: u64| {
        r.printers
            .iter()
            .find(|p| p.printer == PrinterId(id))
            .cloned()
            .unwrap_or_else(|| panic!("printer-{id} missing from report"))
    };

    // Untouched printers: byte-identical to the no-reload baseline.
    for id in [1u64, 2, 3, 4] {
        assert_eq!(
            format!("{:?}", of(&baseline, id)).into_bytes(),
            format!("{:?}", of(&report, id)).into_bytes(),
            "printer-{id} observed a reload it was not named in"
        );
    }
    // The swapped printer kept its verdict stream running: every chunk
    // routed, detector alive, and the re-seated stream produced windows
    // against the new reference.
    let swapped = of(&report, 0);
    assert_eq!(swapped.chunks, LONG as u64, "swap lost chunks");
    assert!(!swapped.dead, "swap killed printer-0");
    assert!(
        swapped.windows_seen > 0,
        "no windows after the swap ({} chunks post-swap)",
        LONG - SWAP_AT
    );
    // The added printer is live; the dropped one was retired at the
    // detach — its report only covers the pre-reload prefix.
    assert!(of(&report, 6).windows_seen > 0, "added printer never ran");
    let retired = of(&report, dropped.0);
    assert_eq!(retired.chunks, SWAP_AT as u64, "retired mid-stream");
    assert!(retired.chunks < of(&baseline, dropped.0).chunks);
}

fn scripts_tail(sim: &FleetSim, id: u64, frames: usize) -> Option<PrinterScript> {
    let mut s = sim.script(PrinterId(id)).expect("script builds");
    s.chunks.truncate(frames);
    Some(s)
}

#[test]
fn shape_mismatched_swap_is_refused_and_detector_survives() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    let scripts = scripts(&sim, &[0], FRAMES); // printer 0: um3/acc, 3 channels
    let mut fleet = blocking_fleet();
    fleet
        .register(PrinterId(0), sim.spec_of(PrinterId(0)))
        .unwrap();
    let drain = discard_alerts(&fleet);
    send_frame_range(&fleet, &scripts, 0..FRAMES / 2);

    // um3/pwr is single-channel: adoption must fail shard-side.
    let plan = ReloadPlan {
        swap: vec![(PrinterId(0), sim.key_of(PrinterId(1)).to_string())],
        ..ReloadPlan::default()
    };
    let report = fleet.apply(&plan, sim.registry());
    assert!(
        report.clean(),
        "enqueue itself succeeds: {:?}",
        report.errors
    );

    send_frame_range(&fleet, &scripts, FRAMES / 2..FRAMES);
    let report = fleet.finish().expect("clean shutdown");
    drain.join().unwrap();

    let (swaps, swap_failures) = spec_swaps(&report.snapshot);
    assert_eq!(swaps, 0);
    assert_eq!(swap_failures, 1, "mismatch must be counted, not adopted");
    let printer = &report.printers[0];
    assert!(
        printer.windows_seen > 0 && !printer.dead,
        "old detector must keep running after a refused swap"
    );
}

#[test]
fn per_entry_reload_failures_are_collected_not_fatal() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    let mut fleet = blocking_fleet();
    fleet
        .register(PrinterId(0), sim.spec_of(PrinterId(0)))
        .unwrap();
    let drain = discard_alerts(&fleet);

    let plan = ReloadPlan {
        add: vec![
            (PrinterId(1), "no/such/model".to_string()), // unknown spec
            (PrinterId(2), sim.key_of(PrinterId(2)).to_string()), // fine
            (PrinterId(0), sim.key_of(PrinterId(0)).to_string()), // duplicate
        ],
        drop: vec![PrinterId(77)], // never registered
        swap: vec![(PrinterId(88), sim.key_of(PrinterId(0)).to_string())],
    };
    let report = fleet.apply(&plan, sim.registry());
    assert_eq!(report.added, vec![PrinterId(2)], "good entry still applies");
    assert_eq!(report.errors.len(), 4, "errors: {:?}", report.errors);
    let error_for = |id: u64| {
        report
            .errors
            .iter()
            .find(|(p, _)| *p == PrinterId(id))
            .map(|(_, e)| e)
            .unwrap_or_else(|| panic!("no error recorded for printer-{id}"))
    };
    assert!(matches!(error_for(1), FleetError::UnknownSpec(k) if k == "no/such/model"));
    assert!(matches!(error_for(0), FleetError::DuplicatePrinter(_)));
    assert!(matches!(error_for(77), FleetError::UnknownPrinter(_)));
    assert!(matches!(error_for(88), FleetError::UnknownPrinter(_)));

    let report = fleet
        .finish()
        .expect("partial reload must not poison shutdown");
    drain.join().unwrap();
    assert_eq!(report.printers.len(), 2);
}

#[test]
fn wire_server_reload_admits_a_printer_mid_stream() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    let scripts = scripts(&sim, &[0, 2], FRAMES);
    let mut fleet = blocking_fleet();
    // Only printer 0 is provisioned at spawn; printer 2 joins later.
    fleet
        .register(PrinterId(0), sim.spec_of(PrinterId(0)))
        .unwrap();
    let server = WireServer::spawn(
        fleet,
        EdgeConfig::default()
            .with_udp_bind(None)
            .with_rate_limit(1_000_000.0, 1_000_000.0),
    )
    .expect("bind loopback listener");
    let rx = server.verdicts();
    let drain = std::thread::spawn(move || for _ in rx.iter() {});
    let mut conn = TcpStream::connect(server.tcp_addr().expect("tcp enabled")).expect("connect");

    let send_range = |conn: &mut TcpStream, frames: std::ops::Range<usize>| {
        let mut buf = Vec::new();
        for frame in frames {
            for script in &scripts {
                if let Some(chunk) = script.chunks.get(frame) {
                    WireFrame {
                        printer: script.printer,
                        channel: 0,
                        seq: frame as u64,
                        chunk: chunk.clone(),
                    }
                    .encode_into(&mut buf);
                }
            }
        }
        conn.write_all(&buf).expect("stream frames");
        buf.len()
    };

    let wait_until = |cond: &dyn Fn(&am_wire::WireSnapshot) -> bool| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let snap = server.snapshot().wire;
            if cond(&snap) {
                return snap;
            }
            assert!(Instant::now() < deadline, "edge stalled: {snap:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    let half = (FRAMES / 2) as u64;
    send_range(&mut conn, 0..FRAMES / 2);
    // Printer 0's frames deliver; printer 2's are unknown_printer rejects.
    let snap = wait_until(&|s| s.frames_ok + s.rejects.total() >= 2 * half);
    assert_eq!(snap.frames_ok, half);
    assert_eq!(snap.rejects.unknown_printer, half);

    let plan = ReloadPlan {
        add: vec![(PrinterId(2), sim.key_of(PrinterId(2)).to_string())],
        ..ReloadPlan::default()
    };
    let report = server.reload(&plan, sim.registry());
    assert!(report.clean(), "reload errors: {:?}", report.errors);

    send_range(&mut conn, FRAMES / 2..FRAMES);
    drop(conn);
    let want_ok = half + 2 * (FRAMES as u64 - half);
    wait_until(&|s| s.frames_ok >= want_ok);

    let edge = server.finish().expect("clean edge shutdown");
    drain.join().unwrap();
    assert_eq!(edge.wire.frames_ok, want_ok);
    assert_eq!(
        edge.wire.rejects.unknown_printer, half,
        "no rejects after reload"
    );
    let late = edge
        .fleet
        .printers
        .iter()
        .find(|p| p.printer == PrinterId(2))
        .expect("printer-2 joined the fleet");
    // Only half a script arrives after admission — not necessarily
    // enough signal for a full detection window, but every frame must
    // have been routed to a live detector.
    assert_eq!(late.chunks, (FRAMES - FRAMES / 2) as u64);
    assert!(!late.dead, "admitted printer died");
}
