//! The fleet's load-bearing guarantee (DESIGN.md §11): every printer's
//! verdict stream under fleet multiplexing is **byte-identical** to
//! running that printer's `StreamSpec` alone — across 64 printers on two
//! shared models, including degraded printers whose seeded fault plans
//! push them through NaN quarantine and noisy-channel paths.

use am_fleet::sim::{FleetSim, PrinterScript, SimConfig};
use am_fleet::{Fleet, FleetConfig, IngestPolicy, PrinterId};
use nsync::streaming::{ChunkOutcome, StreamSpec};
use nsync::Verdict;
use std::collections::BTreeMap;

const PRINTERS: u64 = 64;
/// Frames kept per printer (debug-mode runtime bound); representative
/// printers keep their full print.
const TRUNCATED_FRAMES: usize = 48;

/// What one printer's detector produced, in a directly comparable form.
#[derive(Debug, PartialEq)]
struct Verdicts {
    verdicts: Vec<Verdict>,
    windows_seen: usize,
    intrusion: bool,
    health: String,
}

fn standalone(spec: &StreamSpec, script: &PrinterScript) -> Verdicts {
    let mut ids = spec.open().expect("open standalone detector");
    let mut verdicts = Vec::new();
    for chunk in &script.chunks {
        match ids
            .push_supervised(chunk)
            .expect("supervised push never errors")
        {
            ChunkOutcome::Processed(batch) => verdicts.extend(batch),
            ChunkOutcome::Resynced | ChunkOutcome::Rejected(_) => {}
        }
    }
    Verdicts {
        verdicts,
        windows_seen: ids.windows_seen(),
        intrusion: ids.max_severity().is_some(),
        health: format!("{:?}", ids.health_report()),
    }
}

#[test]
fn fleet_verdicts_are_byte_identical_to_standalone() {
    let sim = FleetSim::build(SimConfig::default()).expect("sim builds");
    let mut scripts: Vec<PrinterScript> = (0..PRINTERS)
        .map(|id| sim.script(PrinterId(id)).expect("script builds"))
        .collect();
    // The seeded population must cover the interesting cases.
    let faulted = scripts
        .iter()
        .position(|s| s.faulted)
        .expect("a degraded printer") as u64;
    let malicious = scripts
        .iter()
        .position(|s| s.malicious)
        .expect("an attacked printer") as u64;
    assert!(scripts.iter().any(|s| !s.malicious && !s.faulted));
    // Representative printers stream their whole print (so real alert
    // traffic and quarantine transitions are compared); the rest are
    // truncated to keep debug-mode runtime bounded.
    for script in &mut scripts {
        let keep_full = [0, faulted, malicious].contains(&script.printer.0);
        if !keep_full {
            script.chunks.truncate(TRUNCATED_FRAMES);
        }
    }

    // Fleet pass: 5 shards, interleaved ingestion, alerts drained live.
    let cfg = FleetConfig::default()
        .with_shards(5)
        .with_ingest(IngestPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    for script in &scripts {
        fleet
            .register(script.printer, sim.spec_of(script.printer))
            .expect("register");
    }
    let verdict_rx = fleet.verdicts();
    let mut fleet_verdicts: BTreeMap<PrinterId, Vec<Verdict>> = BTreeMap::new();
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap();
    for frame in 0..longest {
        for script in &scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                fleet
                    .send(script.printer, chunk.clone())
                    .expect("block ingest");
            }
        }
        while let Ok(v) = verdict_rx.try_recv() {
            fleet_verdicts.entry(v.printer).or_default().push(v.verdict);
        }
    }
    let report = fleet.finish().expect("clean shutdown");
    for v in &report.leftover_verdicts {
        fleet_verdicts
            .entry(v.printer)
            .or_default()
            .push(v.verdict.clone());
    }
    assert_eq!(report.snapshot.alerts_lost(), 0);
    assert_eq!(report.printers.len(), PRINTERS as usize);

    // Standalone pass: each printer's spec alone, same chunks.
    let mut mismatches = Vec::new();
    for script in &scripts {
        let expected = standalone(&sim.spec_of(script.printer), script);
        let reported = report.printer(script.printer).expect("printer reported");
        let got = Verdicts {
            verdicts: fleet_verdicts.remove(&script.printer).unwrap_or_default(),
            windows_seen: reported.windows_seen,
            intrusion: reported.intrusion,
            health: format!("{:?}", reported.health),
        };
        // Byte-level identity of the whole verdict stream, not just
        // value equality.
        if format!("{expected:?}").into_bytes() != format!("{got:?}").into_bytes() {
            mismatches.push((script.printer, expected, got));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} printers diverged from standalone; first: {:?}",
        mismatches.len(),
        mismatches.first()
    );

    // The degraded printer actually exercised the health machinery, so
    // the identity above covers the quarantine paths too.
    let degraded = report
        .printer(PrinterId(faulted))
        .expect("degraded printer reported");
    assert!(
        !degraded.health.all_healthy(),
        "fault plan produced a fully healthy print: {:?}",
        degraded.health
    );
}
