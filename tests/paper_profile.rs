//! Paper-profile smoke tests: the full-scale constants of Tables I–IV
//! must be executable, not just decorative. (Sensor capture at 48/96 kHz
//! over an hour-long print is deliberately not exercised here — that is
//! what the `small` profile scales down — but slicing and noisy firmware
//! execution of the 60 mm gear run in seconds.)

use am_dataset::{ExperimentSpec, Profile};
use am_gcode::slicer::slice_gear;
use am_printer::config::PrinterModel;
use am_printer::firmware::execute_program;

#[test]
fn paper_gear_slices_and_executes_on_both_printers() {
    for printer in PrinterModel::both() {
        let slice_cfg = Profile::Paper.slice_config(printer);
        let program = slice_gear(&slice_cfg).unwrap();
        // 7.5 mm at 0.2 mm layers.
        assert_eq!(program.layer_count(), 38, "{printer}");
        let config = printer.config();
        let noise = Profile::Paper.time_noise();
        let traj = execute_program(&program, &config, &noise, 1).unwrap();
        // An hour-ish of printing (the paper's gear takes hours on real
        // hardware; our planner is more aggressive but the order of
        // magnitude must hold).
        let motion = traj.duration() - traj.print_start();
        assert!(
            motion > 600.0,
            "{printer}: paper gear should take many minutes, got {motion:.0} s"
        );
        assert_eq!(traj.layer_times().len(), 38);
    }
}

#[test]
fn paper_profile_time_noise_accumulates_to_seconds() {
    let printer = PrinterModel::Um3;
    let slice_cfg = Profile::Paper.slice_config(printer);
    let program = slice_gear(&slice_cfg).unwrap();
    let config = printer.config();
    let noise = Profile::Paper.time_noise();
    let a = execute_program(&program, &config, &noise, 10).unwrap();
    let b = execute_program(&program, &config, &noise, 11).unwrap();
    let diff = (a.duration() - b.duration()).abs();
    assert!(
        diff > 0.5,
        "hour-scale prints should differ by seconds (got {diff:.2} s)"
    );
}

#[test]
fn paper_spec_is_the_published_experiment() {
    let spec = ExperimentSpec {
        profile: Profile::Paper,
        printer: PrinterModel::Um3,
        base_seed: 1,
    };
    let mix = spec.profile.process_mix();
    // 151 benign (1 ref + 50 train + 100 test) + 100 malicious per printer
    // = 302 benign + 200 malicious over both printers, as in the abstract.
    assert_eq!(1 + mix.train + mix.test_benign, 151);
    assert_eq!(mix.malicious_per_attack * 5, 100);
}
