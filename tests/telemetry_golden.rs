//! Telemetry is provably inert: the grid's structured results and the
//! rendered paper tables (the `reproduce_tables` output) are
//! byte-identical whether telemetry is off, on, or tracing.
//!
//! Runs in its own test binary so the process-global telemetry registry
//! is not shared with unrelated tests.

use am_eval::engine::{run_grid_with, EngineConfig, GridResults};
use am_eval::tables::{average_accuracies, table5, table6, table7, table8, table9, TableContext};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;

/// Everything `reproduce_tables` prints for a grid, as one string.
fn rendered(grid: &GridResults) -> String {
    let mut out = String::new();
    for table in [
        table5(grid),
        table6(grid),
        table7(grid),
        table8(grid),
        table9(grid),
    ] {
        out.push_str(&table.render());
        out.push('\n');
    }
    for (name, acc) in average_accuracies(grid) {
        out.push_str(&format!("{name} {acc:.6}\n"));
    }
    out
}

#[test]
fn tables_are_byte_identical_with_telemetry_off_on_and_tracing() {
    let ctx = TableContext::from_sets(vec![tiny_set(PrinterModel::Um3)]);

    am_telemetry::set_enabled(false);
    let (off, _) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
    let off_render = rendered(&off);
    assert!(!off_render.is_empty());
    assert_eq!(
        am_telemetry::trace_event_count(),
        0,
        "disabled telemetry buffered trace events"
    );

    am_telemetry::reset();
    am_telemetry::set_enabled(true);
    let (on, _) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
    assert_eq!(off, on, "telemetry changed the structured grid results");
    assert_eq!(
        off_render,
        rendered(&on),
        "telemetry changed the rendered tables"
    );
    assert!(
        am_telemetry::counter_value("capture.lookups") > 0,
        "the enabled run recorded nothing — the inertness check proved nothing"
    );

    am_telemetry::reset();
    am_telemetry::set_tracing(true);
    let (traced, _) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
    assert_eq!(off, traced, "tracing changed the structured grid results");
    assert_eq!(
        off_render,
        rendered(&traced),
        "tracing changed the rendered tables"
    );
    assert!(am_telemetry::trace_event_count() > 0);

    am_telemetry::set_enabled(false);
    am_telemetry::reset();
}
