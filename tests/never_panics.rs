//! Property suite: the streaming surfaces never panic, whatever the DAQ
//! throws at them — NaN, infinities, empty chunks, mismatched shapes,
//! pathological chunk sizes. Errors are fine; unwinding is not
//! (DESIGN.md §7).

use am_sync::DwmStream;
use nsync::prelude::*;
use proptest::prelude::*;

/// A plausible sensor waveform with one "special" value injected.
///
/// `special` selects the poison (0 = none, 1 = NaN, 2 = +inf, 3 = -inf,
/// 4 = enormous); `special_at` is reduced modulo the length so any
/// sampled index is valid.
fn poisoned(channels: usize, len: usize, special: usize, special_at: usize) -> Signal {
    let fs = 20.0;
    let poison = match special {
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => 1e300,
        _ => 0.0,
    };
    let target = if len > 0 { special_at % len } else { 0 };
    Signal::from_fn(fs, channels, len, |t, f| {
        let idx = (t * fs).round() as usize;
        for (c, v) in f.iter_mut().enumerate() {
            *v = (0.8 * t + c as f64).sin() + 0.5 * (2.3 * t).sin();
            if special != 0 && idx == target {
                *v = poison;
            }
        }
    })
    .unwrap()
}

fn reference(channels: usize) -> Signal {
    poisoned(channels, 400, 0, 0)
}

fn thresholds() -> Thresholds {
    // Any finite thresholds will do: these properties assert absence of
    // panics, not detection quality.
    Thresholds::new(10.0, 10.0, 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_push_never_panics(
        channels in 1usize..4,
        chunk_len in 0usize..90,
        special in 0usize..5,
        special_at in 0usize..10_000,
        chunks in 1usize..8,
    ) {
        let mut ids = StreamSpec::new(reference(channels), DwmParams::from_window(4.0), thresholds())
            .open()
            .unwrap();
        for _ in 0..chunks {
            let chunk = poisoned(channels, chunk_len, special, special_at);
            // Errors are allowed; unwinding is the only failure mode.
            let _ = ids.push(&chunk);
        }
        let _ = ids.health_report();
    }

    #[test]
    fn streaming_rejects_mismatched_channels_without_panicking(
        channels in 1usize..4,
        extra in 1usize..3,
        chunk_len in 1usize..60,
    ) {
        let mut ids = StreamSpec::new(reference(channels), DwmParams::from_window(4.0), thresholds())
            .open()
            .unwrap();
        let bad = poisoned(channels + extra, chunk_len, 0, 0);
        prop_assert!(ids.push(&bad).is_err());
        // The stream survives the rejection and accepts good chunks.
        let good = poisoned(channels, 80, 0, 0);
        prop_assert!(ids.push(&good).is_ok());
    }

    #[test]
    fn dwm_stream_push_never_panics(
        chunk_len in 0usize..130,
        special in 0usize..5,
        special_at in 0usize..10_000,
        chunks in 1usize..6,
    ) {
        let mut stream = DwmStream::new(reference(1), &DwmParams::from_window(4.0)).unwrap();
        for _ in 0..chunks {
            let chunk = poisoned(1, chunk_len, special, special_at);
            let _ = stream.push(&chunk);
        }
        let _ = stream.window(stream.windows_emitted());
    }

    #[test]
    fn distance_metrics_never_panic_on_poisoned_input(
        len_u in 0usize..40,
        len_v in 0usize..40,
        special in 0usize..5,
        special_at in 0usize..10_000,
        which in 0usize..5,
    ) {
        let metric = [
            DistanceMetric::Correlation,
            DistanceMetric::Cosine,
            DistanceMetric::MeanAbsoluteError,
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
        ][which];
        let u: Vec<f64> = if len_u > 0 {
            poisoned(1, len_u, special, special_at).channel(0).to_vec()
        } else {
            Vec::new()
        };
        let v: Vec<f64> = if len_v > 0 {
            poisoned(1, len_v, 0, 0).channel(0).to_vec()
        } else {
            Vec::new()
        };
        if let Ok(d) = metric.try_distance(&u, &v) {
            prop_assert!(d.is_finite(), "Ok distance must be finite, got {d}");
        }
    }

    #[test]
    fn multichannel_distance_never_panics(
        channels in 1usize..4,
        len in 1usize..50,
        special in 0usize..5,
        special_at in 0usize..10_000,
    ) {
        let a = poisoned(channels, len, special, special_at);
        let b = poisoned(channels, len, 0, 0);
        if let Ok(d) = DistanceMetric::Correlation.distance_multichannel(&a, &b) {
            prop_assert!(d.is_finite());
        }
    }

    #[test]
    fn batch_detect_never_panics_on_poisoned_observation(
        special in 1usize..5,
        special_at in 0usize..10_000,
    ) {
        let train: Vec<Signal> = (1..=3).map(|i| poisoned(1, 400, 0, i)).collect();
        let trained = IdsBuilder::new()
            .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
            .build()
            .unwrap()
            .train(&train, reference(1), 0.3)
            .unwrap();
        let observed = poisoned(1, 400, special, special_at);
        // May detect, may error — must not unwind.
        let _ = trained.detect(&observed);
    }
}
