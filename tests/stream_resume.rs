//! `StreamSpec::resume` round-trips: a detector that dies mid-print can
//! be rebuilt from the shared spec at its last finished window, keeps
//! the global window indexing, and still catches an attack in the tail
//! of the print — the exact contract the single-printer monitor watchdog
//! and the fleet's per-printer watchdog both rely on.

use am_dsp::Signal;
use nsync::prelude::*;
use nsync::Verdict;

fn benign(phase: f64) -> Signal {
    Signal::from_fn(20.0, 1, 1600, |t, f| {
        f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin()
    })
    .unwrap()
}

/// Benign first half, strongly distorted second half — an attack that
/// begins after the simulated detector death.
fn tail_attacked() -> Signal {
    Signal::from_fn(20.0, 1, 1600, |t, f| {
        let clean = (0.8 * t).sin() + 0.5 * (2.3 * t + 2e-3).sin();
        f[0] = if t < 40.0 { clean } else { 1.7 * clean + 0.3 };
    })
    .unwrap()
}

fn toy_spec() -> StreamSpec {
    let params = DwmParams::from_window(4.0);
    let train: Vec<Signal> = (1..=4).map(|i| benign(i as f64 * 1e-3)).collect();
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    ids.train(&train, benign(0.0), 0.3)
        .unwrap()
        .stream_spec(params)
}

fn feed(ids: &mut StreamingIds, signal: &Signal, range: std::ops::Range<usize>) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let end = (i + 16).min(range.end);
        verdicts.extend(ids.push(&signal.slice(i..end).unwrap()).unwrap());
        i = end;
    }
    verdicts
}

#[test]
fn resume_at_zero_is_byte_identical_to_open() {
    let spec = toy_spec();
    let observed = tail_attacked();
    let mut opened = spec.open().unwrap();
    let mut resumed = spec.resume(0).unwrap();
    let a = feed(&mut opened, &observed, 0..observed.len());
    let b = feed(&mut resumed, &observed, 0..observed.len());
    assert_eq!(format!("{a:?}").into_bytes(), format!("{b:?}").into_bytes());
    assert_eq!(opened.windows_seen(), resumed.windows_seen());
    assert_eq!(opened.max_severity(), resumed.max_severity());
}

#[test]
fn resume_after_death_keeps_global_window_indexing() {
    let spec = toy_spec();
    let observed = tail_attacked();
    let half = observed.len() / 2;

    // First detector dies halfway through the print.
    let mut first = spec.open().unwrap();
    let early_verdicts = feed(&mut first, &observed, 0..half);
    let died_at = first.windows_seen();
    assert!(died_at > 0, "first half must complete windows");
    assert!(
        early_verdicts.is_empty() && first.max_severity().is_none(),
        "the benign first half must stay quiet"
    );
    drop(first); // the simulated monitor death

    // The watchdog path: rebuild from the spec at the last finished
    // window (the monitor and am-fleet both call exactly this).
    let mut second = spec.resume(died_at).unwrap();
    assert_eq!(
        second.windows_seen(),
        died_at,
        "resume seats the window counter"
    );
    let late_verdicts = feed(&mut second, &observed, half..observed.len());

    // Window indices continue the global numbering rather than
    // restarting at zero.
    assert!(
        late_verdicts.iter().all(|v| v.window_span.0 >= died_at),
        "post-resume verdicts must carry post-resume window indices: {late_verdicts:?}"
    );
    assert!(second.windows_seen() > died_at);
    // The tail attack is still caught by the resumed detector.
    assert!(
        second.max_severity().is_some(),
        "resumed detector must catch the tail attack"
    );
    // And the resumed health machine starts clean — death is not a
    // sensor fault.
    assert_eq!(second.health_report().resyncs, 0);
}

#[test]
fn resume_survives_repeated_deaths() {
    let spec = toy_spec();
    let observed = tail_attacked();
    let step = observed.len() / 4;
    let mut windows = 0;
    let mut intrusion = false;
    let mut all_verdicts = Vec::new();
    // Four generations, each dying after a quarter of the print.
    for generation in 0..4 {
        let mut ids = spec.resume(windows).unwrap();
        let start = generation * step;
        let end = if generation == 3 {
            observed.len()
        } else {
            start + step
        };
        all_verdicts.extend(feed(&mut ids, &observed, start..end));
        assert!(ids.windows_seen() >= windows);
        windows = ids.windows_seen();
        intrusion |= ids.max_severity().is_some();
    }
    assert!(intrusion, "the attack must survive three detector deaths");
    // Window indices across generations are globally monotonic.
    assert!(all_verdicts
        .windows(2)
        .all(|w| w[0].window() <= w[1].window()));
}
