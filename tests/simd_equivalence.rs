//! Property tests pinning the `am_dsp::simd` backend contract:
//!
//! - `Backend::Ordered` is bit-identical to the plain sequential loops it
//!   replaced (the legacy formulas are re-stated here as oracles).
//! - `Backend::Scalar` and `Backend::Avx2` are bit-identical to each
//!   other on every input length, including sub-lane-width tails — the
//!   scalar lanes exist precisely to mirror the vector reassociation.
//! - The reassociated backends stay within a condition-aware error bound
//!   of the ordered sum (tight ULP bound for well-conditioned inputs).
//! - Elementwise kernels are bit-identical across *all* backends.
//! - NaN and infinity propagate through reductions on every backend.
//!
//! Every test here uses the explicit `_with(backend, ...)` entry points,
//! never the process-wide dispatch, except the single end-to-end test at
//! the bottom which owns `force_mode` for this binary.

use am_dsp::fft::Complex;
use am_dsp::simd::{self, Backend, SimdMode};
use proptest::prelude::*;

/// Backends available on this host (Avx2 only where detectable).
fn backends() -> Vec<Backend> {
    let mut all = vec![Backend::Ordered, Backend::Scalar];
    if Backend::Avx2.available() {
        all.push(Backend::Avx2);
    }
    all
}

/// Lane-reassociated backends (everything except the legacy order).
fn laned() -> Vec<Backend> {
    backends().into_iter().skip(1).collect()
}

/// ULP distance between two finite f64s of the same sign regime.
fn ulp_distance(a: f64, b: f64) -> u64 {
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(1) - bits - 1
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

/// `|approx - exact|` must stay within `2 n eps * sum(|terms|)` — the
/// standard backward-error bound for any summation order — and within a
/// few ULP when the sum is well-conditioned.
fn assert_reassociation_bound(ordered: f64, laned: f64, abs_term_sum: f64, n: usize, what: &str) {
    let eps = f64::EPSILON;
    let bound = 2.0 * n as f64 * eps * abs_term_sum + f64::MIN_POSITIVE;
    let diff = (laned - ordered).abs();
    assert!(
        diff <= bound,
        "{what}: |{laned} - {ordered}| = {diff} > condition bound {bound}"
    );
    // Well-conditioned: the terms do not cancel, so lanes agree tightly.
    if abs_term_sum <= 4.0 * ordered.abs() {
        assert!(
            ulp_distance(ordered, laned) <= 4 * n as u64,
            "{what}: well-conditioned sum drifted {} ULP",
            ulp_distance(ordered, laned)
        );
    }
}

/// Trims two independently sampled vectors to a common length. Sampled
/// lengths span `0..71`, so empty, sub-lane (<4, <8), one-past-lane and
/// multi-block inputs all get exercised.
fn paired<'v>(a: &'v [f64], b: &'v [f64]) -> (&'v [f64], &'v [f64]) {
    let n = a.len().min(b.len());
    (&a[..n], &b[..n])
}

/// Element strategy shared by every property below.
fn elems() -> proptest::collection::VecStrategy<std::ops::Range<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 0..71)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Ordered backend == the exact legacy loops, bitwise.
    #[test]
    fn prop_ordered_matches_legacy(a in elems(), b in elems(), mu in -5.0f64..5.0) {
        let (a, b) = paired(&a, &b);
        let o = Backend::Ordered;
        prop_assert_eq!(simd::sum_with(o, a).to_bits(), a.iter().sum::<f64>().to_bits());
        // Explicit `0.0` folds, matching the replaced loops bit-for-bit
        // (`Iterator::sum` folds from `-0.0`, visible on empty slices).
        let dot: f64 = a.iter().zip(b).fold(0.0, |acc, (x, y)| acc + x * y);
        prop_assert_eq!(simd::dot_with(o, a, b).to_bits(), dot.to_bits());
        let sq: f64 = a.iter().fold(0.0, |acc, x| acc + x * x);
        prop_assert_eq!(simd::sq_norm_with(o, a).to_bits(), sq.to_bits());
        let mae: f64 = a.iter().zip(b).fold(0.0, |acc, (x, y)| acc + (x - y).abs());
        prop_assert_eq!(simd::abs_diff_sum_with(o, a, b).to_bits(), mae.to_bits());
        let sqd: f64 = a.iter().zip(b).fold(0.0, |acc, (x, y)| acc + (x - y) * (x - y));
        prop_assert_eq!(simd::sq_diff_sum_with(o, a, b).to_bits(), sqd.to_bits());
        let csq: f64 = a.iter().fold(0.0, |acc, x| acc + (x - mu) * (x - mu));
        prop_assert_eq!(simd::centered_sq_sum_with(o, a, mu).to_bits(), csq.to_bits());
    }

    /// Scalar lanes are bit-identical to AVX2 on every length (the whole
    /// point of mirroring the lane structure). Skipped on non-AVX2 hosts.
    #[test]
    fn prop_scalar_lanes_match_avx2(a in elems(), b in elems(), mu in -5.0f64..5.0, mv in -5.0f64..5.0) {
        if !Backend::Avx2.available() {
            return;
        }
        let (a, b) = paired(&a, &b);
        let (s, v) = (Backend::Scalar, Backend::Avx2);
        prop_assert_eq!(simd::sum_with(s, a).to_bits(), simd::sum_with(v, a).to_bits());
        prop_assert_eq!(simd::dot_with(s, a, b).to_bits(), simd::dot_with(v, a, b).to_bits());
        prop_assert_eq!(simd::sq_norm_with(s, a).to_bits(), simd::sq_norm_with(v, a).to_bits());
        prop_assert_eq!(
            simd::abs_diff_sum_with(s, a, b).to_bits(),
            simd::abs_diff_sum_with(v, a, b).to_bits()
        );
        prop_assert_eq!(
            simd::sq_diff_sum_with(s, a, b).to_bits(),
            simd::sq_diff_sum_with(v, a, b).to_bits()
        );
        prop_assert_eq!(
            simd::centered_sq_sum_with(s, a, mu).to_bits(),
            simd::centered_sq_sum_with(v, a, mu).to_bits()
        );
        let (n1, d1, e1) = simd::centered_dot_norms_with(s, a, mu, b, mv);
        let (n2, d2, e2) = simd::centered_dot_norms_with(v, a, mu, b, mv);
        prop_assert_eq!(n1.to_bits(), n2.to_bits());
        prop_assert_eq!(d1.to_bits(), d2.to_bits());
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
        let mut fa = a.to_vec();
        let mut fb = a.to_vec();
        let ra = simd::center_and_sq_norm_with(s, &mut fa, mu);
        let rb = simd::center_and_sq_norm_with(v, &mut fb, mu);
        prop_assert_eq!(ra.to_bits(), rb.to_bits());
        prop_assert_eq!(
            fa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            fb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Reassociated reductions stay within the summation condition bound
    /// of the ordered result, tight ULP when nothing cancels.
    #[test]
    fn prop_reassociation_error_bounded(a in elems(), b in elems()) {
        let (a, b) = paired(&a, &b);
        let o = Backend::Ordered;
        let n = a.len().max(1);
        for backend in laned() {
            assert_reassociation_bound(
                simd::sum_with(o, a),
                simd::sum_with(backend, a),
                a.iter().map(|x| x.abs()).sum(),
                n,
                "sum",
            );
            assert_reassociation_bound(
                simd::dot_with(o, a, b),
                simd::dot_with(backend, a, b),
                a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum(),
                n,
                "dot",
            );
            assert_reassociation_bound(
                simd::sq_norm_with(o, a),
                simd::sq_norm_with(backend, a),
                a.iter().map(|x| x * x).sum(),
                n,
                "sq_norm",
            );
        }
    }

    /// Elementwise kernels have no accumulation order: bit-identical on
    /// every backend, including the AVX2 conjugate multiply.
    #[test]
    fn prop_elementwise_bit_identical_everywhere(a in elems(), b in elems(), c in -5.0f64..5.0) {
        let (a, b) = paired(&a, &b);
        let mut expect_min = vec![0.0; a.len()];
        simd::min2_into_with(Backend::Ordered, a, b, &mut expect_min);
        let mut expect_mul = a.to_vec();
        simd::mul_in_place_with(Backend::Ordered, &mut expect_mul, b);
        let mut expect_sub = Vec::new();
        simd::sub_scalar_into_with(Backend::Ordered, a, c, &mut expect_sub);
        let ca: Vec<Complex> = a.iter().zip(b).map(|(&r, &i)| Complex::new(r, i)).collect();
        let cb: Vec<Complex> = b.iter().zip(a).map(|(&r, &i)| Complex::new(r, i)).collect();
        let mut expect_conj = ca.clone();
        simd::conj_mul_in_place_with(Backend::Ordered, &mut expect_conj, &cb);
        for backend in laned() {
            let mut got = vec![0.0; a.len()];
            simd::min2_into_with(backend, a, b, &mut got);
            prop_assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect_min.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let mut got = a.to_vec();
            simd::mul_in_place_with(backend, &mut got, b);
            prop_assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect_mul.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let mut got = Vec::new();
            simd::sub_scalar_into_with(backend, a, c, &mut got);
            prop_assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect_sub.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let mut got = ca.clone();
            simd::conj_mul_in_place_with(backend, &mut got, &cb);
            for (g, e) in got.iter().zip(&expect_conj) {
                prop_assert_eq!(g.re.to_bits(), e.re.to_bits());
                prop_assert_eq!(g.im.to_bits(), e.im.to_bits());
            }
        }
    }

    /// A quarantine escapee (NaN or infinity) must not vanish inside a
    /// reduction on any backend, at any position (head, lane body, tail).
    #[test]
    fn prop_non_finite_propagates(a in proptest::collection::vec(-10.0f64..10.0, 1..70), at in 0usize..70, inf in 0u32..2) {
        let mut a = a;
        let at = at % a.len();
        a[at] = if inf == 1 { f64::INFINITY } else { f64::NAN };
        for backend in backends() {
            prop_assert!(!simd::sum_with(backend, &a).is_finite());
            prop_assert!(!simd::sq_norm_with(backend, &a).is_finite());
            prop_assert!(!simd::centered_sq_sum_with(backend, &a, 0.5).is_finite());
        }
    }
}

/// End-to-end: the reassociated fast path tracks the bit-stable default
/// closely on the DTW hot path. This test owns `force_mode` for the
/// whole binary — every other test here uses explicit `_with` backends.
#[test]
fn fast_dispatch_tracks_bit_stable_dtw() {
    use am_dsp::Signal;
    use am_sync::dtw::{dtw_with, DtwScratch};
    let mk = |stretch: f64| {
        Signal::from_fn(100.0, 4, 96, move |t, frame| {
            for (c, v) in frame.iter_mut().enumerate() {
                *v = ((1.0 + c as f64) * 2.3 * t * stretch).sin();
            }
        })
        .expect("valid signal")
    };
    let a = mk(1.07);
    let b = mk(1.0);
    // The fast path also shrinks the sliding-dot transform from
    // next_pow2(x+y) to next_pow2(x) (exact circular correlation at the
    // kept lags, different rounding) — pin it against the legacy size.
    let xs: Vec<f64> = (0..1500).map(|i| (i as f64 * 0.37).sin()).collect();
    let ys: Vec<f64> = (0..600).map(|i| (i as f64 * 0.53).cos()).collect();
    simd::force_mode(SimdMode::Off);
    let stable = dtw_with(&a, &b, &mut DtwScratch::new()).expect("dtw");
    let dot_stable = am_dsp::fft::sliding_dot_fft(&xs, &ys).expect("sliding dot");
    let fast_dispatch = simd::force_mode(SimdMode::Fast);
    let fast = dtw_with(&a, &b, &mut DtwScratch::new()).expect("dtw");
    let dot_fast = am_dsp::fft::sliding_dot_fft(&xs, &ys).expect("sliding dot");
    simd::force_mode(SimdMode::Auto);
    assert_eq!(dot_stable.len(), dot_fast.len());
    let scale: f64 = am_dsp::fft::sliding_fft_len(xs.len(), ys.len()) as f64;
    for (i, (s, f)) in dot_stable.iter().zip(dot_fast.iter()).enumerate() {
        assert!(
            (s - f).abs() <= 1e-10 * scale.max(s.abs()),
            "sliding dot lag {i}: legacy-pad {s} vs minimal-pad {f}"
        );
    }
    assert!(
        (fast.cost - stable.cost).abs() <= 1e-9 * stable.cost.abs().max(1.0),
        "fast ({}) cost {} vs bit-stable cost {}",
        fast_dispatch.label(),
        fast.cost,
        stable.cost
    );
    assert_eq!(
        fast.path, stable.path,
        "warp path should not flip under <=ULP-level cost noise on this input"
    );
}
