//! Property suite for the AMW1 wire decoder: arbitrary and adversarial
//! bytes never panic, every rejection maps to a typed [`WireError`],
//! and every variant of the taxonomy is actually reachable (extends the
//! `never_panics` discipline of DESIGN.md §7 to the network edge).

use am_dsp::Signal;
use am_fleet::PrinterId;
use am_wire::frame::{MAGIC, VERSION};
use am_wire::{decode_datagram, FrameDecoder, WireError, WireFrame, HEADER_LEN, TRAILER_LEN};
use proptest::prelude::*;

const MAX_FRAME: usize = 1 << 16;

fn frame(printer: u64, seq: u64, channels: usize, len: usize) -> WireFrame {
    WireFrame {
        printer: PrinterId(printer),
        channel: (printer % 7) as u8,
        seq,
        chunk: Signal::from_fn(200.0, channels.max(1), len.max(1), |t, f| {
            for (c, v) in f.iter_mut().enumerate() {
                *v = (t * (c + 1) as f64).sin();
            }
        })
        .expect("valid test chunk"),
    }
}

/// Drains a decoder exactly as the TCP handler does: pull until `None`,
/// drop the stream on a fatal error.
fn drain(dec: &mut FrameDecoder) -> (usize, Vec<WireError>, bool) {
    let mut ok = 0;
    let mut errors = Vec::new();
    while let Some(result) = dec.next_frame() {
        match result {
            Ok(_) => ok += 1,
            Err(e) => {
                let fatal = e.stream_fatal();
                errors.push(e);
                if fatal {
                    return (ok, errors, true);
                }
            }
        }
    }
    (ok, errors, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure noise: any byte soup decodes to a typed error (or, with
    /// astronomically small probability, a frame) — never a panic.
    #[test]
    fn random_bytes_never_panic(raw in proptest::collection::vec(0usize..256, 0..600)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_datagram(&bytes, MAX_FRAME);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.extend(&bytes);
        let _ = drain(&mut dec);
        let _ = dec.finish();
    }

    /// Single-byte corruption of a valid frame: every byte of the frame
    /// is CRC-protected (and the CRC protects itself), so any flip is
    /// rejected — and classified, never panicking.
    #[test]
    fn any_single_byte_flip_is_rejected(
        printer in 0u64..1000,
        seq in 0u64..1000,
        shape in (1usize..4, 1usize..40),
        at in 0usize..10_000,
        flip in 1usize..256,
    ) {
        let (channels, len) = shape;
        let mut bytes = frame(printer, seq, channels, len).encode();
        let at = at % bytes.len();
        bytes[at] ^= flip as u8;
        let result = decode_datagram(&bytes, MAX_FRAME);
        prop_assert!(result.is_err(), "corrupt byte {at} accepted");
    }

    /// A garbage prefix ahead of valid frames is detected as a framing
    /// error and the taxonomy stays total; a BadPayload-only corruption
    /// lets the stream continue to the next frame.
    #[test]
    fn garbage_between_frames_never_panics(
        garbage in proptest::collection::vec(0usize..256, 1..64),
        split in 1usize..48,
    ) {
        let good: Vec<u8> = (0..3u64).flat_map(|i| frame(i, i, 1, 8).encode()).collect();
        let mut stream: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        stream.extend_from_slice(&good);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        for piece in stream.chunks(split) {
            dec.extend(piece);
            let (_, _, fatal) = drain(&mut dec);
            if fatal {
                // The handler would drop the connection here; a fresh
                // decoder on the remaining bytes must also not panic.
                dec = FrameDecoder::new(MAX_FRAME);
            }
        }
        let _ = dec.finish();
    }

    /// Truncating a valid frame at any point is always `Truncated` at
    /// end-of-stream, with `needed > have`.
    #[test]
    fn truncation_is_always_classified(cut in 1usize..10_000) {
        let bytes = frame(1, 1, 2, 16).encode();
        let cut = cut % (bytes.len() - 1) + 1;
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.extend(&bytes[..cut]);
        prop_assert!(dec.next_frame().is_none() || cut >= bytes.len());
        match dec.finish() {
            Err(WireError::Truncated { needed, have }) => prop_assert!(needed > have),
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}

/// Every decoder-reachable [`WireError`] variant is produced by a
/// concrete malformed input, and its `kind()` label is stable (the
/// per-source counters in `am-wire` key off these).
#[test]
fn every_wire_error_variant_is_exercised() {
    let good = frame(9, 4, 2, 10).encode();

    let truncated = decode_datagram(&good[..HEADER_LEN - 1], MAX_FRAME).unwrap_err();
    assert_eq!(truncated.kind(), "truncated");
    assert!(truncated.stream_fatal());

    let mut bad = good.clone();
    bad[1] = b'Z';
    let bad_magic = decode_datagram(&bad, MAX_FRAME).unwrap_err();
    assert_eq!(bad_magic.kind(), "bad_magic");
    assert!(bad_magic.stream_fatal());

    let mut bad = good.clone();
    bad[3] = VERSION + 1;
    let bad_version = decode_datagram(&bad, MAX_FRAME).unwrap_err();
    assert_eq!(bad_version.kind(), "bad_version");
    assert!(bad_version.stream_fatal());

    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let bad_crc = decode_datagram(&bad, MAX_FRAME).unwrap_err();
    assert_eq!(bad_crc.kind(), "bad_crc");
    assert!(bad_crc.stream_fatal());

    let mut bad = good.clone();
    bad[22..26].copy_from_slice(&(u32::MAX / 2).to_le_bytes());
    let oversized = decode_datagram(&bad, MAX_FRAME).unwrap_err();
    assert_eq!(oversized.kind(), "oversized");
    assert!(oversized.stream_fatal());

    // Internally inconsistent payload with a re-stamped (valid) CRC:
    // framing fine, payload rejected, stream continues.
    let mut bad = good.clone();
    bad[HEADER_LEN] = 0xff; // fs mantissa corrupted → still finite, but
    bad[HEADER_LEN + 8] = 0; // zero channels is the decisive rejection
    bad[HEADER_LEN + 9] = 0;
    let crc_at = bad.len() - TRAILER_LEN;
    let crc = am_wire::crc32(&bad[..crc_at]);
    bad[crc_at..].copy_from_slice(&crc.to_le_bytes());
    let bad_payload = decode_datagram(&bad, MAX_FRAME).unwrap_err();
    assert_eq!(bad_payload.kind(), "bad_payload");
    assert!(!bad_payload.stream_fatal());

    // UnknownPrinter is raised by the delivery edge, not the byte
    // decoder; its classification contract still holds.
    let unknown = WireError::UnknownPrinter {
        printer: PrinterId(404),
    };
    assert_eq!(unknown.kind(), "unknown_printer");
    assert!(!unknown.stream_fatal());
    assert!(unknown.to_string().contains("printer-404"));

    // The six decoder paths above plus the delivery variant cover the
    // whole taxonomy — update this list when adding variants.
    let kinds = [
        truncated.kind(),
        bad_magic.kind(),
        bad_version.kind(),
        bad_crc.kind(),
        oversized.kind(),
        bad_payload.kind(),
        unknown.kind(),
    ];
    assert_eq!(
        kinds.len(),
        kinds
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        "kind() labels must be distinct: {kinds:?}"
    );
}

/// The sanctioned magic/version constants round-trip through encode —
/// a canary against accidental format drift (bumping VERSION must be a
/// deliberate, reviewed change).
#[test]
fn format_constants_are_pinned() {
    assert_eq!(MAGIC, *b"AMW");
    assert_eq!(VERSION, 1);
    let bytes = frame(1, 1, 1, 1).encode();
    assert_eq!(&bytes[..3], b"AMW");
    assert_eq!(bytes[3], 1);
    assert_eq!(bytes[5], 0, "reserved byte must be zero in v1");
    assert_eq!(bytes.len(), HEADER_LEN + 14 + 8 + TRAILER_LEN);
}
