//! Generalization checks beyond the paper's exact setup:
//!
//! - a *different part* (calibration cube) flows through the same
//!   pipeline and NSYNC still separates benign from attacked prints,
//! - a *third kinematics* (CoreXY) executes and synchronizes,
//! - the scenario zoo's CoreXY and non-gear geometry rows materialize
//!   deterministically and keep their detection quality.

use am_dataset::{ProcessMix, Profile, Transform};
use am_eval::{evaluate_split, DetectorKind, DetectorSpec, Split};
use am_gcode::attacks::Attack;
use am_gcode::slicer::{slice_cube, slice_gear};
use am_printer::config::{PrinterConfig, PrinterModel};
use am_printer::firmware::execute_program;
use am_scenarios::{Machine, Part, ScenarioRegistry};
use am_sensors::channel::SideChannel;
use am_sensors::daq::DaqConfig;
use nsync::prelude::*;

fn capture_acc(
    program: &am_gcode::GcodeProgram,
    printer: &PrinterConfig,
    seed: u64,
) -> am_dsp::Signal {
    let noise = Profile::Small.time_noise();
    let traj = execute_program(program, printer, &noise, seed).unwrap();
    let daq = DaqConfig::realistic(200.0, 16);
    SideChannel::Acc
        .capture(&traj, printer, &daq, seed)
        .unwrap()
}

#[test]
fn cube_part_detects_void_attack() {
    let printer = PrinterConfig::ultimaker3();
    let mut cfg = Profile::Small.slice_config(PrinterModel::Um3);
    cfg.height = 1.2; // keep the test quick: 6 layers
    let benign = slice_cube(&cfg, 20.0).unwrap();

    let reference = capture_acc(&benign, &printer, 100);
    // The CADHD maxima of benign cube runs spread widely across seeds
    // (the cube toolpath is short, so one scheduling gap moves the whole
    // trace); 4 runs under-sample that spread and make the OCC threshold
    // a coin flip. 10 runs cover it.
    let train: Vec<am_dsp::Signal> = (101..=110)
        .map(|s| capture_acc(&benign, &printer, s))
        .collect();
    let params = Profile::Small.dwm_params(PrinterModel::Um3);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let trained = ids.train(&train, reference, 0.3).unwrap();

    // Fresh benign cube passes.
    let benign_obs = capture_acc(&benign, &printer, 111);
    assert!(!trained.detect(&benign_obs).unwrap().intrusion);

    // Voided cube flags. (The Void attack re-slices; slice_cube shares the
    // toolpath machinery, so we re-slice the cube with a void directly.)
    let mut voided_cfg = cfg.clone();
    voided_cfg.void_region = Some(cfg.default_void());
    let voided = slice_cube(&voided_cfg, 20.0).unwrap();
    let attack_obs = capture_acc(&voided, &printer, 106);
    assert!(trained.detect(&attack_obs).unwrap().intrusion);
}

#[test]
fn corexy_machine_synchronizes_benign_runs() {
    let printer = PrinterConfig::corexy_generic();
    let mut cfg = Profile::Small.slice_config(PrinterModel::Um3);
    cfg.height = 1.2;
    let program = slice_gear(&cfg).unwrap();
    let reference = capture_acc(&program, &printer, 7);
    let observed = capture_acc(&program, &printer, 8);
    let params = Profile::Small.dwm_params(PrinterModel::Um3);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let analysis = ids.analyze(&observed, &reference).unwrap();
    let max_h = analysis
        .alignment
        .h_disp
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()));
    // Benign CoreXY runs stay locked (within 2 s of drift).
    assert!(max_h < 2.0 * observed.fs(), "h_disp ran to {max_h}");
    let mean_v = analysis.v_dist.iter().sum::<f64>() / analysis.v_dist.len() as f64;
    assert!(mean_v < 0.7, "mean v_dist {mean_v}");
}

#[test]
fn gear_ids_flags_a_cube_print_entirely() {
    // Printing a different part against a gear reference is the grossest
    // possible "attack" — every sub-module should scream.
    let printer = PrinterConfig::ultimaker3();
    let mut cfg = Profile::Small.slice_config(PrinterModel::Um3);
    cfg.height = 1.2;
    let gear = slice_gear(&cfg).unwrap();
    let reference = capture_acc(&gear, &printer, 200);
    let train: Vec<am_dsp::Signal> = (201..=203)
        .map(|s| capture_acc(&gear, &printer, s))
        .collect();
    let params = Profile::Small.dwm_params(PrinterModel::Um3);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let trained = ids.train(&train, reference, 0.3).unwrap();
    let cube = slice_cube(&cfg, 20.0).unwrap();
    let cube_obs = capture_acc(&cube, &printer, 204);
    let d = trained.detect(&cube_obs).unwrap();
    assert!(d.intrusion);
    let _ = Attack::table1(); // the five G-code attacks remain the main threat set
}

/// Detection-quality mix for scenario rows: large enough for stable
/// recall, small enough for test-time budget.
fn row_mix() -> ProcessMix {
    ProcessMix {
        train: 4,
        test_benign: 3,
        malicious_per_attack: 3,
    }
}

fn row_recall(row: &str, channel: SideChannel, seed: u64) -> f64 {
    let registry = ScenarioRegistry::standard();
    let sc = registry
        .get(row)
        .unwrap_or_else(|| panic!("{row} registered"));
    let set = sc.build_with_mix(Profile::Small, seed, row_mix()).unwrap();
    let captures = set.capture(channel, Transform::Raw).unwrap();
    let split = Split::from_captures(captures).unwrap();
    let spec = DetectorSpec {
        kind: DetectorKind::NsyncDwm,
        window_s: None,
    };
    evaluate_split(&spec, Profile::Small, set.spec.printer, &split)
        .unwrap()
        .overall
        .tpr()
}

#[test]
fn corexy_scenario_rows_are_deterministic_and_detect() {
    let registry = ScenarioRegistry::standard();
    for row in ["kin-corexy-speed", "kin-corexy-clock"] {
        let sc = registry.get(row).unwrap();
        assert_eq!(sc.machine, Machine::CoreXy);
        // Determinism: two materializations replay bit-for-bit.
        let a = sc.build_with_mix(Profile::Small, 0xC0, row_mix()).unwrap();
        let b = sc.build_with_mix(Profile::Small, 0xC0, row_mix()).unwrap();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.trajectory.duration(), y.trajectory.duration(), "{row}");
        }
    }
    // Detection quality: the CoreXY firmware timing skew stays visible
    // from the acceleration channel.
    let recall = row_recall("kin-corexy-clock", SideChannel::Acc, 0x5EED);
    assert!(recall > 0.5, "kin-corexy-clock recall {recall:.2}");
}

#[test]
fn new_geometry_scenario_rows_are_deterministic_and_detect() {
    let registry = ScenarioRegistry::standard();
    let bracket = registry.get("geom-um3-bracket-speed").unwrap();
    assert_eq!(bracket.part, Part::Bracket);
    let cube = registry.get("geom-um3-cube-skip").unwrap();
    assert_eq!(cube.part, Part::Cube);
    for row in ["geom-um3-bracket-speed", "geom-um3-cube-skip"] {
        let sc = registry.get(row).unwrap();
        let a = sc.build_with_mix(Profile::Small, 0x9E, row_mix()).unwrap();
        let b = sc.build_with_mix(Profile::Small, 0x9E, row_mix()).unwrap();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.role, y.role, "{row}");
            assert_eq!(x.trajectory.duration(), y.trajectory.duration(), "{row}");
        }
    }
    // Dropping every other cube layer is unmissable from acceleration.
    let recall = row_recall("geom-um3-cube-skip", SideChannel::Acc, 0x5EED);
    assert!(recall > 0.5, "geom-um3-cube-skip recall {recall:.2}");
}
