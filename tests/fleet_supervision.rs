//! Fleet supervision behaviour: typed backpressure at the ingestion
//! edge, per-printer watchdog restarts that never disturb neighbours,
//! restart-budget exhaustion, lifecycle errors, and alert accounting
//! under a full fan-in channel.

use am_dsp::Signal;
use am_fleet::{
    AlertPolicy, Fleet, FleetConfig, FleetError, IngestPolicy, PrinterId, RejectReason,
};
use nsync::prelude::*;

fn wave(phase: f64) -> Signal {
    Signal::from_fn(20.0, 1, 1200, |t, f| {
        f[0] = (0.7 * t).sin() + 0.4 * (2.1 * t + phase).sin()
    })
    .unwrap()
}

/// A toy trained spec over synthetic waves (fast enough for debug mode).
fn toy_spec() -> StreamSpec {
    let params = DwmParams::from_window(4.0);
    let train: Vec<Signal> = (1..=4).map(|i| wave(i as f64 * 1e-3)).collect();
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    ids.train(&train, wave(0.0), 0.3)
        .unwrap()
        .stream_spec(params)
}

fn chunks_of(signal: &Signal, samples: usize) -> Vec<Signal> {
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < signal.len() {
        let end = (i + samples).min(signal.len());
        chunks.push(signal.slice(i..end).unwrap());
        i = end;
    }
    chunks
}

#[test]
fn watchdog_restart_does_not_disturb_shard_neighbours() {
    let spec = std::sync::Arc::new(toy_spec());
    let observed = wave(2e-3);
    let chunks = chunks_of(&observed, 10);

    // Reference: the victim's neighbour, run standalone.
    let mut alone = spec.open().unwrap();
    let mut alone_verdicts = Vec::new();
    for chunk in &chunks {
        alone_verdicts.extend(alone.push(chunk).unwrap());
    }

    // One shard, so victim and neighbour share a worker thread.
    let victim = PrinterId(1);
    let neighbour = PrinterId(2);
    let cfg = FleetConfig::default()
        .with_shards(1)
        .with_ingest(IngestPolicy::Block)
        .with_chaos_panic(victim, 5);
    let mut fleet = Fleet::spawn(cfg);
    fleet.register(victim, spec.clone()).unwrap();
    fleet.register(neighbour, spec.clone()).unwrap();
    for chunk in &chunks {
        fleet.send(victim, chunk.clone()).unwrap();
        fleet.send(neighbour, chunk.clone()).unwrap();
    }
    let report = fleet.finish().unwrap();

    let v = report.printer(victim).unwrap();
    assert_eq!(
        v.restarts, 1,
        "chaos panic must trigger exactly one restart"
    );
    assert!(!v.dead);
    assert!(
        v.windows_seen > 0,
        "victim must keep processing after restart"
    );
    assert_eq!(report.snapshot.restarts(), 1);

    let n = report.printer(neighbour).unwrap();
    assert_eq!(n.restarts, 0);
    assert_eq!(n.windows_seen, alone.windows_seen());
    assert_eq!(n.intrusion, alone.max_severity().is_some());
    assert_eq!(n.max_severity, alone.max_severity());
    let n_verdicts: Vec<_> = report
        .leftover_verdicts
        .iter()
        .filter(|v| v.printer == neighbour)
        .map(|v| v.verdict.clone())
        .collect();
    assert_eq!(
        format!("{n_verdicts:?}"),
        format!("{alone_verdicts:?}"),
        "neighbour's verdicts must be untouched by the victim's crash"
    );
}

#[test]
fn restart_budget_exhaustion_declares_the_printer_dead() {
    let spec = std::sync::Arc::new(toy_spec());
    let chunks = chunks_of(&wave(2e-3), 10);
    let victim = PrinterId(9);
    let cfg = FleetConfig::default()
        .with_shards(1)
        .with_ingest(IngestPolicy::Block)
        .with_max_restarts_per_printer(0)
        .with_chaos_panic(victim, 2);
    let mut fleet = Fleet::spawn(cfg);
    fleet.register(victim, spec).unwrap();
    for chunk in &chunks {
        fleet.send(victim, chunk.clone()).unwrap();
    }
    let report = fleet.finish().unwrap();
    let v = report.printer(victim).unwrap();
    assert!(v.dead, "zero restart budget must kill the printer");
    assert_eq!(v.restarts, 0);
    let stats = &report.snapshot.shards[0].stats;
    assert_eq!(stats.dead_printers, 1);
    // Chunks sent after death are counted, not processed.
    assert!(stats.dead_printer_chunks > 0);
    assert_eq!(stats.chunks, chunks.len() as u64);
}

#[test]
fn full_queue_yields_typed_rejection_under_reject_policy() {
    let spec = std::sync::Arc::new(toy_spec());
    let printer = PrinterId(3);
    let cfg = FleetConfig::default()
        .with_shards(1)
        .with_shard_queue_capacity(1)
        .with_ingest(IngestPolicy::Reject);
    let mut fleet = Fleet::spawn(cfg);
    fleet.register(printer, spec).unwrap();

    // The worker processes far slower than we can enqueue, so flooding a
    // capacity-1 queue must hit QueueFull quickly.
    let chunk = wave(2e-3).slice(0..600).unwrap();
    let mut rejection = None;
    for _ in 0..1_000_000 {
        if let Err(rejected) = fleet.send(printer, chunk.clone()) {
            rejection = Some(rejected);
            break;
        }
    }
    let rejected = rejection.expect("a capacity-1 queue must reject under flood");
    assert_eq!(rejected.printer, printer);
    assert_eq!(
        rejected.reason,
        RejectReason::QueueFull {
            shard: 0,
            capacity: 1
        }
    );
    let snapshot = fleet.snapshot();
    assert!(snapshot.rejected_chunks() > 0);
    assert!(snapshot.max_queue_depth() <= 1);

    // Unknown printers are rejected immediately and typed.
    let unknown = fleet.send(PrinterId(999), chunk.clone()).unwrap_err();
    assert_eq!(unknown.printer, PrinterId(999));
    assert_eq!(unknown.reason, RejectReason::UnknownPrinter);
    fleet.finish().unwrap();
}

#[test]
fn lifecycle_errors_are_typed() {
    let spec = std::sync::Arc::new(toy_spec());
    let mut fleet = Fleet::spawn(FleetConfig::default().with_shards(2));
    fleet.register(PrinterId(1), spec.clone()).unwrap();
    assert!(matches!(
        fleet.register(PrinterId(1), spec.clone()),
        Err(FleetError::DuplicatePrinter(PrinterId(1)))
    ));
    assert!(matches!(
        fleet.detach(PrinterId(2)),
        Err(FleetError::UnknownPrinter(PrinterId(2)))
    ));
    // Detached printers stop ingesting but still appear in the report.
    fleet.detach(PrinterId(1)).unwrap();
    let chunk = wave(2e-3).slice(0..10).unwrap();
    assert_eq!(
        fleet.send(PrinterId(1), chunk).unwrap_err().reason,
        RejectReason::UnknownPrinter
    );
    let report = fleet.finish().unwrap();
    assert!(report.printer(PrinterId(1)).is_some());
}

#[test]
fn blocking_alert_policy_loses_nothing_even_unconsumed() {
    // An attacked stream against a tiny, blocking fan-in channel: the
    // workers stall on alert sends until `finish` drains them — shutdown
    // must not deadlock and every alert must surface in the report.
    let spec = std::sync::Arc::new(toy_spec());
    let attacked = Signal::from_fn(20.0, 1, 1200, |t, f| {
        f[0] = 1.6 * ((0.9 * t).sin() + 0.5 * (2.6 * t).sin())
    })
    .unwrap();
    let chunks = chunks_of(&attacked, 10);

    let mut alone = spec.open().unwrap();
    let mut expected = 0u64;
    for chunk in &chunks {
        expected += alone.push(chunk).unwrap().len() as u64;
    }
    assert!(expected > 1, "the distorted stream must raise alerts");

    let printer = PrinterId(4);
    let cfg = FleetConfig::default()
        .with_shards(1)
        .with_ingest(IngestPolicy::Block)
        .with_alert_capacity(1)
        .with_alert_policy(AlertPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    fleet.register(printer, spec).unwrap();
    for chunk in &chunks {
        fleet.send(printer, chunk.clone()).unwrap();
    }
    let report = fleet.finish().unwrap();
    assert_eq!(report.snapshot.alerts_lost(), 0);
    assert_eq!(report.snapshot.alerts_dropped(), 0);
    assert_eq!(report.snapshot.alerts_emitted(), expected);
    assert_eq!(report.leftover_verdicts.len() as u64, expected);
    assert!(report.printer(printer).unwrap().intrusion);
}
