//! Compatibility contract: every `#[deprecated]` shim left behind by the
//! builder/StreamSpec refactors must keep compiling AND keep producing
//! verdicts byte-identical to the supported path — old integrations must
//! see zero behavioural drift until the shims are removed.
#![allow(deprecated)]

use am_dsp::metrics::DistanceMetric;
use am_dsp::Signal;
use am_sync::{DwmParams, DwmSynchronizer};
use nsync::streaming::monitor;
use nsync::{
    DiscriminatorConfig, HealthConfig, IdsBuilder, IdsConfig, NsyncIds, StreamSpec, StreamingIds,
};

fn benign(phase: f64) -> Signal {
    Signal::from_fn(20.0, 1, 1600, |t, f| {
        f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin()
    })
    .unwrap()
}

fn attacked() -> Signal {
    Signal::from_fn(20.0, 1, 1600, |t, f| {
        f[0] = 1.5 * ((0.9 * t).sin() + 0.5 * (2.6 * t).sin())
    })
    .unwrap()
}

fn params() -> DwmParams {
    DwmParams::from_window(4.0)
}

fn train_signals() -> Vec<Signal> {
    (1..=4).map(|i| benign(i as f64 * 1e-3)).collect()
}

fn stream_all(ids: &mut StreamingIds, observed: &Signal) -> Vec<nsync::Verdict> {
    let mut verdicts = Vec::new();
    let mut i = 0;
    while i < observed.len() {
        let end = (i + 16).min(observed.len());
        verdicts.extend(ids.push(&observed.slice(i..end).unwrap()).unwrap());
        i = end;
    }
    verdicts
}

#[test]
fn nsync_ids_new_and_with_metric_match_builder() {
    let old = NsyncIds::new(Box::new(DwmSynchronizer::new(params())))
        .with_metric(DistanceMetric::Manhattan)
        .with_config(DiscriminatorConfig::default());
    let new = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .metric(DistanceMetric::Manhattan)
        .discriminator(DiscriminatorConfig::default())
        .build()
        .unwrap();

    let old_trained = old.train(&train_signals(), benign(0.0), 0.3).unwrap();
    let new_trained = new.train(&train_signals(), benign(0.0), 0.3).unwrap();
    assert_eq!(
        format!("{:?}", old_trained.thresholds()).into_bytes(),
        format!("{:?}", new_trained.thresholds()).into_bytes(),
        "training through the shim must learn identical thresholds"
    );
    for observed in [benign(5e-3), attacked()] {
        let old_verdict = old_trained.detect(&observed).unwrap();
        let new_verdict = new_trained.detect(&observed).unwrap();
        assert_eq!(
            format!("{old_verdict:?}").into_bytes(),
            format!("{new_verdict:?}").into_bytes()
        );
    }
}

#[test]
fn streaming_ids_new_matches_spec_open() {
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .build()
        .unwrap()
        .train(&train_signals(), benign(0.0), 0.3)
        .unwrap();
    let thresholds = trained.thresholds();

    for observed in [benign(5e-3), attacked()] {
        let mut old = StreamingIds::new(
            benign(0.0),
            &params(),
            thresholds,
            &DiscriminatorConfig::default(),
        )
        .unwrap()
        .with_health_config(HealthConfig::default());
        let mut new = StreamSpec::new(benign(0.0), params(), thresholds)
            .with_config(
                IdsConfig::default()
                    .with_discriminator(DiscriminatorConfig::default())
                    .with_health(HealthConfig::default()),
            )
            .open()
            .unwrap();
        let old_alerts = stream_all(&mut old, &observed);
        let new_alerts = stream_all(&mut new, &observed);
        assert_eq!(
            format!("{old_alerts:?}").into_bytes(),
            format!("{new_alerts:?}").into_bytes()
        );
        assert_eq!(old.intrusion_detected(), new.intrusion_detected());
        assert_eq!(old.windows_seen(), new.windows_seen());
    }
}

#[test]
fn streaming_ids_resume_from_matches_spec_resume() {
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .build()
        .unwrap()
        .train(&train_signals(), benign(0.0), 0.3)
        .unwrap();
    let thresholds = trained.thresholds();
    let observed = attacked();
    let tail = observed.slice(800..observed.len()).unwrap();

    let mut old = StreamingIds::resume_from(
        benign(0.0),
        &params(),
        thresholds,
        &DiscriminatorConfig::default(),
        9,
    )
    .unwrap();
    let mut new = StreamSpec::new(benign(0.0), params(), thresholds)
        .with_config(IdsConfig::default().with_discriminator(DiscriminatorConfig::default()))
        .resume(9)
        .unwrap();
    assert_eq!(old.windows_seen(), 9);
    assert_eq!(new.windows_seen(), 9);
    let old_alerts = stream_all(&mut old, &tail);
    let new_alerts = stream_all(&mut new, &tail);
    assert_eq!(
        format!("{old_alerts:?}").into_bytes(),
        format!("{new_alerts:?}").into_bytes()
    );
}

#[test]
fn monitor_spawn_shims_match_spec_spawn() {
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .build()
        .unwrap()
        .train(&train_signals(), benign(0.0), 0.3)
        .unwrap();
    let thresholds = trained.thresholds();
    let observed = attacked();

    let run = |handle: monitor::MonitorHandle| {
        let mut i = 0;
        while i < observed.len() {
            let end = (i + 16).min(observed.len());
            handle.send(observed.slice(i..end).unwrap());
            i = end;
        }
        handle.finish().unwrap()
    };

    let via_shim = run(monitor::spawn(
        benign(0.0),
        &params(),
        thresholds,
        &DiscriminatorConfig::default(),
    )
    .unwrap());
    let via_shim_with = run(monitor::spawn_with(
        benign(0.0),
        &params(),
        thresholds,
        &DiscriminatorConfig::default(),
        monitor::MonitorConfig::default(),
    )
    .unwrap());
    let via_spec = run(StreamSpec::new(benign(0.0), params(), thresholds)
        .with_config(IdsConfig::default().with_discriminator(DiscriminatorConfig::default()))
        .spawn()
        .unwrap());

    assert!(
        !via_spec.is_empty(),
        "the attacked stream must raise alerts"
    );
    assert_eq!(
        format!("{via_shim:?}").into_bytes(),
        format!("{via_spec:?}").into_bytes()
    );
    assert_eq!(
        format!("{via_shim_with:?}").into_bytes(),
        format!("{via_spec:?}").into_bytes()
    );
}

/// The verdict-API deprecation shims: `push_alerts` must be exactly
/// `flatten_verdicts(push(..))`, flattening evidence back into the old
/// per-window `Alert` stream with zero drift, and `intrusion_detected`
/// must equal `max_severity().is_some()` at every step.
#[test]
fn push_alerts_flattens_verdicts_with_zero_drift() {
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .build()
        .unwrap()
        .train(&train_signals(), benign(0.0), 0.3)
        .unwrap();
    let spec = trained.stream_spec(params());

    for observed in [benign(5e-3), attacked()] {
        let mut via_verdicts = spec.open().unwrap();
        let mut via_shim = spec.open().unwrap();
        let mut flattened: Vec<nsync::Alert> = Vec::new();
        let mut shimmed: Vec<nsync::Alert> = Vec::new();
        let mut i = 0;
        while i < observed.len() {
            let end = (i + 16).min(observed.len());
            let chunk = observed.slice(i..end).unwrap();
            let verdicts = via_verdicts.push(&chunk).unwrap();
            flattened.extend(nsync::streaming::flatten_verdicts(&verdicts));
            shimmed.extend(via_shim.push_alerts(&chunk).unwrap());
            assert_eq!(
                via_shim.intrusion_detected(),
                via_shim.max_severity().is_some(),
                "the boolean shim must mirror the severity latch"
            );
            i = end;
        }
        assert_eq!(
            format!("{shimmed:?}").into_bytes(),
            format!("{flattened:?}").into_bytes(),
            "push_alerts must be flatten_verdicts(push(..)) exactly"
        );
        assert_eq!(
            via_shim.intrusion_detected(),
            via_verdicts.max_severity().is_some()
        );
    }
}

/// Under the default `FusionPolicy` every flattened alert carries the
/// same (window, module, value, threshold) tuple the pre-verdict stream
/// carried — one alert per exceeded sub-module per window, in
/// CDisp → HDist → VDist order.
#[test]
fn default_policy_flattened_alerts_keep_the_old_shape() {
    let trained = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params()))
        .build()
        .unwrap()
        .train(&train_signals(), benign(0.0), 0.3)
        .unwrap();
    let spec = trained.stream_spec(params());
    let mut ids = spec.open().unwrap();
    let verdicts = stream_all(&mut ids, &attacked());
    assert!(!verdicts.is_empty(), "the attacked stream must alert");
    let alerts = nsync::streaming::flatten_verdicts(&verdicts);
    for verdict in &verdicts {
        // Debounce 1 fires every alerting window; the span tracks the
        // streak start but the evidence is that window's alone, so the
        // flattening below reproduces the per-window Alert stream.
        assert!(verdict.window_span.0 <= verdict.window_span.1);
        assert!(
            verdict
                .evidence
                .iter()
                .all(|e| e.window == verdict.window_span.1),
            "default policy carries only the firing window's evidence"
        );
    }
    // Flat alerts are per-window monotone, and every alert's value
    // genuinely exceeds its threshold (the old `Alert` contract).
    assert!(alerts.windows(2).all(|w| w[0].window <= w[1].window));
    assert!(alerts.iter().all(|a| a.value > a.threshold));
}
