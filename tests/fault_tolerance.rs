//! Fault tolerance: the supervised monitor must survive a decaying
//! sensor rig — quarantine the dead channel, keep detecting on the
//! rest, and never die (DESIGN.md §7).

use am_dataset::RunRole;
use am_eval::harness::{Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sensors::faults::{FaultKind, FaultPlan};
use nsync::prelude::*;

struct Trained {
    split: Split,
    spec: StreamSpec,
}

fn train() -> Trained {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids
        .train(&train, split.reference.signal.clone(), 0.3)
        .unwrap();
    let spec = trained.stream_spec(params);
    Trained { split, spec }
}

/// Kills channel 0 outright and peppers channel 1 with NaN bursts —
/// the acceptance scenario from the fault model.
fn rig_failure(duration: f64) -> FaultPlan {
    let mut plan = FaultPlan::none().with(
        0,
        FaultKind::NanGap {
            start_s: 0.15 * duration,
            duration_s: 0.8 * duration,
        },
    );
    // Short NaN bursts on channel 1: degrading, but recoverable.
    let mut t = 0.3 * duration;
    while t < 0.7 * duration {
        plan = plan.with(
            1,
            FaultKind::NanGap {
                start_s: t,
                duration_s: 0.01 * duration,
            },
        );
        t += 0.1 * duration;
    }
    plan
}

fn first_alert_stream(trained: &Trained, signal: &Signal) -> (bool, Option<usize>) {
    let mut stream = trained.spec.open().unwrap();
    let chunk = (0.5 * signal.fs()) as usize;
    let mut first = None;
    let mut i = 0;
    while i < signal.len() {
        let end = (i + chunk).min(signal.len());
        let verdicts = stream.push(&signal.slice(i..end).unwrap()).unwrap();
        if first.is_none() {
            first = verdicts.iter().map(|v| v.window_span.0).min();
        }
        i = end;
    }
    (stream.max_severity().is_some(), first)
}

#[test]
fn monitor_survives_rig_failure_and_still_detects_attack() {
    let trained = train();
    let speed = trained
        .split
        .tests
        .iter()
        .find(|c| matches!(&c.role, RunRole::Malicious { attack, .. } if attack == "Speed0.95"))
        .unwrap();

    // Clean streaming baseline: the attack is detected at some window.
    let (clean_intrusion, clean_first) = first_alert_stream(&trained, &speed.signal);
    assert!(
        clean_intrusion,
        "Speed0.95 must be detected on a healthy rig"
    );
    let clean_first = clean_first.expect("clean run produced an alert");

    // Same print through the failing rig.
    let plan = rig_failure(speed.signal.duration());
    plan.validate(speed.signal.channels()).unwrap();
    let faulted = plan.apply(&speed.signal).unwrap();

    let handle = trained.spec.spawn_with(MonitorConfig::default()).unwrap();
    let chunk = (0.5 * faulted.fs()) as usize;
    let mut first = None;
    let mut worst_ch0 = ChannelState::Healthy;
    let mut i = 0;
    while i < faulted.len() {
        let end = (i + chunk).min(faulted.len());
        assert!(
            handle.send(faulted.slice(i..end).unwrap()),
            "monitor died mid-stream"
        );
        while let Ok(verdict) = handle.verdicts.try_recv() {
            if first.is_none() {
                first = Some(verdict.window_span.0);
            }
        }
        let health = handle.health();
        if !health.channels.is_empty() && health.channels[0].state == ChannelState::Quarantined {
            worst_ch0 = ChannelState::Quarantined;
        }
        i = end;
    }
    // The monitor shuts down cleanly — it never died.
    let leftovers = handle.finish().expect("monitor finished without a fault");
    if first.is_none() {
        first = leftovers.iter().map(|v| v.window_span.0).min();
    }

    // Channel 0 was NaN for 80% of the print: it must have been
    // quarantined at some point.
    assert_eq!(
        worst_ch0,
        ChannelState::Quarantined,
        "the dead channel was never quarantined"
    );

    // The attack is still detected on the surviving channels, within 3
    // windows of the clean-rig alert.
    let faulted_first = first.expect("attack not detected under faults");
    assert!(
        faulted_first <= clean_first + 3,
        "alert latency grew too much under faults: clean window {clean_first}, \
         faulted window {faulted_first}"
    );
}

#[test]
fn degraded_channel_is_reported_while_benign_stays_quiet() {
    let trained = train();
    let benign = trained
        .split
        .tests
        .iter()
        .find(|c| c.role.is_benign())
        .unwrap();
    let duration = benign.signal.duration();
    // Recoverable impairment only: short NaN bursts on one channel.
    let plan = FaultPlan::none().with(
        2,
        FaultKind::NanGap {
            start_s: 0.4 * duration,
            duration_s: 0.02 * duration,
        },
    );
    let faulted = plan.apply(&benign.signal).unwrap();

    let handle = trained.spec.spawn_with(MonitorConfig::default()).unwrap();
    let chunk = (0.5 * faulted.fs()) as usize;
    let mut saw_impaired = false;
    let mut i = 0;
    while i < faulted.len() {
        let end = (i + chunk).min(faulted.len());
        assert!(handle.send(faulted.slice(i..end).unwrap()));
        let health = handle.health();
        if health.channels.len() > 2 && health.channels[2].state != ChannelState::Healthy {
            saw_impaired = true;
        }
        i = end;
    }
    let status_health = handle.health();
    let leftovers = handle.finish().unwrap();
    assert!(
        saw_impaired || !status_health.all_healthy(),
        "the NaN burst was never reported"
    );
    assert!(
        leftovers.is_empty(),
        "benign print alerted under a recoverable fault: {leftovers:?}"
    );
    assert!(status_health.channels[2].nonfinite_samples > 0);
}
