//! End-to-end pipeline: G-code → noisy printer → side channels → NSYNC.
//!
//! This is the paper's headline scenario compressed to a single test: an
//! air-gapped IDS trained only on benign prints must pass a fresh benign
//! print and flag a Void-attacked print, using the ACC side channel.

use am_dataset::RunRole;
use am_eval::harness::{Split, Transform};
use am_integration::helpers::tiny_set;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use nsync::prelude::*;

#[test]
fn nsync_dwm_detects_void_and_passes_benign_on_acc() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids
        .train(&train, split.reference.signal.clone(), 0.3)
        .unwrap();

    let benign = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .unwrap();
    let detection = trained.detect(&benign.signal).unwrap();
    assert!(
        !detection.intrusion,
        "benign run falsely flagged: {:?}",
        detection.triggered
    );

    let void = split
        .tests
        .iter()
        .find(|c| matches!(&c.role, RunRole::Malicious { attack, .. } if attack == "Void"))
        .unwrap();
    let detection = trained.detect(&void.signal).unwrap();
    assert!(detection.intrusion, "void attack missed");
    assert!(detection.first_alert_index.is_some());
}

#[test]
fn all_five_attacks_detected_on_acc_um3() {
    let set = tiny_set(PrinterModel::Um3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids
        .train(&train, split.reference.signal.clone(), 0.3)
        .unwrap();
    let mut caught = Vec::new();
    let mut missed = Vec::new();
    for test in &split.tests {
        if let RunRole::Malicious { attack, .. } = &test.role {
            let d = trained.detect(&test.signal).unwrap();
            if d.intrusion {
                caught.push(attack.clone());
            } else {
                missed.push(attack.clone());
            }
        }
    }
    assert_eq!(caught.len() + missed.len(), 5);
    assert!(
        missed.is_empty(),
        "attacks missed on ACC: {missed:?} (caught {caught:?})"
    );
}

#[test]
fn delta_printer_pipeline_works() {
    let set = tiny_set(PrinterModel::Rm3);
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw).unwrap();
    // The Delta machine's joint velocities differ from Cartesian; the
    // pipeline must still synchronize benign runs near-perfectly.
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()
        .unwrap();
    let analysis = ids
        .analyze(&split.train[0].signal, &split.reference.signal)
        .unwrap();
    // Benign h_disp stays bounded (no runaway).
    let max_h = analysis
        .alignment
        .h_disp
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()));
    let fs = split.reference.signal.fs();
    assert!(
        max_h < 2.0 * fs,
        "benign displacement ran away: {max_h} samples"
    );
}
