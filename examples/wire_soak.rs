//! Loopback network soak: the same deterministic fleet traffic sent
//! once in-process and once through the full service edge — AMW1
//! frames over real TCP and UDP sockets on 127.0.0.1 into a
//! [`WireServer`], alerts out through the [`AlertEgress`] worker — and
//! the two verdict streams compared byte for byte.
//!
//! Asserts the edge invariants the CI `net-soak` job relies on:
//! every frame delivered (zero decode rejects, zero rate-limit sheds,
//! zero sequence gaps on loopback), zero lost or dead-lettered alerts,
//! and per-printer verdicts identical to in-process ingestion.
//!
//! ```sh
//! cargo run --release --example wire_soak [-- --printers N] [--frames N] [--out PATH]
//! ```

use am_fleet::sim::{FleetSim, PrinterScript, SimConfig};
use am_fleet::{AlertPolicy, Fleet, FleetConfig, IngestPolicy, PrinterId};
use am_wire::{
    AlertEgress, AlertFormat, EdgeConfig, EgressConfig, MemorySink, WireFrame, WireServer,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::time::{Duration, Instant};

/// TCP gateway connections the printers are spread over (plus one UDP
/// gateway), mimicking a farm where one DAQ box fronts many printers.
const TCP_GATEWAYS: u64 = 4;

struct Args {
    printers: u64,
    frames: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        printers: 64,
        frames: 48,
        out: "BENCH_wire.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--printers" => parsed.printers = value("--printers").parse().expect("printer count"),
            "--frames" => parsed.frames = value("--frames").parse().expect("frame count"),
            "--out" => parsed.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

/// One printer's observable outcome, comparable across passes: the
/// exact egress lines its alerts rendered to, plus the final report
/// fields.
#[derive(Debug, PartialEq)]
struct Verdicts {
    alert_lines: Vec<String>,
    windows_seen: usize,
    intrusion: bool,
    health: String,
}

/// Groups egress JSON lines by printer (the `printer` field is
/// `printer-<id>`), preserving per-printer order.
fn group_lines(lines: Vec<String>) -> BTreeMap<PrinterId, Vec<String>> {
    let mut grouped: BTreeMap<PrinterId, Vec<String>> = BTreeMap::new();
    for line in lines {
        let id = line
            .split("\"printer\":\"printer-")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .and_then(|digits| digits.parse::<u64>().ok())
            .expect("egress line carries the printer id");
        grouped.entry(PrinterId(id)).or_default().push(line);
    }
    grouped
}

fn verdicts_of(
    report: &am_fleet::FleetReport,
    mut lines: BTreeMap<PrinterId, Vec<String>>,
) -> BTreeMap<PrinterId, Verdicts> {
    report
        .printers
        .iter()
        .map(|r| {
            (
                r.printer,
                Verdicts {
                    alert_lines: lines.remove(&r.printer).unwrap_or_default(),
                    windows_seen: r.windows_seen,
                    intrusion: r.intrusion,
                    health: format!("{:?}", r.health),
                },
            )
        })
        .collect()
}

fn fleet_for(sim: &FleetSim, scripts: &[PrinterScript]) -> Fleet {
    // Block on both edges: the soak accounts for every chunk and alert.
    let cfg = FleetConfig::default()
        .with_ingest(IngestPolicy::Block)
        .with_alert_policy(AlertPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    for script in scripts {
        fleet
            .register(script.printer, sim.spec_of(script.printer))
            .expect("register");
    }
    fleet
}

fn egress_on(fleet: &Fleet) -> (AlertEgress, MemorySink) {
    let sink = MemorySink::new();
    let egress = AlertEgress::spawn(
        fleet.verdicts(),
        Box::new(sink.clone()),
        EgressConfig::default().with_format(AlertFormat::Json),
    );
    (egress, sink)
}

/// Waits until the fleet has processed `total_chunks` and the egress
/// worker has drained the alert channel. `Fleet::finish` sweeps any
/// alerts still in the channel into `leftover_alerts`, racing a live
/// egress worker for them — quiescing first guarantees the sweep finds
/// nothing and every alert reaches the sink.
fn quiesce(snapshot: impl Fn() -> am_fleet::FleetSnapshot, total_chunks: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snap = snapshot();
        if snap.chunks() >= total_chunks && snap.alert_queue_depth == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet did not quiesce: {} of {total_chunks} chunks, {} alerts queued",
            snap.chunks(),
            snap.alert_queue_depth
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Baseline: chunks handed straight to [`Fleet::send`], alerts through
/// the same egress worker the wire pass uses.
fn run_in_process(sim: &FleetSim, scripts: &[PrinterScript]) -> BTreeMap<PrinterId, Verdicts> {
    let fleet = fleet_for(sim, scripts);
    let (egress, sink) = egress_on(&fleet);
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
    for frame in 0..longest {
        for script in scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                fleet
                    .send(script.printer, chunk.clone())
                    .expect("block ingest");
            }
        }
    }
    let total_chunks: u64 = scripts.iter().map(|s| s.chunks.len() as u64).sum();
    quiesce(|| fleet.snapshot(), total_chunks);
    let report = fleet.finish().expect("clean shutdown");
    assert!(
        report.leftover_verdicts.is_empty(),
        "egress saw every alert"
    );
    let (stats, dead) = egress.finish();
    assert!(dead.is_empty(), "in-process egress dead letters: {dead:?}");
    assert_eq!(report.snapshot.alerts_lost(), 0);
    assert_eq!(stats.delivered, report.snapshot.alerts_emitted());
    verdicts_of(&report, group_lines(sink.lines()))
}

/// The wire pass: frames over real loopback sockets into the server.
fn run_over_wire(
    sim: &FleetSim,
    scripts: &[PrinterScript],
) -> (BTreeMap<PrinterId, Verdicts>, am_wire::EdgeReport, u64, u64) {
    let fleet = fleet_for(sim, scripts);
    let (egress, sink) = egress_on(&fleet);
    let server = WireServer::spawn(
        fleet,
        EdgeConfig::default()
            .with_rate_limit(1_000_000.0, 1_000_000.0)
            .with_max_connections(TCP_GATEWAYS as usize + 2),
    )
    .expect("bind loopback listeners");
    let tcp_addr = server.tcp_addr().expect("tcp listener enabled");
    let udp_addr = server.udp_addr().expect("udp listener enabled");

    // Gateway assignment: printer id % (TCP_GATEWAYS + 1); the last
    // group streams over UDP, the rest share TCP connections.
    let mut tcp_frames = 0u64;
    let mut udp_frames = 0u64;
    let groups: Vec<Vec<&PrinterScript>> = (0..=TCP_GATEWAYS)
        .map(|g| {
            scripts
                .iter()
                .filter(|s| s.printer.0 % (TCP_GATEWAYS + 1) == g)
                .collect()
        })
        .collect();
    let server_ref = &server;
    std::thread::scope(|scope| {
        for (g, group) in groups.iter().enumerate() {
            let is_udp = g as u64 == TCP_GATEWAYS;
            if is_udp {
                udp_frames += group.iter().map(|s| s.chunks.len() as u64).sum::<u64>();
            } else {
                tcp_frames += group.iter().map(|s| s.chunks.len() as u64).sum::<u64>();
            }
            scope.spawn(move || {
                let longest = group.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
                if is_udp {
                    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind udp gateway");
                    let me = socket.local_addr().expect("udp local addr");
                    // Even loopback UDP drops when the receive buffer
                    // overflows (e.g. while the reader blocks on a full
                    // shard queue), so the gateway keeps a bounded number
                    // of datagrams in flight, acked by the edge's
                    // per-source delivery counter.
                    const WINDOW: u64 = 32;
                    let delivered = || {
                        server_ref
                            .snapshot()
                            .wire
                            .sources
                            .iter()
                            .find(|(addr, _)| *addr == me)
                            .map(|(_, s)| s.frames_ok)
                            .unwrap_or(0)
                    };
                    let mut sent = 0u64;
                    for frame in 0..longest {
                        for script in group {
                            if let Some(chunk) = script.chunks.get(frame) {
                                while sent.saturating_sub(delivered()) >= WINDOW {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                let bytes = frame_of(script, frame, chunk).encode();
                                socket.send_to(&bytes, udp_addr).expect("udp send");
                                sent += 1;
                            }
                        }
                    }
                } else {
                    let mut stream = TcpStream::connect(tcp_addr).expect("connect tcp gateway");
                    let mut buf = Vec::new();
                    for frame in 0..longest {
                        buf.clear();
                        for script in group {
                            if let Some(chunk) = script.chunks.get(frame) {
                                frame_of(script, frame, chunk).encode_into(&mut buf);
                            }
                        }
                        stream.write_all(&buf).expect("tcp send");
                    }
                }
            });
        }
    });
    // Senders done; TCP handlers may still be draining. Wait until the
    // edge has delivered every frame (bounded, in case of a bug).
    let total = tcp_frames + udp_frames;
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.snapshot().wire.frames_ok < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let wire = server.snapshot().wire;
    assert_eq!(
        wire.frames_ok, total,
        "edge must deliver every frame; rejects: {:?}",
        wire.rejects
    );
    quiesce(|| server.snapshot().fleet, total);
    let edge = server.finish().expect("clean edge shutdown");
    assert!(
        edge.fleet.leftover_verdicts.is_empty(),
        "egress saw every alert"
    );
    let (stats, dead) = egress.finish();
    assert!(dead.is_empty(), "wire egress dead letters: {dead:?}");
    assert_eq!(stats.delivered, edge.fleet.snapshot.alerts_emitted());
    let verdicts = verdicts_of(&edge.fleet, group_lines(sink.lines()));
    (verdicts, edge, tcp_frames, udp_frames)
}

fn frame_of(script: &PrinterScript, frame: usize, chunk: &am_dsp::Signal) -> WireFrame {
    WireFrame {
        printer: script.printer,
        channel: (script.printer.0 % 2) as u8,
        seq: frame as u64,
        chunk: chunk.clone(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    eprintln!("training shared models (small profile, UM3) ...");
    let sim = FleetSim::build(SimConfig::default())?;
    eprintln!("scripting {} printers ...", args.printers);
    let mut scripts = (0..args.printers)
        .map(|id| sim.script(PrinterId(id)))
        .collect::<Result<Vec<_>, _>>()?;
    for script in &mut scripts {
        script.chunks.truncate(args.frames);
    }
    let total_frames: u64 = scripts.iter().map(|s| s.chunks.len() as u64).sum();

    eprintln!("pass 1/2: in-process baseline ...");
    let baseline = run_in_process(&sim, &scripts);

    eprintln!("pass 2/2: loopback TCP+UDP through the service edge ...");
    let t0 = Instant::now();
    let (wired, edge, tcp_frames, udp_frames) = run_over_wire(&sim, &scripts);
    let wire_seconds = t0.elapsed().as_secs_f64();

    // Edge invariants.
    let wire = &edge.wire;
    assert_eq!(
        wire.frames_ok, total_frames,
        "every frame must decode and deliver"
    );
    assert_eq!(wire.rejects.total(), 0, "zero rejects: {:?}", wire.rejects);
    assert_eq!(wire.rate_limited, 0, "nothing may be shed at this rate");
    assert_eq!(wire.seq_gaps, 0, "loopback must not reorder or drop");
    assert_eq!(edge.fleet.snapshot.alerts_lost(), 0, "zero lost alerts");
    assert_eq!(
        edge.fleet.snapshot.alerts_dropped(),
        0,
        "zero dropped alerts"
    );

    // The tentpole contract: network ingestion reproduces the
    // in-process verdict stream byte for byte.
    let mut mismatches = 0;
    for (printer, expected) in &baseline {
        let got = wired.get(printer).expect("printer reported");
        if format!("{expected:?}").into_bytes() != format!("{got:?}").into_bytes() {
            eprintln!("verdict mismatch for {printer}:\n  in-process: {expected:?}\n  wire:       {got:?}");
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "{mismatches} printers diverged over the wire"
    );
    assert_eq!(baseline.len(), wired.len());

    let alerts_delivered: usize = wired.values().map(|v| v.alert_lines.len()).sum();
    let json = format!(
        "{{\n  \"benchmark\": \"loopback network soak, small profile, UM3, acc+pwr models\",\n  \"command\": \"cargo run --release --example wire_soak\",\n  \"printers\": {},\n  \"frames_per_printer\": {},\n  \"frames_total\": {},\n  \"frames_tcp\": {},\n  \"frames_udp\": {},\n  \"bytes_on_wire\": {},\n  \"wire_wall_seconds\": {:.3},\n  \"frames_per_second\": {:.0},\n  \"connections_accepted\": {},\n  \"rejected_frames\": {},\n  \"rate_limited_frames\": {},\n  \"seq_gaps\": {},\n  \"alerts_delivered\": {},\n  \"alerts_lost\": 0,\n  \"verdicts_match_in_process\": true\n}}\n",
        args.printers,
        args.frames,
        total_frames,
        tcp_frames,
        udp_frames,
        wire.bytes,
        wire_seconds,
        total_frames as f64 / wire_seconds,
        wire.connections_accepted,
        wire.rejects.total(),
        wire.rate_limited,
        wire.seq_gaps,
        alerts_delivered,
    );
    std::fs::write(&args.out, &json)?;
    println!("{json}");
    eprintln!("wrote {}", args.out);
    Ok(())
}
