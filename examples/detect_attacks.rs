//! Per-attack study: which Table I attacks does each NSYNC sub-module
//! catch, and how early?
//!
//! ```sh
//! cargo run --release --example detect_attacks
//! ```

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::DwmSynchronizer;
use nsync::NsyncIds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for printer in PrinterModel::both() {
        println!("=== {printer} / ACC raw ===");
        let set = TrajectorySet::generate(ExperimentSpec::small(printer))?;
        let split = Split::generate(&set, SideChannel::Acc, Transform::Raw)?;
        let params = set.spec.profile.dwm_params(printer);
        let ids = NsyncIds::new(Box::new(DwmSynchronizer::new(params)));
        let train: Vec<am_dsp::Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
        let trained = ids.train(&train, split.reference.signal.clone(), 0.3)?;

        type Row = (String, usize, usize, Vec<String>, Vec<usize>);
        let mut rows: Vec<Row> = Vec::new();
        for test in &split.tests {
            let RunRole::Malicious { attack, .. } = &test.role else {
                continue;
            };
            let d = trained.detect(&test.signal)?;
            let row = match rows.iter_mut().find(|(name, ..)| name == attack) {
                Some(r) => r,
                None => {
                    rows.push((attack.clone(), 0, 0, Vec::new(), Vec::new()));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.2 += 1;
            if d.intrusion {
                row.1 += 1;
                for m in &d.triggered {
                    let name = m.to_string();
                    if !row.3.contains(&name) {
                        row.3.push(name);
                    }
                }
                if let Some(i) = d.first_alert_index {
                    row.4.push(i);
                }
            }
        }
        for (attack, caught, total, modules, first_alerts) in rows {
            let earliest = first_alerts.iter().min();
            println!(
                "  {attack:<12} detected {caught}/{total}  via {:<28} earliest alert window: {:?}",
                format!("{modules:?}"),
                earliest
            );
        }
        // And the benign false-positive picture:
        let mut fp = 0;
        let mut benign_total = 0;
        for test in &split.tests {
            if matches!(test.role, RunRole::TestBenign(_)) {
                benign_total += 1;
                if trained.detect(&test.signal)?.intrusion {
                    fp += 1;
                }
            }
        }
        println!("  benign false positives: {fp}/{benign_total}\n");
    }
    Ok(())
}
