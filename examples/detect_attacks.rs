//! Per-attack study: which Table I attacks does each NSYNC sub-module
//! catch, and how early? Driven through the unified detector registry.
//!
//! ```sh
//! cargo run --release --example detect_attacks
//! ```

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::detector::{DetectorKind, DetectorSpec};
use am_eval::harness::{to_run_data, Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for printer in PrinterModel::both() {
        println!("=== {printer} / ACC raw ===");
        let set = TrajectorySet::generate(ExperimentSpec::small(printer))?;
        let split = Split::generate(&set, SideChannel::Acc, Transform::Raw)?;
        let mut detector =
            DetectorSpec::of(DetectorKind::NsyncDwm).build(set.spec.profile, printer);
        let reference = to_run_data(&split.reference);
        let train: Vec<_> = split.train.iter().map(|c| to_run_data(c)).collect();
        detector.fit(&reference, &train)?;

        type Row = (String, usize, usize, Vec<String>, Vec<usize>);
        let mut rows: Vec<Row> = Vec::new();
        for test in &split.tests {
            let RunRole::Malicious { attack, .. } = &test.role else {
                continue;
            };
            let verdict = detector.judge(&to_run_data(test))?;
            let row = match rows.iter_mut().find(|(name, ..)| name == attack) {
                Some(r) => r,
                None => {
                    rows.push((attack.clone(), 0, 0, Vec::new(), Vec::new()));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.2 += 1;
            if verdict.intrusion {
                row.1 += 1;
                for (id, fired) in &verdict.sub_modules {
                    let name = id.to_string();
                    if *fired && !row.3.contains(&name) {
                        row.3.push(name);
                    }
                }
                if let Some(i) = verdict.first_alert_index {
                    row.4.push(i);
                }
            }
        }
        for (attack, caught, total, modules, first_alerts) in rows {
            let earliest = first_alerts.iter().min();
            println!(
                "  {attack:<12} detected {caught}/{total}  via {:<28} earliest alert window: {:?}",
                format!("{modules:?}"),
                earliest
            );
        }
        // And the benign false-positive picture:
        let mut fp = 0;
        let mut benign_total = 0;
        for test in &split.tests {
            if matches!(test.role, RunRole::TestBenign(_)) {
                benign_total += 1;
                if detector.judge(&to_run_data(test))?.intrusion {
                    fp += 1;
                }
            }
        }
        println!("  benign false positives: {fp}/{benign_total}\n");
    }
    Ok(())
}
