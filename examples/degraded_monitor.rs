//! Graceful degradation: the monitor survives a failing sensor rig.
//!
//! Same deployment shape as `realtime_monitor`, but the DAQ is decaying
//! mid-print: one accelerometer axis starts emitting NaN, another picks
//! up burst noise. The supervised monitor quarantines the dead channel,
//! keeps detecting on the rest, and reports the damage through its
//! [`HealthReport`] — it never dies.
//!
//! ```sh
//! cargo run --release --example degraded_monitor
//! ```

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sensors::faults::{FaultKind, FaultPlan};
use nsync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3))?;
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);

    // Train offline on healthy sensors; faults arrive later, in the field.
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()?;
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids.train(&train, split.reference.signal.clone(), 0.3)?;
    println!(
        "thresholds learned from {} benign prints",
        split.train.len()
    );

    // A Speed0.95-attacked print, captured through a decaying rig:
    // channel 0 emits NaN for a long stretch, channel 1 gets noise bursts.
    let attacked = split
        .tests
        .iter()
        .find(|c| matches!(&c.role, RunRole::Malicious { attack, .. } if attack == "Speed0.95"))
        .expect("dataset contains a Speed0.95 run");
    let duration = attacked.signal.duration();
    let plan = FaultPlan::none()
        .with(
            0,
            FaultKind::NanGap {
                start_s: 0.2 * duration,
                duration_s: 0.6 * duration,
            },
        )
        .with(
            1,
            FaultKind::BurstNoise {
                start_s: 0.4 * duration,
                duration_s: 0.2 * duration,
                sigma: 1.5,
            },
        );
    plan.validate(attacked.signal.channels())?;
    let faulted = plan.apply(&attacked.signal)?;
    println!(
        "injecting faults: NaN gap on ch0 ({:.0}–{:.0} s), noise burst on ch1",
        0.2 * duration,
        0.8 * duration
    );

    let handle = trained
        .stream_spec(params)
        .spawn_with(MonitorConfig::default())?;

    let fs = faulted.fs();
    let chunk = (0.25 * fs) as usize; // 250 ms DAQ frames
    let mut first_alert: Option<f64> = None;
    let mut reported_quarantine = false;
    let mut i = 0;
    while i < faulted.len() {
        let end = (i + chunk).min(faulted.len());
        handle.send(faulted.slice(i..end)?);
        let now_secs = end as f64 / fs;
        let status = handle.status();
        if !reported_quarantine && !status.health.all_healthy() {
            println!("~{now_secs:.1} s: {}", status.health.summary());
            reported_quarantine = true;
        }
        while let Ok(verdict) = handle.verdicts.try_recv() {
            if first_alert.is_none() {
                println!(
                    "!! {} at ~{now_secs:.1} s: confidence {:.2} (window {})",
                    verdict.severity,
                    verdict.confidence,
                    verdict.window()
                );
                first_alert = Some(now_secs);
            }
        }
        i = end;
    }
    let leftovers = handle.finish()?;
    if first_alert.is_none() {
        if let Some(verdict) = leftovers.first() {
            let t = verdict.window() as f64 * params.t_hop;
            println!(
                "!! {} (drained at end) from window {} (~{t:.1} s)",
                verdict.severity,
                verdict.window()
            );
            first_alert = Some(t);
        }
    }
    match first_alert {
        Some(t) => println!(
            "attack still detected after ~{t:.1} s of a {duration:.1} s print, \
             despite the degraded rig"
        ),
        None => println!("no alert fired — unexpected for a Speed0.95 run"),
    }
    Ok(())
}
