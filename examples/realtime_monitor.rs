//! Real-time monitoring: the air-gapped deployment shape from Fig 3.
//!
//! A "DAQ thread" streams sensor chunks into a detector thread (crossbeam
//! channels); alerts pop out the moment a threshold is crossed — while
//! the print is still running, so the operator can stop it.
//!
//! ```sh
//! cargo run --release --example realtime_monitor
//! ```

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use nsync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3))?;
    let split = Split::generate(&set, SideChannel::Acc, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);

    // Train offline (thresholds persist between prints in a deployment).
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()?;
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids.train(&train, split.reference.signal.clone(), 0.3)?;
    println!(
        "thresholds learned from {} benign prints",
        split.train.len()
    );

    // "Print" a Speed0.95-attacked job while monitoring live.
    let attacked = split
        .tests
        .iter()
        .find(|c| matches!(&c.role, RunRole::Malicious { attack, .. } if attack == "Speed0.95"))
        .expect("dataset contains a Speed0.95 run");
    let handle = trained.stream_spec(params).spawn()?;

    let fs = attacked.signal.fs();
    let total = attacked.signal.duration();
    let chunk = (0.25 * fs) as usize; // 250 ms DAQ frames
    let mut first_alert: Option<(f64, String)> = None;
    let mut i = 0;
    while i < attacked.signal.len() {
        let end = (i + chunk).min(attacked.signal.len());
        handle.send(attacked.signal.slice(i..end)?);
        let now_secs = end as f64 / fs;
        // Drain any verdicts that have arrived so far.
        while let Ok(verdict) = handle.verdicts.try_recv() {
            if first_alert.is_none() {
                let module = verdict
                    .dominant()
                    .map_or_else(|| "?".to_string(), |e| e.module.to_string());
                println!(
                    "!! {} at ~{now_secs:.1} s of print: {module} led, confidence {:.2} (window {})",
                    verdict.severity, verdict.confidence, verdict.window()
                );
                first_alert = Some((now_secs, module));
            }
        }
        i = end;
    }
    // Close the stream; finish() drains whatever the detector thread had
    // not yet pushed through the channel.
    let leftovers = handle.finish()?;
    if first_alert.is_none() {
        if let Some(verdict) = leftovers.first() {
            // Windows are t_hop seconds apart; reconstruct the print time.
            let t = verdict.window() as f64 * params.t_hop;
            let module = verdict
                .dominant()
                .map_or_else(|| "?".to_string(), |e| e.module.to_string());
            println!(
                "!! {} (drained at end) from window {} (~{t:.1} s): {module} led, confidence {:.2}",
                verdict.severity,
                verdict.window(),
                verdict.confidence
            );
            first_alert = Some((t, module));
        }
    }
    match first_alert {
        Some((t, module)) => println!(
            "intrusion flagged via {module} after ~{t:.1} s of a {total:.1} s print \
             ({:.0}% of the job could still be aborted)",
            (1.0 - t / total) * 100.0
        ),
        None => println!("no alert fired — unexpected for a Speed0.95 run"),
    }
    Ok(())
}
