//! Quickstart: the whole NSYNC story in one run.
//!
//! 1. slice the paper's gear model,
//! 2. print it twice on a simulated Ultimaker 3 — same G-code, different
//!    time noise (Fig 1's effect),
//! 3. capture the accelerometer side channel,
//! 4. train NSYNC/DWM on benign prints, then detect a Void attack.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use am_dataset::{ExperimentSpec, Profile};
use am_gcode::attacks::Attack;
use am_gcode::slicer::slice_gear;
use am_printer::{config::PrinterModel, firmware::execute_program};
use am_sensors::channel::SideChannel;
use nsync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::small(PrinterModel::Um3);
    let profile = spec.profile;
    let printer = spec.printer.config();
    let slice_cfg = profile.slice_config(spec.printer);
    let noise = profile.time_noise();

    println!("== Table I/II constants at the '{}' profile ==", profile);
    let mix = profile.process_mix();
    println!(
        "process mix: 1 reference + {} train + {} benign test + 5 x {} malicious",
        mix.train, mix.test_benign, mix.malicious_per_attack
    );
    for ch in SideChannel::all() {
        println!(
            "  {}: fs = {:>6} Hz, {} channel(s), {} bits",
            ch,
            profile.fs(ch),
            ch.channel_count(),
            ch.paper_bits()
        );
    }

    println!("\n== Step 1-2: slice and print (twice) ==");
    let benign = slice_gear(&slice_cfg)?;
    println!(
        "gear sliced: {} commands, {} layers",
        benign.len(),
        benign.layer_count()
    );
    let run_a = execute_program(&benign, &printer, &noise, 1)?;
    let run_b = execute_program(&benign, &printer, &noise, 2)?;
    println!(
        "run A: {:.2} s of motion | run B: {:.2} s — same G-code, {:+.2} s apart (time noise!)",
        run_a.duration() - run_a.print_start(),
        run_b.duration() - run_b.print_start(),
        run_b.duration() - run_a.duration(),
    );

    println!("\n== Step 3: capture the ACC side channel ==");
    let daq = profile.daq(SideChannel::Acc);
    let reference = SideChannel::Acc.capture(&run_a, &printer, &daq, 1)?;
    println!(
        "reference signal: {} samples x {} channels at {} Hz",
        reference.len(),
        reference.channels(),
        reference.fs()
    );

    println!("\n== Step 4: train NSYNC/DWM on benign prints, detect an attack ==");
    let mut training = Vec::new();
    for seed in 3..7 {
        let run = execute_program(&benign, &printer, &noise, seed)?;
        training.push(SideChannel::Acc.capture(&run, &printer, &daq, seed)?);
    }
    let params = profile.dwm_params(spec.printer);
    let ids = IdsBuilder::new()
        .synchronizer(DwmSynchronizer::new(params))
        .build()?;
    let trained = ids.train(&training, reference, profile.nsync_r())?;
    println!("learned OCC thresholds: {:?}", trained.thresholds());

    // A fresh benign print must pass.
    let benign_run = execute_program(&benign, &printer, &noise, 42)?;
    let benign_sig = SideChannel::Acc.capture(&benign_run, &printer, &daq, 42)?;
    let verdict = trained.detect(&benign_sig)?;
    println!(
        "fresh benign print -> intrusion: {} (sub-modules: {:?})",
        verdict.intrusion, verdict.triggered
    );

    // A Void-attacked print must be flagged.
    let void_gcode = Attack::Void.apply(&benign, &slice_cfg)?;
    let void_run = execute_program(&void_gcode, &printer, &noise, 43)?;
    let void_sig = SideChannel::Acc.capture(&void_run, &printer, &daq, 43)?;
    let verdict = trained.detect(&void_sig)?;
    println!(
        "Void-attacked print -> intrusion: {} (sub-modules: {:?}, first alert at window {:?})",
        verdict.intrusion, verdict.triggered, verdict.first_alert_index
    );
    assert!(verdict.intrusion, "the attack should be detected");
    println!("\nNSYNC caught the attack. See examples/reproduce_tables.rs for the full grid.");
    let _ = Profile::Paper; // referenced to show the full-scale profile exists
    Ok(())
}
