//! Fleet monitoring: one IDS service supervising a whole print farm.
//!
//! Spawns a small sharded fleet, registers two dozen simulated printers
//! against two shared trained models (accelerometer and power), streams
//! every printer's DAQ frames interleaved through the bounded ingestion
//! edge, and prints live status snapshots while alerts fan in. One
//! printer's detector is deliberately crashed mid-print to show the
//! per-printer watchdog restarting it without disturbing its neighbours.
//!
//! ```sh
//! cargo run --release --example fleet_monitor
//! ```

use am_fleet::sim::{FleetSim, SimConfig};
use am_fleet::{Fleet, FleetConfig, IngestPolicy, PrinterId};

const PRINTERS: u64 = 24;
/// This printer's detector panics on chunk 40; the watchdog rebuilds it
/// from the shared spec, resynchronized at the last finished window.
const CRASHED: PrinterId = PrinterId(5);

fn print_snapshot(fleet: &Fleet, fed: usize) {
    let snap = fleet.snapshot();
    eprintln!(
        "-- after {fed} frames/printer: {} chunks done, {} alerts, {} restarts",
        snap.chunks(),
        snap.alerts_emitted(),
        snap.restarts()
    );
    for shard in &snap.shards {
        eprintln!(
            "   shard {}: {} printers, {:>6} chunks, queue {} (max {}), {} resyncs, p95 {} us",
            shard.index,
            shard.stats.printers,
            shard.stats.chunks,
            shard.queue_depth,
            shard.max_queue_depth,
            shard.stats.resyncs,
            shard.chunk_latency_p95_us
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    am_telemetry::set_enabled(true); // live p95 latency in snapshots
    eprintln!("training shared models (small profile, UM3) ...");
    let sim = FleetSim::build(SimConfig::default())?;

    let cfg = FleetConfig::default()
        .with_shards(4)
        .with_ingest(IngestPolicy::Block)
        .with_chaos_panic(CRASHED, 40);
    let mut fleet = Fleet::spawn(cfg);

    // Register the farm: many printers, two shared trained models.
    let mut scripts = Vec::new();
    for id in (0..PRINTERS).map(PrinterId) {
        fleet.register(id, sim.spec_of(id))?;
        scripts.push(sim.script(id)?);
    }
    eprintln!(
        "{} printers registered over 4 shards against {} shared models",
        fleet.printers(),
        sim.registry().len()
    );

    // Stream everything interleaved, draining verdicts as they fan in.
    let verdicts = fleet.verdicts();
    let mut seen = std::collections::BTreeSet::new();
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
    for frame in 0..longest {
        for script in &scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                if let Err(rejected) = fleet.send(script.printer, chunk.clone()) {
                    eprintln!("   rejected: {rejected}");
                }
            }
        }
        while let Ok(fv) = verdicts.try_recv() {
            if seen.insert(fv.printer) {
                eprintln!(
                    "!! {} {}: confidence {:.2} over windows {}..={} ({} evidence)",
                    fv.verdict.severity,
                    fv.printer,
                    fv.verdict.confidence,
                    fv.verdict.window_span.0,
                    fv.verdict.window_span.1,
                    fv.verdict.evidence.len()
                );
            }
        }
        if frame % 80 == 0 {
            print_snapshot(&fleet, frame);
        }
    }

    let report = fleet.finish()?;
    for fv in &report.leftover_verdicts {
        seen.insert(fv.printer);
    }
    println!(
        "\nfleet done: {} chunks, {} alerts ({} lost), {} watchdog restarts",
        report.snapshot.chunks(),
        report.snapshot.alerts_emitted(),
        report.snapshot.alerts_lost(),
        report.snapshot.restarts()
    );
    println!("printer  model    print      sensors   verdict");
    for r in &report.printers {
        let script = &scripts[r.printer.0 as usize];
        println!(
            "{:>7}  {:8} {:10} {:9} {}{}",
            r.printer.0,
            script.key,
            if script.malicious {
                "ATTACKED"
            } else {
                "benign"
            },
            if script.faulted { "degraded" } else { "clean" },
            if r.intrusion { "INTRUSION" } else { "clear" },
            if r.restarts > 0 {
                format!("  ({} restart)", r.restarts)
            } else {
                String::new()
            }
        );
    }
    let crashed = report.printer(CRASHED).expect("crashed printer reported");
    println!(
        "\nprinter {} survived a detector crash: {} restart(s), {} windows processed",
        CRASHED.0, crashed.restarts, crashed.windows_seen
    );
    Ok(())
}
