//! Regenerates every result table of the paper's evaluation (§VIII):
//! Tables V-IX plus the Fig 12 accuracy summary, at the `small` profile.
//!
//! ```sh
//! cargo run --release --example reproduce_tables
//! ```
//!
//! The grid runs on the parallel engine; bound the worker count with
//! `AM_EVAL_THREADS=N`. Results are byte-identical at any thread count.

use am_eval::tables::{
    average_accuracies, run_grid_with, table5, table6, table7, table8, table9, EngineConfig,
    TableContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let ctx = TableContext::small()?;
    eprintln!("dataset generated in {:?}", t0.elapsed());
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::default())?;
    eprintln!(
        "grid evaluated in {:.1}s on {} threads (capture {:.1}s for {} artifacts, hit rate {:.2})",
        report.wall_seconds,
        report.threads,
        report.capture.generation_seconds(),
        report.capture.misses,
        report.capture.hit_rate()
    );
    println!("{}", table5(&grid));
    println!("{}", table6(&grid));
    println!("{}", table7(&grid));
    println!("{}", table8(&grid));
    println!("{}", table9(&grid));
    println!("Fig 12: average accuracy of the seven IDSs");
    for (name, acc) in average_accuracies(&grid) {
        let bar = "#".repeat((acc * 40.0).round() as usize);
        println!("  {name:<16} {acc:.3} {bar}");
    }
    Ok(())
}
