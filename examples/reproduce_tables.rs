//! Regenerates every result table of the paper's evaluation (§VIII):
//! Tables V-IX plus the Fig 12 accuracy summary, at the `small` profile.
//!
//! Takes a few minutes in release mode:
//!
//! ```sh
//! cargo run --release --example reproduce_tables
//! ```

use am_eval::tables::{
    average_accuracies, run_grid, table5, table6, table7, table8, table9, TableContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let ctx = TableContext::small()?;
    eprintln!("dataset generated in {:?}", t0.elapsed());
    let t1 = std::time::Instant::now();
    let grid = run_grid(&ctx)?;
    eprintln!("grid evaluated in {:?}", t1.elapsed());
    println!("{}", table5(&grid));
    println!("{}", table6(&grid));
    println!("{}", table7(&grid));
    println!("{}", table8(&grid));
    println!("{}", table9(&grid));
    println!("Fig 12: average accuracy of the seven IDSs");
    for (name, acc) in average_accuracies(&grid) {
        let bar = "#".repeat((acc * 40.0).round() as usize);
        println!("  {name:<16} {acc:.3} {bar}");
    }
    Ok(())
}
