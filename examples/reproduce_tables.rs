//! Regenerates every result table of the paper's evaluation (§VIII):
//! Tables V-IX plus the Fig 12 accuracy summary, at the `small` profile.
//!
//! ```sh
//! cargo run --release --example reproduce_tables
//! ```
//!
//! The grid runs on the parallel engine; bound the worker count with
//! `AM_EVAL_THREADS=N`. Results are byte-identical at any thread count.
//!
//! Set `AM_TELEMETRY=1` to print the registry summary to stderr, or pass
//! `--trace out.json` to also write a Chrome trace-event file. Telemetry
//! never touches stdout: the tables stay byte-identical with it on.

use am_eval::tables::{
    average_accuracies, run_grid_with, table5, table6, table7, table8, table9, EngineConfig,
    TableContext,
};
use std::path::PathBuf;

/// Parses `--trace <path>` from the command line, if present.
fn trace_flag() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    let mut trace = None;
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace = Some(PathBuf::from(
                args.next().expect("--trace requires a file path"),
            ));
        }
    }
    trace
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = trace_flag();
    if trace_path.is_some() {
        am_telemetry::set_tracing(true);
    }
    let t0 = std::time::Instant::now();
    let ctx = TableContext::small()?;
    eprintln!("dataset generated in {:?}", t0.elapsed());
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::default())?;
    eprintln!(
        "grid evaluated in {:.1}s on {} threads (capture {:.1}s for {} artifacts, hit rate {:.2})",
        report.wall_seconds,
        report.threads,
        report.capture.generation_seconds(),
        report.capture.misses,
        report.capture.hit_rate()
    );
    println!("{}", table5(&grid));
    println!("{}", table6(&grid));
    println!("{}", table7(&grid));
    println!("{}", table8(&grid));
    println!("{}", table9(&grid));
    println!("Fig 12: average accuracy of the seven IDSs");
    for (name, acc) in average_accuracies(&grid) {
        let bar = "#".repeat((acc * 40.0).round() as usize);
        println!("  {name:<16} {acc:.3} {bar}");
    }
    if am_telemetry::enabled() {
        eprintln!("{}", am_telemetry::json_summary());
    }
    if let Some(path) = trace_path {
        am_telemetry::write_chrome_trace(&path)?;
        eprintln!(
            "wrote Chrome trace ({} events) to {} — load at ui.perfetto.dev",
            am_telemetry::trace_event_count(),
            path.display()
        );
    }
    Ok(())
}
