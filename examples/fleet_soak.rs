//! Fleet soak benchmark: how many printers one box can supervise.
//!
//! Streams the full deterministic print of N simulated printers (default
//! 1000) through a sharded [`Fleet`] and records the measurements in
//! `BENCH_fleet.json`. Each printer runs the fused two-lane detector —
//! accelerometer and power side-channels feeding one cross-channel
//! discriminator — with online per-printer threshold calibration
//! enabled, i.e. the exact operating point DESIGN.md §15 documents.
//! Records wall-clock, chunk throughput, realtime multiple (seconds of
//! sensor data verified per wall second), peak queue depth, verdict
//! accounting, and detection outcomes, including recall broken out per
//! Table I attack type. Asserts the soak invariants — every chunk
//! processed, zero verdicts lost, queue depth bounded by the configured
//! capacity, no printer declared dead — and gates detection quality:
//! recall over the scripted-malicious printers must stay above
//! `--min-recall` and the false-alarm rate over benign printers below
//! `--max-false-alarm-rate`.
//!
//! ```sh
//! cargo run --release --example fleet_soak [-- --printers N] [--shards N] [--out PATH]
//!     [--min-recall R] [--max-false-alarm-rate R]
//! ```

use am_fleet::sim::{FleetSim, SimConfig};
use am_fleet::{tuning, AlertPolicy, Fleet, FleetConfig, IngestPolicy, PrinterId};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    printers: u64,
    shards: usize,
    out: String,
    min_recall: f64,
    max_false_alarm_rate: f64,
}

fn parse_args() -> Args {
    // Quality floors sit below the fused population's measured operating
    // point (recall 1.00, false alarms ~0.09 at 1000 printers — see
    // BENCH_fleet.json) so the gate catches regressions, not noise. They
    // live in `am_fleet::tuning` so the CI gate and the shipped
    // operating point move in the same commit.
    let mut parsed = Args {
        printers: 1000,
        shards: 4,
        out: "BENCH_fleet.json".to_string(),
        min_recall: tuning::MIN_RECALL,
        max_false_alarm_rate: tuning::MAX_FALSE_ALARM_RATE,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--printers" => parsed.printers = value("--printers").parse().expect("printer count"),
            "--shards" => parsed.shards = value("--shards").parse().expect("shard count"),
            "--out" => parsed.out = value("--out"),
            "--min-recall" => {
                parsed.min_recall = value("--min-recall").parse().expect("recall floor");
            }
            "--max-false-alarm-rate" => {
                parsed.max_false_alarm_rate = value("--max-false-alarm-rate")
                    .parse()
                    .expect("false-alarm ceiling");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let queue_capacity = 256;
    eprintln!("training shared models (small profile, UM3) ...");
    let t0 = Instant::now();
    let sim = FleetSim::build(SimConfig::default())?;
    let train_seconds = t0.elapsed().as_secs_f64();

    eprintln!(
        "scripting {} printers (fused acc+pwr lanes) ...",
        args.printers
    );
    let t0 = Instant::now();
    let scripts = (0..args.printers)
        .map(|id| sim.fused_script(PrinterId(id)))
        .collect::<Result<Vec<_>, _>>()?;
    let script_seconds = t0.elapsed().as_secs_f64();
    let total_chunks: u64 = scripts
        .iter()
        .map(|s| s.lanes.iter().map(Vec::len).sum::<usize>() as u64)
        .sum();
    let sensor_seconds: f64 = scripts
        .iter()
        .flat_map(|s| s.lanes.iter().flatten())
        .map(am_dsp::Signal::duration)
        .sum();
    let scripted_malicious = scripts.iter().filter(|s| s.malicious).count();
    let scripted_faulted = scripts.iter().filter(|s| s.faulted).count();

    // Block on both edges: the soak must account for every chunk and
    // every verdict, so nothing may be shed.
    let cfg = FleetConfig::default()
        .with_shards(args.shards)
        .with_shard_queue_capacity(queue_capacity)
        .with_ingest(IngestPolicy::Block)
        .with_alert_policy(AlertPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    let (policy, calibration) = tuning::operating_point();
    let fused = sim.fused_spec(policy, calibration);
    for script in &scripts {
        fleet.register_fused(script.printer, std::sync::Arc::clone(&fused))?;
    }

    // A live operator: drains the fan-in so full verdict queues never
    // stall the shard workers.
    let verdicts = fleet.verdicts();
    let drainer = std::thread::spawn(move || {
        let mut received = 0u64;
        while verdicts.recv().is_ok() {
            received += 1;
        }
        received
    });

    eprintln!(
        "soaking: {} printers, {} shards, {} chunks ({:.0} s of sensor data) ...",
        args.printers, args.shards, total_chunks, sensor_seconds
    );
    let t0 = Instant::now();
    let longest = scripts
        .iter()
        .flat_map(|s| s.lanes.iter().map(Vec::len))
        .max()
        .unwrap_or(0);
    // DAQ edges deliver in short bursts, not one frame at a time; a
    // 64-frame burst (16 s of sensor data) per printer visit also keeps
    // each detector's state hot while its chunks drain, which matters
    // once the farm's working set (two detectors per printer) outgrows
    // the cache. Feed order does not change detection: per-cell chunk
    // order is preserved, so the verdict stream is byte-identical to a
    // frame-by-frame round-robin.
    const BURST: usize = 64;
    let mut frame = 0;
    while frame < longest {
        let end_frame = (frame + BURST).min(longest);
        for script in &scripts {
            for (lane, chunks) in script.lanes.iter().enumerate() {
                for f in frame..end_frame {
                    if let Some(chunk) = chunks.get(f) {
                        fleet
                            .send_lane(script.printer, lane as u8, chunk.clone())
                            .expect("Block ingestion never rejects while shards live");
                    }
                }
            }
        }
        frame = end_frame;
    }
    let report = fleet.finish()?;
    let wall_seconds = t0.elapsed().as_secs_f64();
    let received = drainer.join().expect("verdict drainer") + report.leftover_verdicts.len() as u64;

    // Soak invariants (the CI smoke job runs this binary and relies on a
    // non-zero exit code here).
    let snap = &report.snapshot;
    assert_eq!(snap.chunks(), total_chunks, "every chunk must be processed");
    assert_eq!(snap.alerts_lost(), 0, "no verdict may be lost");
    assert_eq!(
        received,
        snap.alerts_emitted(),
        "every emitted verdict must reach the operator"
    );
    assert!(
        snap.max_queue_depth() <= queue_capacity as u64,
        "queue depth must stay bounded"
    );
    let dead: usize = snap.shards.iter().map(|s| s.stats.dead_printers).sum();
    assert_eq!(dead, 0, "no printer may exhaust its restart budget");
    assert_eq!(report.printers.len(), args.printers as usize);

    let detected_malicious = report
        .printers
        .iter()
        .filter(|r| r.intrusion && scripts[r.printer.0 as usize].malicious)
        .count();
    let false_alarms = report
        .printers
        .iter()
        .filter(|r| r.intrusion && !scripts[r.printer.0 as usize].malicious)
        .count();
    // Recall broken out per Table I attack type: (detected, scripted).
    let mut by_attack: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for r in &report.printers {
        let script = &scripts[r.printer.0 as usize];
        if let Some(attack) = script.attack.as_deref() {
            let entry = by_attack.entry(attack).or_insert((0, 0));
            entry.1 += 1;
            if r.intrusion {
                entry.0 += 1;
            }
        }
    }
    let resyncs: u64 = snap.shards.iter().map(|s| s.stats.resyncs).sum();
    let scripted_benign = args.printers as usize - scripted_malicious;
    let recall = if scripted_malicious > 0 {
        detected_malicious as f64 / scripted_malicious as f64
    } else {
        1.0
    };
    let false_alarm_rate = if scripted_benign > 0 {
        false_alarms as f64 / scripted_benign as f64
    } else {
        0.0
    };
    eprintln!("recall by attack type:");
    for (attack, (det, tot)) in &by_attack {
        eprintln!(
            "  {attack:12} {det:>4}/{tot:<4} ({:.3})",
            *det as f64 / (*tot).max(1) as f64
        );
    }
    assert!(
        recall >= args.min_recall,
        "recall {recall:.3} fell below the {:.3} floor ({detected_malicious}/{scripted_malicious})",
        args.min_recall
    );
    assert!(
        false_alarm_rate <= args.max_false_alarm_rate,
        "false-alarm rate {false_alarm_rate:.3} above the {:.3} ceiling ({false_alarms}/{scripted_benign})",
        args.max_false_alarm_rate
    );

    let recall_by_attack = by_attack
        .iter()
        .map(|(attack, (det, tot))| {
            format!(
                "    \"{attack}\": {{ \"detected\": {det}, \"scripted\": {tot}, \"recall\": {:.4} }}",
                *det as f64 / (*tot).max(1) as f64
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"fleet soak, small profile, UM3, fused acc+pwr lanes, calibrated\",\n  \"command\": \"cargo run --release --example fleet_soak\",\n  \"cpu_features\": \"{}\",\n  \"simd_backend\": \"{}\",\n  \"printers\": {},\n  \"shards\": {},\n  \"shard_queue_capacity\": {},\n  \"train_seconds\": {:.3},\n  \"script_seconds\": {:.3},\n  \"soak_wall_seconds\": {:.3},\n  \"chunks\": {},\n  \"chunks_per_second\": {:.0},\n  \"sensor_seconds_verified\": {:.0},\n  \"realtime_multiple\": {:.1},\n  \"max_queue_depth\": {},\n  \"verdicts_emitted\": {},\n  \"verdicts_received\": {},\n  \"verdicts_lost\": {},\n  \"resyncs\": {},\n  \"restarts\": {},\n  \"dead_printers\": {},\n  \"verdicts_dropped\": {},\n  \"scripted_malicious\": {},\n  \"detected_malicious\": {},\n  \"recall\": {:.4},\n  \"false_alarms\": {},\n  \"false_alarm_rate\": {:.4},\n  \"recall_by_attack\": {{\n{}\n  }},\n  \"scripted_faulted\": {}\n}}\n",
        am_dsp::simd::cpu_features(),
        am_dsp::simd::active().label(),
        args.printers,
        args.shards,
        queue_capacity,
        train_seconds,
        script_seconds,
        wall_seconds,
        total_chunks,
        total_chunks as f64 / wall_seconds,
        sensor_seconds,
        sensor_seconds / wall_seconds,
        snap.max_queue_depth(),
        snap.alerts_emitted(),
        received,
        snap.alerts_lost(),
        resyncs,
        snap.restarts(),
        dead,
        snap.alerts_dropped(),
        scripted_malicious,
        detected_malicious,
        recall,
        false_alarms,
        false_alarm_rate,
        recall_by_attack,
        scripted_faulted,
    );
    std::fs::write(&args.out, &json)?;
    println!("{json}");
    eprintln!("wrote {}", args.out);
    Ok(())
}
