//! Fleet soak benchmark: how many printers one box can supervise.
//!
//! Streams the full deterministic print of N simulated printers (default
//! 1000) through a sharded [`Fleet`] and records the measurements in
//! `BENCH_fleet.json`: wall-clock, chunk throughput, realtime multiple
//! (seconds of sensor data verified per wall second), peak queue depth,
//! alert accounting, and detection outcomes. Asserts the soak
//! invariants — every chunk processed, zero alerts lost, queue depth
//! bounded by the configured capacity, no printer declared dead.
//!
//! ```sh
//! cargo run --release --example fleet_soak [-- --printers N] [--shards N] [--out PATH]
//! ```

use am_fleet::sim::{FleetSim, SimConfig};
use am_fleet::{AlertPolicy, Fleet, FleetConfig, IngestPolicy, PrinterId};
use std::time::Instant;

struct Args {
    printers: u64,
    shards: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        printers: 1000,
        shards: 4,
        out: "BENCH_fleet.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--printers" => parsed.printers = value("--printers").parse().expect("printer count"),
            "--shards" => parsed.shards = value("--shards").parse().expect("shard count"),
            "--out" => parsed.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let queue_capacity = 256;
    eprintln!("training shared models (small profile, UM3) ...");
    let t0 = Instant::now();
    let sim = FleetSim::build(SimConfig::default())?;
    let train_seconds = t0.elapsed().as_secs_f64();

    eprintln!("scripting {} printers ...", args.printers);
    let t0 = Instant::now();
    let scripts = (0..args.printers)
        .map(|id| sim.script(PrinterId(id)))
        .collect::<Result<Vec<_>, _>>()?;
    let script_seconds = t0.elapsed().as_secs_f64();
    let total_chunks: u64 = scripts.iter().map(|s| s.chunks.len() as u64).sum();
    let sensor_seconds: f64 = scripts
        .iter()
        .flat_map(|s| s.chunks.iter())
        .map(am_dsp::Signal::duration)
        .sum();
    let scripted_malicious = scripts.iter().filter(|s| s.malicious).count();
    let scripted_faulted = scripts.iter().filter(|s| s.faulted).count();

    // Block on both edges: the soak must account for every chunk and
    // every alert, so nothing may be shed.
    let cfg = FleetConfig::default()
        .with_shards(args.shards)
        .with_shard_queue_capacity(queue_capacity)
        .with_ingest(IngestPolicy::Block)
        .with_alert_policy(AlertPolicy::Block);
    let mut fleet = Fleet::spawn(cfg);
    for script in &scripts {
        fleet.register(script.printer, sim.spec_of(script.printer))?;
    }

    // A live operator: drains the fan-in so full alert queues never
    // stall the shard workers.
    let alerts = fleet.alerts();
    let drainer = std::thread::spawn(move || {
        let mut received = 0u64;
        while alerts.recv().is_ok() {
            received += 1;
        }
        received
    });

    eprintln!(
        "soaking: {} printers, {} shards, {} chunks ({:.0} s of sensor data) ...",
        args.printers, args.shards, total_chunks, sensor_seconds
    );
    let t0 = Instant::now();
    let longest = scripts.iter().map(|s| s.chunks.len()).max().unwrap_or(0);
    for frame in 0..longest {
        for script in &scripts {
            if let Some(chunk) = script.chunks.get(frame) {
                fleet
                    .send(script.printer, chunk.clone())
                    .expect("Block ingestion never rejects while shards live");
            }
        }
    }
    let report = fleet.finish()?;
    let wall_seconds = t0.elapsed().as_secs_f64();
    let received = drainer.join().expect("alert drainer") + report.leftover_alerts.len() as u64;

    // Soak invariants (the CI smoke job runs this binary and relies on a
    // non-zero exit code here).
    let snap = &report.snapshot;
    assert_eq!(snap.chunks(), total_chunks, "every chunk must be processed");
    assert_eq!(snap.alerts_lost(), 0, "no alert may be lost");
    assert_eq!(
        received,
        snap.alerts_emitted(),
        "every emitted alert must reach the operator"
    );
    assert!(
        snap.max_queue_depth() <= queue_capacity as u64,
        "queue depth must stay bounded"
    );
    let dead: usize = snap.shards.iter().map(|s| s.stats.dead_printers).sum();
    assert_eq!(dead, 0, "no printer may exhaust its restart budget");
    assert_eq!(report.printers.len(), args.printers as usize);

    let detected_malicious = report
        .printers
        .iter()
        .filter(|r| r.intrusion && scripts[r.printer.0 as usize].malicious)
        .count();
    let false_alarms = report
        .printers
        .iter()
        .filter(|r| r.intrusion && !scripts[r.printer.0 as usize].malicious)
        .count();
    let resyncs: u64 = snap.shards.iter().map(|s| s.stats.resyncs).sum();

    let json = format!(
        "{{\n  \"benchmark\": \"fleet soak, small profile, UM3, acc+pwr models\",\n  \"command\": \"cargo run --release --example fleet_soak\",\n  \"printers\": {},\n  \"shards\": {},\n  \"shard_queue_capacity\": {},\n  \"train_seconds\": {:.3},\n  \"script_seconds\": {:.3},\n  \"soak_wall_seconds\": {:.3},\n  \"chunks\": {},\n  \"chunks_per_second\": {:.0},\n  \"sensor_seconds_verified\": {:.0},\n  \"realtime_multiple\": {:.1},\n  \"max_queue_depth\": {},\n  \"alerts_emitted\": {},\n  \"alerts_received\": {},\n  \"alerts_lost\": {},\n  \"resyncs\": {},\n  \"restarts\": {},\n  \"dead_printers\": {},\n  \"scripted_malicious\": {},\n  \"detected_malicious\": {},\n  \"false_alarms\": {},\n  \"scripted_faulted\": {}\n}}\n",
        args.printers,
        args.shards,
        queue_capacity,
        train_seconds,
        script_seconds,
        wall_seconds,
        total_chunks,
        total_chunks as f64 / wall_seconds,
        sensor_seconds,
        sensor_seconds / wall_seconds,
        snap.max_queue_depth(),
        snap.alerts_emitted(),
        received,
        snap.alerts_lost(),
        resyncs,
        snap.restarts(),
        dead,
        scripted_malicious,
        detected_malicious,
        false_alarms,
        scripted_faulted,
    );
    std::fs::write(&args.out, &json)?;
    println!("{json}");
    eprintln!("wrote {}", args.out);
    Ok(())
}
