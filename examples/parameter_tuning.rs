//! Fig 6 reproduction: how `t_sigma`, `t_win` and `eta` shape the
//! horizontal-displacement track (§VI-C's selection recipes).
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use am_dataset::{ExperimentSpec, TrajectorySet};
use am_eval::figures::{fig6_eta, fig6_sigma, fig6_window, Series};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

fn sparkline(s: &Series) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = s.y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = s.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    s.y.iter()
        .step_by((s.y.len() / 48).max(1))
        .map(|v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn show(title: &str, series: &[Series]) {
    println!("{title}");
    for s in series {
        println!(
            "  {:<14} range {:>7.3} s   {}",
            s.label,
            s.y_range(),
            sparkline(s)
        );
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3))?;
    let channel = SideChannel::Acc;

    // Fig 6 (a): small sigma = too rigid to follow drift; huge sigma =
    // wanders off on periodic content. §VI-C: pick sigma just above the
    // largest window-to-window change of the true h_disp.
    show(
        "Fig 6(a): t_sigma sweep (t_ext = 2 t_sigma)",
        &fig6_sigma(&set, channel, &[0.1, 0.25, 0.5, 1.0, 2.0])?,
    );

    // Fig 6 (b): tiny windows spike; huge windows lose temporal
    // resolution. §VI-C: sweep and pick where the overall shape stops
    // changing.
    show(
        "Fig 6(b): t_win sweep (hop/ext/sigma at default ratios)",
        &fig6_window(&set, channel, &[1.0, 2.0, 4.0, 8.0])?,
    );

    // Fig 6 (c): eta near 1 can run away; start at 0.1 and raise only if
    // DWM fails to converge.
    show(
        "Fig 6(c): eta sweep",
        &fig6_eta(&set, channel, &[0.05, 0.1, 0.5, 1.0])?,
    );

    // §VI-C end-to-end: let the library pick the parameters itself from a
    // benign pair and compare with the hand-tuned profile values.
    use am_dataset::RunRole;
    use am_eval::harness::{Split, Transform};
    let split = Split::generate(&set, channel, Transform::Raw)?;
    let benign = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .expect("benign test run");
    let tuned = am_sync::autotune::auto_tune(
        &benign.signal,
        &split.reference.signal,
        &[1.0, 2.0, 4.0, 8.0],
    )?;
    let manual = set.spec.profile.dwm_params(set.spec.printer);
    println!("auto-tuned parameters (vs hand-tuned profile):");
    println!(
        "  t_win   {:>6.2} s  (manual {:.2})",
        tuned.t_win, manual.t_win
    );
    println!(
        "  t_sigma {:>6.3} s  (manual {:.3})",
        tuned.t_sigma, manual.t_sigma
    );
    println!(
        "  t_ext   {:>6.3} s  (manual {:.3})",
        tuned.t_ext, manual.t_ext
    );
    Ok(())
}
