//! DWM vs DTW head-to-head (the substance of Fig 11 and §VIII-E):
//! alignment quality and wall-clock cost on the same spectrogram pair.
//!
//! ```sh
//! cargo run --release --example compare_synchronizers
//! ```

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{DtwSynchronizer, DwmSynchronizer, Synchronizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3))?;
    println!("channel      synchronizer   time/s-of-signal   windows/points   |h_disp| end (s)");
    for channel in [SideChannel::Acc, SideChannel::Aud, SideChannel::Ept] {
        let split = Split::generate(&set, channel, Transform::Spectrogram)?;
        let observed = split
            .tests
            .iter()
            .find(|c| matches!(c.role, RunRole::TestBenign(0)))
            .expect("benign test present");
        let a = &observed.signal;
        let b = &split.reference.signal;
        let duration = a.duration();

        let dwm = DwmSynchronizer::new(set.spec.profile.dwm_params(set.spec.printer));
        let t0 = std::time::Instant::now();
        let al_dwm = dwm.synchronize(a, b)?;
        let dwm_time = t0.elapsed().as_secs_f64();

        let dtw = DtwSynchronizer::default();
        let t1 = std::time::Instant::now();
        let al_dtw = dtw.synchronize(a, b)?;
        let dtw_time = t1.elapsed().as_secs_f64();

        let end_disp = |h: &[f64]| h.last().map(|v| v / a.fs()).unwrap_or(0.0);
        println!(
            "{:<12} {:<14} {:>12.6} s {:>16} {:>14.2}",
            channel.to_string(),
            dwm.name(),
            dwm_time / duration,
            al_dwm.len(),
            end_disp(&al_dwm.h_disp)
        );
        println!(
            "{:<12} {:<14} {:>12.6} s {:>16} {:>14.2}",
            "",
            dtw.name(),
            dtw_time / duration,
            al_dtw.len(),
            end_disp(&al_dtw.h_disp)
        );
        println!(
            "             -> DWM is {:.0}x faster on this pair\n",
            dtw_time / dwm_time.max(1e-12)
        );
    }
    Ok(())
}
