//! Benchmarks the evaluation-grid engine and records the measurements in
//! `BENCH_grid.json`: wall-clock at 1/2/4/8 threads, per-stage timings
//! (capture pre-warm / detector fit / judging), cache and contention
//! counters, and the speedup over the pre-refactor sequential grid.
//!
//! Per-stage time is reported two ways, because they answer different
//! questions: `*_cpu_seconds` sums per-worker *thread-CPU* measurements
//! (how much compute the stage burned — preemption on an oversubscribed
//! machine does not inflate it, so values compare across thread counts),
//! while `*_wall_seconds` is the interval union of the stage's wall
//! spans (how long the stage actually took). Earlier revisions summed
//! wall stopwatches, unlabelled, which made the 8-thread judge stage
//! look 4× slower than the 1-thread one.
//!
//! ```sh
//! cargo run --release --example bench_grid              # full sweep
//! cargo run --release --example bench_grid -- --quick   # 1-thread gate run
//! cargo run --release --example bench_grid -- --quick --threads 4
//! ```
//!
//! `--quick` runs a single grid (1 thread unless `--threads N` overrides
//! it) and writes `BENCH_quick.json` (override with `--out`) — the CI
//! bench-regression gate compares its wall-clock against the committed
//! `BENCH_grid.json` baseline, and the parallel-scaling gate compares a
//! `--threads 4` run against the 1-thread run. Set `AM_TELEMETRY=1` to
//! print the registry summary to stderr, or pass `--trace out.json` to
//! also write a Chrome trace-event file (load it at `ui.perfetto.dev`
//! or `chrome://tracing`) with spans for capture pre-warming, shared
//! fits, per-cell judging, per-worker lanes (`grid.worker{i}`), sync
//! kernels, and DAQ capture.
//!
//! The benchmark defaults to the reassociated `fast` kernel dispatch
//! (`am_dsp::simd`) — it measures throughput, not golden bytes. Pass
//! `--simd off|fast|scalar|avx2` (or set `AM_SIMD`, which wins) to pin a
//! backend; the chosen backend and the detected CPU features land in the
//! report header and in every run row so the CI bench-regression gate
//! never compares runs made with different kernels.

use am_dsp::simd::{self, SimdMode};
use am_eval::engine::{run_grid_with, EngineConfig, GridReport};
use am_eval::tables::TableContext;
use std::path::PathBuf;

struct Args {
    trace: Option<PathBuf>,
    quick: bool,
    out: Option<PathBuf>,
    threads: Option<usize>,
    simd: SimdMode,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        trace: None,
        quick: false,
        out: None,
        threads: None,
        simd: SimdMode::Fast,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                parsed.trace = Some(PathBuf::from(
                    args.next().expect("--trace requires a file path"),
                ));
            }
            "--quick" => parsed.quick = true,
            "--out" => {
                parsed.out = Some(PathBuf::from(
                    args.next().expect("--out requires a file path"),
                ));
            }
            "--threads" => {
                parsed.threads = Some(
                    args.next()
                        .expect("--threads requires a worker count")
                        .parse()
                        .expect("--threads takes an integer"),
                );
            }
            "--simd" => {
                let raw = args.next().expect("--simd requires a mode");
                parsed.simd = SimdMode::parse(&raw)
                    .unwrap_or_else(|| panic!("--simd takes off|auto|fast|scalar|avx2, got {raw}"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

/// Sequential wall-clock of the pre-refactor `run_grid` (one split per
/// channel × transform, one `eval_*` driver per IDS), measured at commit
/// 26216ad with `cargo run --release --example reproduce_tables` on this
/// container. Kept as the fixed comparison point for the engine.
const PRE_REFACTOR_WALL_SECONDS: f64 = 88.814;

fn run_entry(report: &GridReport, cells: usize) -> String {
    format!(
        "    {{\n      \"threads\": {},\n      \"simd_backend\": \"{}\",\n      \"wall_seconds\": {:.3},\n      \"cells\": {},\n      \"shared_fits\": {},\n      \"prewarm_seconds\": {:.3},\n      \"capture_generation_seconds\": {:.3},\n      \"capture_blocked_seconds\": {:.3},\n      \"fit_cpu_seconds\": {:.3},\n      \"fit_wall_seconds\": {:.3},\n      \"judge_cpu_seconds\": {:.3},\n      \"judge_wall_seconds\": {:.3},\n      \"cache_hits\": {},\n      \"cache_misses\": {},\n      \"cache_hit_rate\": {:.4},\n      \"fit_store_hits\": {},\n      \"fit_store_misses\": {},\n      \"fit_store_blocked_seconds\": {:.3}\n    }}",
        report.threads,
        report.simd_backend,
        report.wall_seconds,
        cells,
        report.fits.len(),
        report.prewarm_seconds,
        report.capture.generation_seconds(),
        report.capture.blocked_seconds(),
        report.fit_cpu_seconds(),
        report.fit_wall_seconds(),
        report.judge_cpu_seconds(),
        report.judge_wall_seconds(),
        report.capture.hits,
        report.capture.misses,
        report.capture.hit_rate(),
        report.fit_store.hits,
        report.fit_store.misses,
        report.fit_store.blocked_seconds(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    if args.trace.is_some() {
        am_telemetry::set_tracing(true);
    }
    // Request the benchmark's kernel dispatch before any kernel runs
    // pins it. AM_SIMD in the environment still wins at resolution.
    simd::set_mode(args.simd);
    let dispatch = simd::active();
    eprintln!(
        "simd dispatch: {} ({})",
        dispatch.label(),
        simd::cpu_features()
    );
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t0 = std::time::Instant::now();
    let ctx = TableContext::small()?;
    let dataset_seconds = t0.elapsed().as_secs_f64();
    eprintln!("dataset generated in {dataset_seconds:.1}s ({hardware_threads} hardware threads)");

    let single;
    let thread_sweep: &[usize] = match args.threads {
        Some(n) => {
            single = [n];
            &single
        }
        None if args.quick => &[1],
        None => &[1, 2, 4, 8],
    };
    let mut entries = Vec::new();
    let mut reports: Vec<GridReport> = Vec::new();
    let mut baseline_grid = None;
    for &threads in thread_sweep {
        eprintln!("running grid at {threads} thread(s) ...");
        let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(threads))?;
        eprintln!("  {:.1}s", report.wall_seconds);
        match &baseline_grid {
            None => baseline_grid = Some(grid),
            Some(base) => assert_eq!(
                base, &grid,
                "grid results must be identical at any thread count"
            ),
        }
        entries.push(run_entry(
            &report,
            baseline_grid.as_ref().expect("set above").cells.len(),
        ));
        reports.push(report);
    }

    let one_wall = reports[0].wall_seconds;
    let best_parallel_wall = reports
        .iter()
        .map(|r| r.wall_seconds)
        .fold(f64::INFINITY, f64::min);
    let benchmark = if args.quick {
        "evaluation grid, small profile, both printers (quick)"
    } else {
        "evaluation grid, small profile, both printers"
    };
    // A box with one hardware thread cannot speed up with workers; say
    // so in the artifact instead of letting flat rows read as a bug.
    let note = if hardware_threads == 1 {
        "\n  \"note\": \"single hardware thread: wall time cannot improve with workers, so flat wall_seconds and flat *_cpu_seconds across the sweep is the best possible result here; judge scaling shows on multi-core hosts (CI parallel-scaling gate)\","
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"command\": \"cargo run --release --example bench_grid\",\n  \"hardware_threads\": {},\n  \"cpu_features\": \"{}\",\n  \"simd_backend\": \"{}\",{note}\n  \"dataset_generation_seconds\": {:.3},\n  \"pre_refactor\": {{\n    \"commit\": \"26216ad\",\n    \"driver\": \"sequential run_grid with per-IDS eval_* functions\",\n    \"wall_seconds\": {:.3}\n  }},\n  \"runs\": [\n{}\n  ],\n  \"deterministic\": true,\n  \"speedup_vs_pre_refactor_single_thread\": {:.2},\n  \"speedup_vs_pre_refactor_best_parallel\": {:.2}\n}}\n",
        benchmark,
        hardware_threads,
        simd::cpu_features(),
        dispatch.label(),
        dataset_seconds,
        PRE_REFACTOR_WALL_SECONDS,
        entries.join(",\n"),
        PRE_REFACTOR_WALL_SECONDS / one_wall,
        PRE_REFACTOR_WALL_SECONDS / best_parallel_wall,
    );
    let out = args.out.unwrap_or_else(|| {
        PathBuf::from(if args.quick {
            "BENCH_quick.json"
        } else {
            "BENCH_grid.json"
        })
    });
    std::fs::write(&out, &json)?;
    println!("{json}");
    eprintln!("wrote {}", out.display());
    if am_telemetry::enabled() {
        eprintln!("{}", am_telemetry::json_summary());
    }
    if let Some(path) = args.trace {
        am_telemetry::write_chrome_trace(&path)?;
        eprintln!(
            "wrote Chrome trace ({} events) to {} — load at ui.perfetto.dev",
            am_telemetry::trace_event_count(),
            path.display()
        );
    }
    Ok(())
}
