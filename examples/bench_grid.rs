//! Benchmarks the evaluation-grid engine and records the measurements in
//! `BENCH_grid.json`: wall-clock at 1 and N threads, per-stage timings
//! (capture generation / detector fit / judging), cache hit rate, and
//! the speedup over the pre-refactor sequential grid.
//!
//! ```sh
//! cargo run --release --example bench_grid
//! ```

use am_eval::engine::{run_grid_with, EngineConfig, GridReport};
use am_eval::tables::TableContext;

/// Sequential wall-clock of the pre-refactor `run_grid` (one split per
/// channel × transform, one `eval_*` driver per IDS), measured at commit
/// 26216ad with `cargo run --release --example reproduce_tables` on this
/// container. Kept as the fixed comparison point for the engine.
const PRE_REFACTOR_WALL_SECONDS: f64 = 88.814;

fn run_entry(report: &GridReport, cells: usize) -> String {
    format!(
        "    {{\n      \"threads\": {},\n      \"wall_seconds\": {:.3},\n      \"cells\": {},\n      \"capture_generation_seconds\": {:.3},\n      \"fit_seconds_total\": {:.3},\n      \"judge_seconds_total\": {:.3},\n      \"cache_hits\": {},\n      \"cache_misses\": {},\n      \"cache_hit_rate\": {:.4}\n    }}",
        report.threads,
        report.wall_seconds,
        cells,
        report.capture.generation_seconds(),
        report.fit_seconds(),
        report.judge_seconds(),
        report.capture.hits,
        report.capture.misses,
        report.capture.hit_rate()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let ctx = TableContext::small()?;
    let dataset_seconds = t0.elapsed().as_secs_f64();
    eprintln!("dataset generated in {dataset_seconds:.1}s");

    eprintln!("running grid at 1 thread ...");
    let (grid_one, report_one) = run_grid_with(&ctx, &EngineConfig::with_threads(1))?;
    eprintln!("  {:.1}s", report_one.wall_seconds);

    // Always exercise the parallel scheduler, even on a 1-core machine.
    let threads = EngineConfig::default().resolve_threads().max(2);
    eprintln!("running grid at {threads} threads ...");
    let (grid_n, report_n) = run_grid_with(&ctx, &EngineConfig::with_threads(threads))?;
    eprintln!("  {:.1}s", report_n.wall_seconds);

    assert_eq!(
        grid_one, grid_n,
        "grid results must be identical at any thread count"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"evaluation grid, small profile, both printers\",\n  \"command\": \"cargo run --release --example bench_grid\",\n  \"dataset_generation_seconds\": {:.3},\n  \"pre_refactor\": {{\n    \"commit\": \"26216ad\",\n    \"driver\": \"sequential run_grid with per-IDS eval_* functions\",\n    \"wall_seconds\": {:.3}\n  }},\n  \"runs\": [\n{},\n{}\n  ],\n  \"deterministic\": true,\n  \"speedup_vs_pre_refactor_single_thread\": {:.2},\n  \"speedup_vs_pre_refactor_parallel\": {:.2}\n}}\n",
        dataset_seconds,
        PRE_REFACTOR_WALL_SECONDS,
        run_entry(&report_one, grid_one.cells.len()),
        run_entry(&report_n, grid_n.cells.len()),
        PRE_REFACTOR_WALL_SECONDS / report_one.wall_seconds,
        PRE_REFACTOR_WALL_SECONDS / report_n.wall_seconds,
    );
    std::fs::write("BENCH_grid.json", &json)?;
    println!("{json}");
    eprintln!("wrote BENCH_grid.json");
    Ok(())
}
