//! Scenario scorecard: every registered scenario through all seven IDSs
//! plus the fused acc+pwr nsync lane.
//!
//! For each [`am_scenarios::ScenarioRegistry`] row the scorecard
//! materializes the dataset, evaluates every registry detector on its
//! headline grid cell, streams each test run through the fused lane at
//! the shared [`am_fleet::tuning`] operating point, and emits
//! `BENCH_scenarios.json` (per-scenario × per-detector recall /
//! false-alarm / chunks-per-second). The process exits non-zero when any
//! scenario violates its committed floors — the CI scenario-matrix job
//! gates on exactly this.
//!
//! ```text
//! cargo run --release --example scenario_scorecard [-- --quick] [--out PATH] [--seed N]
//! ```
//!
//! `--quick` runs one representative row per family (the per-PR CI
//! subset); the nightly job runs the full zoo.

use am_dataset::{Profile, RunRole, Transform};
use am_dsp::Signal;
use am_eval::{evaluate_split, DetectorKind, DetectorSpec, Split};
use am_fleet::sim::{FleetSim, SimConfig};
use am_fleet::tuning;
use am_scenarios::{Scenario, ScenarioRegistry};
use am_sensors::channel::SideChannel;
use std::time::Instant;

struct Args {
    quick: bool,
    out: String,
    seed: u64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        out: "BENCH_scenarios.json".to_string(),
        seed: 0x5EED,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--out" => parsed.out = value("--out"),
            "--seed" => parsed.seed = value("--seed").parse().expect("seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

/// The grid cell each IDS is scored on — its strongest published
/// channel/transform (Tables V–VIII: acceleration for the
/// motion-coupled detectors, audio for the two audio-native ones).
fn headline_cell(kind: DetectorKind) -> (SideChannel, Transform) {
    match kind {
        DetectorKind::Bayens => (SideChannel::Aud, Transform::Raw),
        DetectorKind::Belikovetsky => (SideChannel::Aud, Transform::Spectrogram),
        DetectorKind::NsyncDtw => (SideChannel::Acc, Transform::Spectrogram),
        _ => (SideChannel::Acc, Transform::Raw),
    }
}

struct DetectorScore {
    label: String,
    channel: SideChannel,
    transform: Transform,
    recall: f64,
    false_alarm: f64,
    chunks_per_second: f64,
}

struct FusedScore {
    recall: f64,
    false_alarm: f64,
    chunks_per_second: f64,
    malicious: usize,
    benign: usize,
}

struct ScenarioScore {
    scenario: Scenario,
    detectors: Vec<DetectorScore>,
    fused: FusedScore,
    best_recall: f64,
    pass: bool,
}

fn chunk(signal: &Signal, seconds: f64) -> Vec<Signal> {
    let frame = ((seconds * signal.fs()) as usize).max(1);
    let mut chunks = Vec::with_capacity(signal.len().div_ceil(frame));
    let mut i = 0;
    while i < signal.len() {
        let end = (i + frame).min(signal.len());
        chunks.push(signal.slice(i..end).expect("in-range slice"));
        i = end;
    }
    chunks
}

fn score_scenario(
    sc: &Scenario,
    profile: Profile,
    seed: u64,
) -> Result<ScenarioScore, Box<dyn std::error::Error>> {
    let set = sc.build(profile, seed)?;
    let specs = DetectorSpec::registry(profile);

    // Capture each needed cell once; all detectors on that cell share it.
    let mut cells: Vec<((SideChannel, Transform), Split)> = Vec::new();
    for spec in &specs {
        let cell = headline_cell(spec.kind);
        if !cells.iter().any(|(c, _)| *c == cell) {
            let captures = set.capture(cell.0, cell.1)?;
            cells.push((cell, Split::from_captures(captures)?));
        }
    }

    let mut detectors = Vec::new();
    for spec in &specs {
        let cell = headline_cell(spec.kind);
        let split = &cells
            .iter()
            .find(|(c, _)| *c == cell)
            .expect("cell captured above")
            .1;
        let t0 = Instant::now();
        let outcome = evaluate_split(spec, profile, set.spec.printer, split)?;
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        detectors.push(DetectorScore {
            label: spec.label(),
            channel: cell.0,
            transform: cell.1,
            recall: outcome.overall.tpr(),
            false_alarm: outcome.overall.fpr(),
            chunks_per_second: split.tests.len() as f64 / wall,
        });
    }

    // Fused acc+pwr lane at the shared operating point: every test run
    // streamed as 0.25 s DAQ frames through its own fused detector.
    let sim = FleetSim::build_from_set(
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        &set,
    )?;
    let (policy, calibration) = tuning::operating_point();
    let fused_spec = sim.fused_spec(policy, calibration);
    let acc = set.capture_channel(SideChannel::Acc)?;
    let pwr = set.capture_channel(SideChannel::Pwr)?;
    let chunk_seconds = SimConfig::default().chunk_seconds;
    let (mut tp, mut malicious, mut fp, mut benign) = (0usize, 0usize, 0usize, 0usize);
    let mut total_chunks = 0usize;
    let t0 = Instant::now();
    for (a, p) in acc.iter().zip(&pwr) {
        if !a.role.is_test() {
            continue;
        }
        let lanes = [
            chunk(&a.signal, chunk_seconds),
            chunk(&p.signal, chunk_seconds),
        ];
        let longest = lanes.iter().map(Vec::len).max().unwrap_or(0);
        let mut ids = fused_spec.open()?;
        let mut fired = false;
        for f in 0..longest {
            for (lane, frames) in lanes.iter().enumerate() {
                if let Some(c) = frames.get(f) {
                    fired |= !ids.push(lane, c)?.is_empty();
                    total_chunks += 1;
                }
            }
        }
        match &a.role {
            RunRole::Malicious { .. } => {
                malicious += 1;
                if fired {
                    tp += 1;
                }
            }
            _ => {
                benign += 1;
                if fired {
                    fp += 1;
                }
            }
        }
    }
    let fused_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let fused = FusedScore {
        recall: if malicious > 0 {
            tp as f64 / malicious as f64
        } else {
            0.0
        },
        false_alarm: if benign > 0 {
            fp as f64 / benign as f64
        } else {
            0.0
        },
        chunks_per_second: total_chunks as f64 / fused_wall,
        malicious,
        benign,
    };

    let best_recall = detectors
        .iter()
        .map(|d| d.recall)
        .chain(std::iter::once(fused.recall))
        .fold(0.0f64, f64::max);
    let recall_ok = malicious == 0 || best_recall >= sc.floors.min_recall;
    let false_alarm_ok = fused.false_alarm <= sc.floors.max_false_alarm;
    Ok(ScenarioScore {
        scenario: sc.clone(),
        detectors,
        fused,
        best_recall,
        pass: recall_ok && false_alarm_ok,
    })
}

fn scenario_json(s: &ScenarioScore) -> String {
    let sc = &s.scenario;
    let detectors = s
        .detectors
        .iter()
        .map(|d| {
            format!(
                "        \"{}\": {{ \"channel\": \"{:?}\", \"transform\": \"{:?}\", \"recall\": {:.4}, \"false_alarm\": {:.4}, \"chunks_per_second\": {:.1} }}",
                d.label, d.channel, d.transform, d.recall, d.false_alarm, d.chunks_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    \"{}\": {{\n      \"family\": \"{}\",\n      \"machine\": \"{}\",\n      \"part\": \"{}\",\n      \"attack\": \"{}\",\n      \"min_recall\": {:.4},\n      \"max_false_alarm\": {:.4},\n      \"best_recall\": {:.4},\n      \"fused\": {{ \"recall\": {:.4}, \"false_alarm\": {:.4}, \"chunks_per_second\": {:.1}, \"malicious_runs\": {}, \"benign_runs\": {} }},\n      \"pass\": {},\n      \"detectors\": {{\n{}\n      }}\n    }}",
        sc.name,
        sc.family,
        sc.machine,
        sc.part,
        sc.attack.as_ref().map_or_else(|| "benign".to_string(), |a| a.name()),
        sc.floors.min_recall,
        sc.floors.max_false_alarm,
        s.best_recall,
        s.fused.recall,
        s.fused.false_alarm,
        s.fused.chunks_per_second,
        s.fused.malicious,
        s.fused.benign,
        s.pass,
        detectors,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let profile = Profile::Small;
    let registry = ScenarioRegistry::standard();
    let rows: Vec<&Scenario> = if args.quick {
        registry.quick_subset()
    } else {
        registry.iter().collect()
    };
    eprintln!(
        "scoring {} scenario(s) ({} zoo rows registered, quick={}) ...",
        rows.len(),
        registry.len(),
        args.quick
    );
    let t0 = Instant::now();
    let mut scores = Vec::new();
    for sc in rows {
        let t = Instant::now();
        let score = score_scenario(sc, profile, args.seed)?;
        eprintln!(
            "  {:24} best_recall {:.3}  fused fa {:.3}  [{}]  ({:.1} s)",
            sc.name,
            score.best_recall,
            score.fused.false_alarm,
            if score.pass { "pass" } else { "FAIL" },
            t.elapsed().as_secs_f64()
        );
        scores.push(score);
    }
    let wall_seconds = t0.elapsed().as_secs_f64();

    let body = scores
        .iter()
        .map(scenario_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"scenario scorecard, small profile, all IDSs + fused acc+pwr lane\",\n  \"command\": \"cargo run --release --example scenario_scorecard\",\n  \"quick\": {},\n  \"base_seed\": {},\n  \"scenario_count\": {},\n  \"wall_seconds\": {:.3},\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        args.quick, args.seed, scores.len(), wall_seconds, body,
    );
    std::fs::write(&args.out, &json)?;
    println!("{json}");
    eprintln!("wrote {}", args.out);

    // The gate: CI relies on a non-zero exit code here.
    let failures: Vec<&ScenarioScore> = scores.iter().filter(|s| !s.pass).collect();
    for f in &failures {
        eprintln!(
            "FLOOR VIOLATION {}: best_recall {:.3} (floor {:.3}), fused false-alarm {:.3} (ceiling {:.3})",
            f.scenario.name,
            f.best_recall,
            f.scenario.floors.min_recall,
            f.fused.false_alarm,
            f.scenario.floors.max_false_alarm,
        );
    }
    assert!(
        failures.is_empty(),
        "{} scenario(s) violated their committed floors",
        failures.len()
    );
    Ok(())
}
