//! Host crate for the repository-level integration tests in `/tests`.
//!
//! Each test file exercises a path that spans several crates:
//!
//! - `pipeline_end_to_end`: G-code → printer → sensors → NSYNC detection,
//! - `spectrogram_pipeline`: Table III transforms feeding the
//!   synchronizers,
//! - `baselines_vs_nsync`: the paper's headline comparison on a tiny mix,
//! - `streaming_realtime`: live chunked detection equals batch detection,
//! - `determinism`: the whole pipeline is a pure function of its seeds.

/// Shared helpers for the integration tests.
pub mod helpers {
    use am_dataset::spec::ProcessMix;
    use am_dataset::{ExperimentSpec, TrajectorySet};
    use am_printer::config::PrinterModel;

    /// A minimal process mix that still exercises training + both test
    /// classes (fast enough for debug-mode `cargo test`).
    pub fn tiny_mix() -> ProcessMix {
        ProcessMix {
            train: 3,
            test_benign: 2,
            malicious_per_attack: 1,
        }
    }

    /// Generates the tiny experiment for a printer.
    ///
    /// # Panics
    ///
    /// Panics on generation failure (integration tests treat that as a
    /// test failure).
    pub fn tiny_set(printer: PrinterModel) -> TrajectorySet {
        TrajectorySet::generate_with_mix(ExperimentSpec::small(printer), tiny_mix())
            .expect("dataset generation succeeds")
    }
}
