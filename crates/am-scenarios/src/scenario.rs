//! The scenario data model: attack generator × part geometry × printer
//! kinematics, with per-scenario detection-quality floors.

use crate::error::ScenarioError;
use am_dataset::{ExperimentSpec, ProcessMix, Profile, RunPlan, RunRole, TrajectorySet};
use am_gcode::attacks::Attack;
use am_gcode::geometry::{Point2, Polygon};
use am_gcode::slicer::{slice_cube, slice_gear, slice_outline, SliceConfig};
use am_gcode::GcodeProgram;
use am_printer::attack::FirmwareAttack;
use am_printer::config::{PrinterConfig, PrinterModel};
use am_sensors::interference::Interference;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Scenario family — the threat class a row exercises. CI floors are
/// gated per scenario, but reports group by family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Family {
    /// The paper's Table I G-code attacks (regression anchor).
    Baseline,
    /// Firmware-level attacks: G-code byte-identical to benign, the
    /// executing firmware is compromised (timing skew, layer skip,
    /// feedrate override).
    Firmware,
    /// Thermal-profile attacks: hotend/bed setpoint drift, visible mainly
    /// through the power side channel.
    Thermal,
    /// Benign-labeled acoustic/magnetic IP-exfiltration interference that
    /// pressures false-alarm rates without any attack present.
    Stressor,
    /// Non-catalog kinematics (CoreXY) and part geometries beyond the
    /// gear.
    Kinematics,
}

impl Family {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Baseline => "baseline",
            Family::Firmware => "firmware",
            Family::Thermal => "thermal",
            Family::Stressor => "stressor",
            Family::Kinematics => "kinematics",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The machine a scenario runs on. Extends the paper's UM3/RM3 pair with
/// a generic CoreXY frame that reuses the UM3 profile constants (there is
/// no Table IV column for it, so it reports as a UM3-class machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Machine {
    /// Ultimaker 3 (Cartesian).
    Um3,
    /// Rostock Max V3 (Delta).
    Rm3,
    /// Generic CoreXY frame.
    CoreXy,
}

impl Machine {
    /// The catalog model whose profile constants (slice scale, DWM
    /// parameters) this machine evaluates under.
    pub fn model(&self) -> PrinterModel {
        match self {
            Machine::Um3 | Machine::CoreXy => PrinterModel::Um3,
            Machine::Rm3 => PrinterModel::Rm3,
        }
    }

    /// The executing printer configuration.
    pub fn config(&self) -> PrinterConfig {
        match self {
            Machine::Um3 => PrinterConfig::ultimaker3(),
            Machine::Rm3 => PrinterConfig::rostock_max_v3(),
            Machine::CoreXy => PrinterConfig::corexy_generic(),
        }
    }

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Machine::Um3 => "UM3",
            Machine::Rm3 => "RM3",
            Machine::CoreXy => "CoreXY",
        }
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The printed part. Sizes derive from the profile's gear dimensions so
/// every part scales consistently across Small/Paper profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Part {
    /// The paper's spur gear.
    Gear,
    /// An axis-aligned cube (side = 1.6 × gear tip radius).
    Cube,
    /// An L-shaped bracket (arm = 2 × gear tip radius) — asymmetric in
    /// X/Y, so kinematic cross-coupling (CoreXY) shows up in the motion
    /// spectrum differently than the gear's radial symmetry.
    Bracket,
}

impl Part {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Part::Gear => "gear",
            Part::Cube => "cube",
            Part::Bracket => "bracket",
        }
    }

    /// Slices the part's benign program under the given config.
    ///
    /// # Errors
    ///
    /// Propagates slicing failures.
    pub fn slice(&self, cfg: &SliceConfig) -> Result<GcodeProgram, am_gcode::GcodeError> {
        match self {
            Part::Gear => slice_gear(cfg),
            Part::Cube => slice_cube(cfg, 1.6 * cfg.gear_tip_radius),
            Part::Bracket => slice_outline(&bracket_outline(cfg), cfg),
        }
    }
}

impl std::fmt::Display for Part {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// L-shaped bracket outline centred on the slice config's part centre.
fn bracket_outline(cfg: &SliceConfig) -> Polygon {
    let arm = 2.0 * cfg.gear_tip_radius;
    let thickness = cfg.gear_tip_radius;
    let ox = cfg.center.x - arm / 2.0;
    let oy = cfg.center.y - arm / 2.0;
    Polygon::new(vec![
        Point2::new(ox, oy),
        Point2::new(ox + arm, oy),
        Point2::new(ox + arm, oy + thickness),
        Point2::new(ox + thickness, oy + thickness),
        Point2::new(ox + thickness, oy + arm),
        Point2::new(ox, oy + arm),
    ])
}

/// How a scenario's malicious runs are produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackGen {
    /// A Table I-style G-code attack (the program sent to the printer is
    /// modified).
    Gcode(Attack),
    /// A firmware attack: the program stays byte-identical to benign, the
    /// executing [`PrinterConfig`] carries the compromise.
    Firmware(FirmwareAttack),
}

impl AttackGen {
    /// The attack's run-role name (Table I style).
    pub fn name(&self) -> String {
        match self {
            AttackGen::Gcode(a) => a.name(),
            AttackGen::Firmware(fw) => fw.name(),
        }
    }
}

/// Per-scenario detection-quality floors, enforced by the scorecard gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Floors {
    /// Minimum acceptable recall for the scenario's best lane (0 for
    /// benign-only stressor rows).
    pub min_recall: f64,
    /// Maximum acceptable false-alarm rate for the fused lane.
    pub max_false_alarm: f64,
}

impl Floors {
    /// Floors for an attack scenario.
    pub fn new(min_recall: f64, max_false_alarm: f64) -> Self {
        Floors {
            min_recall,
            max_false_alarm,
        }
    }

    /// Floors for a benign-only (stressor) scenario: recall is vacuous,
    /// only the false-alarm ceiling binds.
    pub fn benign_only(max_false_alarm: f64) -> Self {
        Floors {
            min_recall: 0.0,
            max_false_alarm,
        }
    }
}

/// One scenario row: attack generator × part × machine, with floors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique registry key (kebab-case, e.g. `"fw-um3-clock"`).
    pub name: String,
    /// Threat class.
    pub family: Family,
    /// Executing machine.
    pub machine: Machine,
    /// Printed part.
    pub part: Part,
    /// Malicious-run generator; `None` for benign-only rows.
    pub attack: Option<AttackGen>,
    /// Benign-labeled interference overlay on benign test captures.
    pub stressor: Option<Interference>,
    /// CI detection-quality floors.
    pub floors: Floors,
}

impl Scenario {
    /// Validates the row without materializing any data.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScenarioError`] for empty names, out-of-domain
    /// floors, or attack/part combinations the slicer cannot honour.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.trim().is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        for (field, value) in [
            ("min_recall", self.floors.min_recall),
            ("max_false_alarm", self.floors.max_false_alarm),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(ScenarioError::InvalidFloor {
                    scenario: self.name.clone(),
                    field,
                    value,
                });
            }
        }
        match &self.attack {
            Some(AttackGen::Gcode(a)) => {
                // Re-slicing attacks regenerate the part from the gear
                // profile; only the pure feedrate transform ports to
                // other geometries.
                let portable = matches!(a, Attack::SpeedScale(_));
                if self.part != Part::Gear && !portable {
                    return Err(ScenarioError::UnsupportedCombination {
                        scenario: self.name.clone(),
                        reason: format!(
                            "G-code attack {} re-slices the gear and cannot target a {}",
                            a.name(),
                            self.part
                        ),
                    });
                }
            }
            Some(AttackGen::Firmware(FirmwareAttack::LayerSkip(n))) if *n < 2 => {
                return Err(ScenarioError::UnsupportedCombination {
                    scenario: self.name.clone(),
                    reason: format!("LayerSkip({n}) would drop every layer; n must be >= 2"),
                });
            }
            _ => {}
        }
        if let Some(s) = &self.stressor {
            if let Err(e) = s.validate() {
                return Err(ScenarioError::UnsupportedCombination {
                    scenario: self.name.clone(),
                    reason: e.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The experiment spec this scenario evaluates under.
    pub fn spec(&self, profile: Profile, base_seed: u64) -> ExperimentSpec {
        ExperimentSpec {
            profile,
            printer: self.machine.model(),
            base_seed,
        }
    }

    /// The scorecard's default process mix: smaller than the catalog mix
    /// (the zoo multiplies rows, not repetitions) but large enough for
    /// recall/false-alarm estimates in eighths.
    pub fn scorecard_mix(profile: Profile) -> ProcessMix {
        match profile {
            Profile::Small => ProcessMix {
                train: 8,
                test_benign: 12,
                malicious_per_attack: 4,
            },
            Profile::Paper => profile.process_mix(),
        }
    }

    /// The benign program and (if the row has an attack) the malicious
    /// program. For firmware rows both are the **same `Arc`** — the
    /// byte-identity the threat model demands.
    ///
    /// # Errors
    ///
    /// Propagates validation and slicing failures.
    pub fn programs(
        &self,
        profile: Profile,
    ) -> Result<(Arc<GcodeProgram>, Option<Arc<GcodeProgram>>), ScenarioError> {
        self.validate()?;
        let slice_cfg = profile.slice_config(self.machine.model());
        let benign = Arc::new(self.part.slice(&slice_cfg)?);
        let malicious = match &self.attack {
            None => None,
            Some(AttackGen::Firmware(_)) => Some(benign.clone()),
            Some(AttackGen::Gcode(a)) => Some(Arc::new(a.apply(&benign, &slice_cfg)?)),
        };
        Ok((benign, malicious))
    }

    /// Materializes the scenario as a [`TrajectorySet`] with the default
    /// scorecard mix.
    ///
    /// # Errors
    ///
    /// Propagates validation, slicing, and execution failures.
    pub fn build(&self, profile: Profile, base_seed: u64) -> Result<TrajectorySet, ScenarioError> {
        self.build_with_mix(profile, base_seed, Self::scorecard_mix(profile))
    }

    /// [`Scenario::build`] with an explicit process mix (tiny mixes for
    /// integration tests, the full catalog mix for nightly runs).
    ///
    /// # Errors
    ///
    /// Propagates validation, slicing, and execution failures.
    pub fn build_with_mix(
        &self,
        profile: Profile,
        base_seed: u64,
        mix: ProcessMix,
    ) -> Result<TrajectorySet, ScenarioError> {
        let (benign, malicious) = self.programs(profile)?;
        let benign_cfg = self.machine.config();
        let mut plans = Vec::new();
        plans.push(RunPlan {
            role: RunRole::Reference,
            program: benign.clone(),
            config: benign_cfg.clone(),
        });
        for i in 0..mix.train {
            plans.push(RunPlan {
                role: RunRole::Train(i),
                program: benign.clone(),
                config: benign_cfg.clone(),
            });
        }
        for i in 0..mix.test_benign {
            plans.push(RunPlan {
                role: RunRole::TestBenign(i),
                program: benign.clone(),
                config: benign_cfg.clone(),
            });
        }
        if let (Some(gen), Some(program)) = (&self.attack, malicious) {
            let config = match gen {
                AttackGen::Gcode(_) => benign_cfg.clone(),
                AttackGen::Firmware(fw) => benign_cfg.clone().with_firmware_attack(*fw),
            };
            let name = gen.name();
            for i in 0..mix.malicious_per_attack {
                plans.push(RunPlan {
                    role: RunRole::Malicious {
                        attack: name.clone(),
                        index: i,
                    },
                    program: program.clone(),
                    config: config.clone(),
                });
            }
        }
        let set = TrajectorySet::execute_plans(self.spec(profile, base_seed), benign_cfg, plans)?;
        Ok(match &self.stressor {
            Some(s) => set.with_stressor(*s),
            None => set,
        })
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}×{} {}",
            self.name,
            self.family,
            self.machine,
            self.part,
            self.attack
                .as_ref()
                .map_or_else(|| "benign".to_string(), |a| a.name()),
        )
    }
}
