//! # am-scenarios — the living attack & scenario zoo
//!
//! ROADMAP item 4: every new threat lands as a *data row* — attack
//! generator × part geometry × printer kinematics — that the grid
//! engine, fleet simulator, and CI scorecard consume uniformly.
//!
//! A [`Scenario`] declares what runs (machine, part, attack generator,
//! optional benign-labeled interference) and what quality it must hold
//! ([`Floors`]). [`ScenarioRegistry::standard`] is the committed zoo:
//! the paper's Table I anchors plus four new families —
//!
//! - **firmware**: timing skew, layer skip, feedrate override applied
//!   inside the executing firmware, leaving the G-code byte-identical
//!   to benign ("Engineering Attack Vectors…", PAPERS.md);
//! - **thermal**: hotend/bed setpoint drift visible mainly through the
//!   power channel;
//! - **stressor**: an IP-exfiltration probe's leak-back overlaid on
//!   *benign-labeled* test runs ("Decoding Intellectual Property"), so a
//!   detector that merely notices extra signal fails the false-alarm
//!   gate;
//! - **kinematics**: a CoreXY frame and non-gear geometries (cube,
//!   L-bracket).
//!
//! The `scenario_scorecard` example evaluates every row across all
//! seven IDSs plus the fused nsync lane and emits `BENCH_scenarios.json`;
//! the CI scenario-matrix job gates it against each row's floors.
//!
//! ```
//! use am_dataset::Profile;
//! use am_scenarios::ScenarioRegistry;
//!
//! let reg = ScenarioRegistry::standard();
//! let row = reg.get("fw-um3-clock").expect("registered");
//! let set = row.build(Profile::Small, 0x5EED).expect("gridable");
//! assert!(set.runs.len() > 10);
//! ```

pub mod error;
pub mod registry;
pub mod scenario;

pub use error::ScenarioError;
pub use registry::ScenarioRegistry;
pub use scenario::{AttackGen, Family, Floors, Machine, Part, Scenario};
