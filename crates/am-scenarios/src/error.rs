//! Typed errors for scenario construction and registration.

use am_dataset::DatasetError;
use am_gcode::GcodeError;
use std::error::Error;
use std::fmt;

/// Errors raised by scenario validation, registration, and dataset
/// materialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A scenario was declared with an empty name.
    EmptyName,
    /// Two registered scenarios share a name.
    DuplicateName(String),
    /// A recall/false-alarm floor was outside `[0, 1]`.
    InvalidFloor {
        /// The offending scenario's name.
        scenario: String,
        /// Which floor field was out of domain.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The attack generator cannot run against the declared part or
    /// machine (e.g. a re-slicing G-code attack on a non-gear part).
    UnsupportedCombination {
        /// The offending scenario's name.
        scenario: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// Slicing the scenario's part failed.
    Gcode(GcodeError),
    /// Executing or capturing the scenario's runs failed.
    Dataset(DatasetError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyName => write!(f, "scenario name must be non-empty"),
            ScenarioError::DuplicateName(name) => {
                write!(f, "duplicate scenario name {name:?}")
            }
            ScenarioError::InvalidFloor {
                scenario,
                field,
                value,
            } => write!(
                f,
                "scenario {scenario:?}: floor {field} = {value} outside [0, 1]"
            ),
            ScenarioError::UnsupportedCombination { scenario, reason } => {
                write!(f, "scenario {scenario:?}: {reason}")
            }
            ScenarioError::Gcode(e) => write!(f, "slicing failed: {e}"),
            ScenarioError::Dataset(e) => write!(f, "dataset generation failed: {e}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Gcode(e) => Some(e),
            ScenarioError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GcodeError> for ScenarioError {
    fn from(e: GcodeError) -> Self {
        ScenarioError::Gcode(e)
    }
}

impl From<DatasetError> for ScenarioError {
    fn from(e: DatasetError) -> Self {
        ScenarioError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<ScenarioError> = vec![
            ScenarioError::EmptyName,
            ScenarioError::DuplicateName("x".into()),
            ScenarioError::InvalidFloor {
                scenario: "x".into(),
                field: "min_recall",
                value: 1.5,
            },
            ScenarioError::UnsupportedCombination {
                scenario: "x".into(),
                reason: "no".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
