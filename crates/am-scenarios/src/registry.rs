//! The scenario registry: validated, uniquely-named rows the scorecard
//! and CI gate iterate uniformly.

use crate::error::ScenarioError;
use crate::scenario::{AttackGen, Family, Floors, Machine, Part, Scenario};
use am_gcode::attacks::Attack;
use am_printer::attack::FirmwareAttack;
use am_sensors::interference::Interference;
use serde::{Deserialize, Serialize};

/// A validated set of scenarios with unique names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// Builds a registry, validating every row and rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns the first row's typed [`ScenarioError`], or
    /// [`ScenarioError::DuplicateName`] when two rows collide.
    pub fn new(scenarios: Vec<Scenario>) -> Result<Self, ScenarioError> {
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            s.validate()?;
            if !seen.insert(s.name.clone()) {
                return Err(ScenarioError::DuplicateName(s.name.clone()));
            }
        }
        Ok(ScenarioRegistry { scenarios })
    }

    /// The standard zoo: the paper's baseline anchors plus the four new
    /// families (firmware, thermal, stressor, kinematics/geometry).
    ///
    /// Floors are the committed CI gate — chosen from observed scorecard
    /// rates with head-room, so a scenario can regress noticeably before
    /// the gate trips, but never silently to zero.
    pub fn standard() -> Self {
        let rows = vec![
            // ---- baseline: Table I anchors ------------------------------
            Scenario {
                name: "base-um3-void".into(),
                family: Family::Baseline,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Gcode(Attack::Void)),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            Scenario {
                name: "base-um3-speed".into(),
                family: Family::Baseline,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Gcode(Attack::SpeedScale(0.95))),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            Scenario {
                name: "base-rm3-void".into(),
                family: Family::Baseline,
                machine: Machine::Rm3,
                part: Part::Gear,
                attack: Some(AttackGen::Gcode(Attack::Void)),
                stressor: None,
                floors: Floors::new(0.75, 0.17),
            },
            // ---- firmware: G-code byte-identical to benign --------------
            Scenario {
                name: "fw-um3-clock".into(),
                family: Family::Firmware,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::TimingSkew(1.05))),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            Scenario {
                name: "fw-um3-skip".into(),
                family: Family::Firmware,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::LayerSkip(2))),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            Scenario {
                name: "fw-rm3-clock".into(),
                family: Family::Firmware,
                machine: Machine::Rm3,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::TimingSkew(1.05))),
                stressor: None,
                floors: Floors::new(0.75, 0.17),
            },
            // ---- thermal: setpoint drift, power-channel visible ---------
            Scenario {
                name: "thermal-um3-hotend".into(),
                family: Family::Thermal,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::TempOffset(-25.0))),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            Scenario {
                name: "thermal-um3-bed".into(),
                family: Family::Thermal,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::BedTempOffset(15.0))),
                stressor: None,
                floors: Floors::new(0.75, 0.25),
            },
            // ---- stressor: benign-labeled exfiltration probe ------------
            Scenario {
                name: "stress-um3-exfil".into(),
                family: Family::Stressor,
                machine: Machine::Um3,
                part: Part::Gear,
                attack: None,
                stressor: Some(Interference::exfil_probe(0xE71F)),
                floors: Floors::benign_only(0.42),
            },
            // ---- kinematics & geometry ----------------------------------
            Scenario {
                name: "kin-corexy-speed".into(),
                family: Family::Kinematics,
                machine: Machine::CoreXy,
                part: Part::Gear,
                attack: Some(AttackGen::Gcode(Attack::SpeedScale(0.95))),
                stressor: None,
                floors: Floors::new(0.75, 0.17),
            },
            Scenario {
                name: "kin-corexy-clock".into(),
                family: Family::Kinematics,
                machine: Machine::CoreXy,
                part: Part::Gear,
                attack: Some(AttackGen::Firmware(FirmwareAttack::TimingSkew(1.05))),
                stressor: None,
                floors: Floors::new(0.75, 0.17),
            },
            Scenario {
                name: "geom-um3-bracket-speed".into(),
                family: Family::Kinematics,
                machine: Machine::Um3,
                part: Part::Bracket,
                attack: Some(AttackGen::Gcode(Attack::SpeedScale(0.95))),
                stressor: None,
                floors: Floors::new(0.75, 0.17),
            },
            Scenario {
                name: "geom-um3-cube-skip".into(),
                family: Family::Kinematics,
                machine: Machine::Um3,
                part: Part::Cube,
                attack: Some(AttackGen::Firmware(FirmwareAttack::LayerSkip(2))),
                stressor: None,
                floors: Floors::new(0.75, 0.10),
            },
        ];
        Self::new(rows).expect("the standard zoo is statically valid")
    }

    /// The quick subset CI runs per-PR: one row per family, preferring
    /// the cheapest representative. The nightly job runs the full zoo.
    pub fn quick_subset(&self) -> Vec<&Scenario> {
        let mut seen = std::collections::HashSet::new();
        self.scenarios
            .iter()
            .filter(|s| seen.insert(s.family))
            .collect()
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Looks up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when no scenarios are registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl<'a> IntoIterator for &'a ScenarioRegistry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_zoo_shape() {
        let reg = ScenarioRegistry::standard();
        assert!(reg.len() >= 12, "zoo has {} rows", reg.len());
        let families: std::collections::HashSet<Family> = reg.iter().map(|s| s.family).collect();
        for f in [
            Family::Baseline,
            Family::Firmware,
            Family::Thermal,
            Family::Stressor,
            Family::Kinematics,
        ] {
            assert!(families.contains(&f), "missing family {f}");
        }
        // Quick subset: exactly one row per family.
        assert_eq!(reg.quick_subset().len(), families.len());
    }

    #[test]
    fn duplicate_names_rejected() {
        let reg = ScenarioRegistry::standard();
        let mut rows: Vec<Scenario> = reg.iter().cloned().collect();
        rows.push(rows[0].clone());
        match ScenarioRegistry::new(rows) {
            Err(ScenarioError::DuplicateName(n)) => assert_eq!(n, "base-um3-void"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_rejected_with_typed_errors() {
        let mut s = ScenarioRegistry::standard()
            .get("base-um3-void")
            .cloned()
            .unwrap();
        s.name = "  ".into();
        assert!(matches!(s.validate(), Err(ScenarioError::EmptyName)));

        let mut s = ScenarioRegistry::standard()
            .get("base-um3-void")
            .cloned()
            .unwrap();
        s.floors.min_recall = 1.5;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::InvalidFloor {
                field: "min_recall",
                ..
            })
        ));

        // A re-slicing G-code attack cannot target the cube.
        let mut s = ScenarioRegistry::standard()
            .get("base-um3-void")
            .cloned()
            .unwrap();
        s.part = Part::Cube;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnsupportedCombination { .. })
        ));

        // LayerSkip(1) would drop every layer.
        let mut s = ScenarioRegistry::standard()
            .get("fw-um3-skip")
            .cloned()
            .unwrap();
        s.attack = Some(AttackGen::Firmware(FirmwareAttack::LayerSkip(1)));
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnsupportedCombination { .. })
        ));
    }

    #[test]
    fn lookup_and_iteration() {
        let reg = ScenarioRegistry::standard();
        assert!(reg.get("fw-um3-clock").is_some());
        assert!(reg.get("no-such-row").is_none());
        assert!(!reg.is_empty());
        assert_eq!(reg.iter().count(), reg.len());
        assert_eq!((&reg).into_iter().count(), reg.len());
    }
}
