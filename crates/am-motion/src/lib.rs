//! Motion-planning substrate: how a G-code path becomes physical motion.
//!
//! The paper's core observation (§II-A) is that "G-code instructions do not
//! specify timing. An AM system has freedom in determining the acceleration
//! for any given G-code instruction" — i.e. the *planner* is where the
//! nominal timing of a print comes from, and the firmware's noisy execution
//! of the plan is where *time noise* enters. This crate provides the
//! deterministic half:
//!
//! - [`types`]: vectors and per-machine motion limits,
//! - [`kinematics`]: Cartesian (Ultimaker 3) and linear-Delta (Rostock Max
//!   V3) kinematics, mapping tool positions to joint/carriage positions —
//!   the side channels (motor sounds, magnetic fields) are driven by the
//!   *joints*, not the tool,
//! - [`profile`]: trapezoidal velocity profiles,
//! - [`planner`]: a look-ahead planner with Grbl-style junction-deviation
//!   cornering and reverse/forward velocity passes,
//! - [`segment`]: planned segments that can be sampled at any time `t` for
//!   position / velocity / acceleration / extrusion rate.

pub mod kinematics;
pub mod planner;
pub mod profile;
pub mod segment;
pub mod types;

pub use kinematics::Kinematics;
pub use planner::{plan_moves, PlannerMove};
pub use segment::{MotionState, Segment};
pub use types::{MachineLimits, Vec3};
