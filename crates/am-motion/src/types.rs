//! Basic motion types: 3-vectors and machine limits.

use serde::{Deserialize, Serialize};

/// A 3-D vector in millimetres (or mm/s, mm/s² — context-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Unit vector; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self * (1.0 / n))
        }
    }

    /// Linear interpolation: `self + t (other - self)`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

/// Motion limits of a machine (what the firmware's planner enforces).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineLimits {
    /// Maximum tool velocity (mm/s). Feedrates above this are clamped.
    pub max_velocity: f64,
    /// Acceleration used for all moves (mm/s²).
    pub acceleration: f64,
    /// Grbl-style junction deviation (mm); larger = faster cornering.
    pub junction_deviation: f64,
    /// Floor on junction speed (mm/s) so chained tiny segments keep moving.
    pub min_junction_speed: f64,
}

impl MachineLimits {
    /// Ultimaker 3-ish defaults (Cartesian desktop printer).
    pub fn ultimaker3() -> Self {
        MachineLimits {
            max_velocity: 150.0,
            acceleration: 3000.0,
            junction_deviation: 0.05,
            min_junction_speed: 1.0,
        }
    }

    /// Rostock Max V3-ish defaults (Delta printers run faster effectors
    /// with gentler cornering).
    pub fn rostock_max_v3() -> Self {
        MachineLimits {
            max_velocity: 200.0,
            acceleration: 2500.0,
            junction_deviation: 0.04,
            min_junction_speed: 1.0,
        }
    }

    /// `true` if all limits are finite and positive.
    pub fn is_valid(&self) -> bool {
        [
            self.max_velocity,
            self.acceleration,
            self.junction_deviation,
            self.min_junction_speed,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -2.0, 0.0);
        assert_eq!(a + b, Vec3::new(5.0, 0.0, 3.0));
        assert_eq!(a - b, Vec3::new(-3.0, 4.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let u = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(u.z, 1.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(3.0, 5.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 3.0, 0.0));
    }

    #[test]
    fn limit_presets_valid() {
        assert!(MachineLimits::ultimaker3().is_valid());
        assert!(MachineLimits::rostock_max_v3().is_valid());
        let mut bad = MachineLimits::ultimaker3();
        bad.acceleration = 0.0;
        assert!(!bad.is_valid());
    }
}
