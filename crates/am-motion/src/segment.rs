//! Planned motion segments, sampleable at any time.

use crate::profile::TrapezoidProfile;
use crate::types::Vec3;
use serde::{Deserialize, Serialize};

/// One planned straight-line move with its velocity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start tool position (mm).
    pub from: Vec3,
    /// End tool position (mm).
    pub to: Vec3,
    /// Extruder position at the start (mm of filament).
    pub e_from: f64,
    /// Extruder position at the end (mm of filament).
    pub e_to: f64,
    /// `true` for non-extruding travel moves.
    pub travel: bool,
    /// The velocity profile along the path.
    pub profile: TrapezoidProfile,
}

/// Instantaneous kinematic state of the tool.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MotionState {
    /// Tool position (mm).
    pub position: Vec3,
    /// Tool velocity (mm/s).
    pub velocity: Vec3,
    /// Tool acceleration (mm/s², tangential component).
    pub acceleration: Vec3,
    /// Extruder feed rate (mm of filament per second).
    pub extrusion_rate: f64,
}

impl Segment {
    /// Duration of the segment (s).
    pub fn duration(&self) -> f64 {
        self.profile.duration()
    }

    /// Path length (mm).
    pub fn length(&self) -> f64 {
        self.profile.length
    }

    /// Samples the tool state `t` seconds after the segment began
    /// (clamped to the segment's ends).
    pub fn state_at(&self, t: f64) -> MotionState {
        let pt = self.profile.at(t);
        let dir = (self.to - self.from).normalized().unwrap_or(Vec3::ZERO);
        let frac = if self.profile.length > 0.0 {
            pt.distance / self.profile.length
        } else {
            1.0
        };
        let e_rate = if self.profile.length > 0.0 {
            (self.e_to - self.e_from) / self.profile.length * pt.speed
        } else {
            0.0
        };
        MotionState {
            position: self.from.lerp(self.to, frac),
            velocity: dir * pt.speed,
            acceleration: dir * pt.accel,
            extrusion_rate: e_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment {
            from: Vec3::new(0.0, 0.0, 1.0),
            to: Vec3::new(30.0, 40.0, 1.0), // length 50
            e_from: 0.0,
            e_to: 5.0,
            travel: false,
            profile: TrapezoidProfile::plan(50.0, 0.0, 25.0, 0.0, 1000.0),
        }
    }

    #[test]
    fn endpoints_match() {
        let s = seg();
        let start = s.state_at(0.0);
        assert_eq!(start.position, s.from);
        let end = s.state_at(s.duration() + 1.0);
        assert!((end.position.x - 30.0).abs() < 1e-9);
        assert!((end.position.y - 40.0).abs() < 1e-9);
        assert!(end.velocity.norm() < 1e-9);
    }

    #[test]
    fn velocity_points_along_path() {
        let s = seg();
        let mid = s.state_at(s.duration() / 2.0);
        let dir = mid.velocity.normalized().unwrap();
        assert!((dir.x - 0.6).abs() < 1e-9);
        assert!((dir.y - 0.8).abs() < 1e-9);
        assert!((mid.velocity.norm() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn extrusion_rate_proportional_to_speed() {
        let s = seg();
        let mid = s.state_at(s.duration() / 2.0);
        // e per mm = 5/50 = 0.1; at 25 mm/s -> 2.5 mm/s filament.
        assert!((mid.extrusion_rate - 2.5).abs() < 1e-9);
        let stopped = s.state_at(0.0);
        assert!(stopped.extrusion_rate.abs() < 1e-9);
    }

    #[test]
    fn degenerate_zero_length_segment() {
        let s = Segment {
            from: Vec3::ZERO,
            to: Vec3::ZERO,
            e_from: 0.0,
            e_to: 0.0,
            travel: true,
            profile: TrapezoidProfile::plan(0.0, 0.0, 10.0, 0.0, 100.0),
        };
        let st = s.state_at(0.0);
        assert_eq!(st.position, Vec3::ZERO);
        assert_eq!(st.extrusion_rate, 0.0);
        assert_eq!(s.duration(), 0.0);
    }
}
