//! Trapezoidal velocity profiles.
//!
//! Every planned move accelerates at a constant rate to a cruise velocity,
//! cruises, and decelerates — or, when the move is too short to reach
//! cruise, follows a triangular profile. The profile is the *nominal*
//! timing of a move; `am-printer` perturbs it with time noise.

use serde::{Deserialize, Serialize};

/// A trapezoidal (or degenerate triangular) velocity profile over a path of
/// fixed length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrapezoidProfile {
    /// Entry velocity (mm/s).
    pub v_entry: f64,
    /// Cruise velocity actually reached (mm/s).
    pub v_cruise: f64,
    /// Exit velocity (mm/s).
    pub v_exit: f64,
    /// Acceleration magnitude (mm/s²).
    pub accel: f64,
    /// Path length (mm).
    pub length: f64,
    t_accel: f64,
    t_cruise: f64,
    t_decel: f64,
    d_accel: f64,
    d_cruise: f64,
}

/// Kinematic state along the profile at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfilePoint {
    /// Distance travelled along the path (mm).
    pub distance: f64,
    /// Scalar speed (mm/s).
    pub speed: f64,
    /// Signed tangential acceleration (mm/s²).
    pub accel: f64,
}

impl TrapezoidProfile {
    /// Plans a profile over `length` mm with the given entry/exit/nominal
    /// velocities and acceleration.
    ///
    /// The caller (the planner's forward/reverse passes) must already have
    /// ensured `v_entry` and `v_exit` are reachable from each other within
    /// `length`; this constructor additionally clamps the cruise velocity
    /// to what the distance allows (triangular profile).
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if arguments are negative or non-finite —
    /// the planner controls all inputs.
    pub fn plan(length: f64, v_entry: f64, v_nominal: f64, v_exit: f64, accel: f64) -> Self {
        debug_assert!(length >= 0.0 && length.is_finite());
        debug_assert!(v_entry >= 0.0 && v_nominal > 0.0 && v_exit >= 0.0);
        debug_assert!(accel > 0.0);
        if length <= 1e-12 {
            return TrapezoidProfile {
                v_entry,
                v_cruise: v_entry.max(v_exit),
                v_exit,
                accel,
                length: 0.0,
                t_accel: 0.0,
                t_cruise: 0.0,
                t_decel: 0.0,
                d_accel: 0.0,
                d_cruise: 0.0,
            };
        }
        // Highest velocity reachable given entry/exit constraints:
        // accelerate from v_entry and decelerate to v_exit within length.
        // d_acc + d_dec <= length with d = (v² - v0²)/(2a).
        let v_peak_sq = (2.0 * accel * length + v_entry * v_entry + v_exit * v_exit) / 2.0;
        let v_cruise = v_nominal
            .min(v_peak_sq.max(0.0).sqrt())
            .max(v_entry.max(v_exit));
        let d_accel = ((v_cruise * v_cruise - v_entry * v_entry) / (2.0 * accel)).max(0.0);
        let d_decel = ((v_cruise * v_cruise - v_exit * v_exit) / (2.0 * accel)).max(0.0);
        let d_cruise = (length - d_accel - d_decel).max(0.0);
        let t_accel = (v_cruise - v_entry) / accel;
        let t_decel = (v_cruise - v_exit) / accel;
        let t_cruise = if v_cruise > 0.0 {
            d_cruise / v_cruise
        } else {
            0.0
        };
        TrapezoidProfile {
            v_entry,
            v_cruise,
            v_exit,
            accel,
            length,
            t_accel,
            t_cruise,
            t_decel,
            d_accel,
            d_cruise,
        }
    }

    /// Total duration (s).
    pub fn duration(&self) -> f64 {
        self.t_accel + self.t_cruise + self.t_decel
    }

    /// Samples the profile at time `t` since the move began. Clamped to
    /// the endpoints outside `[0, duration]`.
    pub fn at(&self, t: f64) -> ProfilePoint {
        if t <= 0.0 {
            return ProfilePoint {
                distance: 0.0,
                speed: self.v_entry,
                accel: if self.t_accel > 0.0 { self.accel } else { 0.0 },
            };
        }
        if t < self.t_accel {
            return ProfilePoint {
                distance: self.v_entry * t + 0.5 * self.accel * t * t,
                speed: self.v_entry + self.accel * t,
                accel: self.accel,
            };
        }
        let t2 = t - self.t_accel;
        if t2 < self.t_cruise {
            return ProfilePoint {
                distance: self.d_accel + self.v_cruise * t2,
                speed: self.v_cruise,
                accel: 0.0,
            };
        }
        let t3 = t2 - self.t_cruise;
        if t3 < self.t_decel {
            return ProfilePoint {
                distance: self.d_accel + self.d_cruise + self.v_cruise * t3
                    - 0.5 * self.accel * t3 * t3,
                speed: self.v_cruise - self.accel * t3,
                accel: -self.accel,
            };
        }
        ProfilePoint {
            distance: self.length,
            speed: self.v_exit,
            accel: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_trapezoid_phases() {
        // 0 -> 10 mm/s cruise -> 0 over a long move.
        let p = TrapezoidProfile::plan(100.0, 0.0, 10.0, 0.0, 50.0);
        assert!((p.v_cruise - 10.0).abs() < 1e-9);
        assert!(p.t_cruise > 0.0);
        // Accel time = 10/50 = 0.2 s, distance 1 mm each side, cruise 98 mm.
        assert!((p.t_accel - 0.2).abs() < 1e-9);
        assert!((p.duration() - (0.2 + 9.8 + 0.2)).abs() < 1e-9);
        // Midpoint of cruise.
        let mid = p.at(p.duration() / 2.0);
        assert!((mid.speed - 10.0).abs() < 1e-9);
        assert_eq!(mid.accel, 0.0);
    }

    #[test]
    fn triangle_profile_when_too_short() {
        // 2 mm at accel 50 can only reach sqrt(2*50*1) = 10 mm/s at midpoint
        // if nominal were higher.
        let p = TrapezoidProfile::plan(2.0, 0.0, 100.0, 0.0, 50.0);
        assert!(p.v_cruise < 100.0);
        assert!((p.v_cruise - (50.0f64 * 2.0).sqrt()).abs() < 1e-9);
        assert!(p.t_cruise < 1e-9);
        // End state correct.
        let end = p.at(p.duration());
        assert!((end.distance - 2.0).abs() < 1e-9);
        assert!(end.speed.abs() < 1e-9);
    }

    #[test]
    fn nonzero_entry_exit() {
        let p = TrapezoidProfile::plan(10.0, 5.0, 20.0, 8.0, 100.0);
        assert_eq!(p.at(0.0).speed, 5.0);
        let end = p.at(p.duration() + 1.0);
        assert!((end.speed - 8.0).abs() < 1e-9);
        assert!((end.distance - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_is_instant() {
        let p = TrapezoidProfile::plan(0.0, 3.0, 10.0, 4.0, 100.0);
        assert_eq!(p.duration(), 0.0);
        assert_eq!(p.at(0.5).distance, 0.0);
    }

    #[test]
    fn distance_is_monotone_and_continuous() {
        let p = TrapezoidProfile::plan(30.0, 2.0, 25.0, 3.0, 500.0);
        let mut last = ProfilePoint::default();
        let steps = 1000;
        for i in 0..=steps {
            let t = p.duration() * i as f64 / steps as f64;
            let pt = p.at(t);
            assert!(pt.distance >= last.distance - 1e-9);
            // Continuity: adjacent samples close.
            if i > 0 {
                assert!((pt.distance - last.distance) < 25.0 * p.duration() / steps as f64 + 1e-6);
            }
            last = pt;
        }
        assert!((last.distance - 30.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_profile_reaches_length_and_exit_speed(
            length in 0.01f64..200.0,
            v_entry in 0.0f64..30.0,
            v_nom in 1.0f64..150.0,
            v_exit in 0.0f64..30.0,
            accel in 100.0f64..5000.0,
        ) {
            // Entry/exit must be mutually reachable; the planner guarantees
            // this, here we clamp like the planner would.
            let v_entry = v_entry.min(v_nom);
            let v_exit = v_exit.min(v_nom);
            let max_dv = (2.0 * accel * length).sqrt();
            let v_exit = v_exit.min((v_entry * v_entry + max_dv * max_dv).sqrt());
            let v_entry2 = v_entry.min((v_exit * v_exit + 2.0 * accel * length).sqrt());
            let p = TrapezoidProfile::plan(length, v_entry2, v_nom, v_exit, accel);
            let end = p.at(p.duration());
            prop_assert!((end.distance - length).abs() < 1e-6 * (1.0 + length));
            prop_assert!((end.speed - v_exit).abs() < 1e-6 * (1.0 + v_exit));
            prop_assert!(p.v_cruise <= v_nom.max(v_entry2.max(v_exit)) + 1e-9);
            prop_assert!(p.duration().is_finite() && p.duration() > 0.0);
        }

        #[test]
        fn prop_speed_never_exceeds_cruise(
            length in 1.0f64..100.0,
            accel in 100.0f64..3000.0,
        ) {
            let p = TrapezoidProfile::plan(length, 0.0, 40.0, 0.0, accel);
            for i in 0..=100 {
                let t = p.duration() * i as f64 / 100.0;
                prop_assert!(p.at(t).speed <= p.v_cruise + 1e-9);
            }
        }
    }
}
