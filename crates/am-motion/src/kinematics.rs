//! Machine kinematics: mapping tool (Cartesian) positions to joint /
//! carriage positions.
//!
//! Why the IDS substrate needs this: the physical side channels come from
//! the **motors** — stepper tones in the audio channel, coil fields in the
//! magnetic channel — and on a Delta machine like the Rostock Max V3 the
//! three tower motors move in a very different pattern from the effector.
//! The sensor models in `am-sensors` therefore consume *joint* velocities,
//! which this module computes.

use crate::types::Vec3;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error for unreachable positions (outside a Delta's work envelope).
#[derive(Debug, Clone, PartialEq)]
pub struct UnreachableError {
    /// The offending tool position.
    pub position: Vec3,
}

impl fmt::Display for UnreachableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "position ({}, {}, {}) is outside the machine's work envelope",
            self.position.x, self.position.y, self.position.z
        )
    }
}

impl Error for UnreachableError {}

/// Supported machine kinematics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Kinematics {
    /// Cartesian gantry (Ultimaker 3): joints are the X, Y, Z axes
    /// directly.
    Cartesian,
    /// CoreXY: A = X + Y, B = X - Y, plus a plain Z. Included for
    /// ablation/extension experiments.
    CoreXy,
    /// Linear Delta (Rostock Max V3): three vertical towers at 120°
    /// carrying carriages linked to the effector by fixed-length arms.
    Delta {
        /// Horizontal distance from machine centre to each tower (mm).
        tower_radius: f64,
        /// Arm (rod) length (mm).
        arm_length: f64,
    },
}

impl Kinematics {
    /// Rostock Max V3-like Delta geometry.
    pub fn rostock_delta() -> Self {
        Kinematics::Delta {
            tower_radius: 200.0,
            arm_length: 290.0,
        }
    }

    /// Tower/base angles for Delta machines (radians): towers at 90°,
    /// 210°, 330°.
    fn tower_angles() -> [f64; 3] {
        [90f64.to_radians(), 210f64.to_radians(), 330f64.to_radians()]
    }

    /// Maps a tool position to the three joint positions (mm).
    ///
    /// - Cartesian: `[x, y, z]`
    /// - CoreXY: `[x + y, x - y, z]`
    /// - Delta: carriage heights on the three towers.
    ///
    /// # Errors
    ///
    /// Returns [`UnreachableError`] if a Delta position is outside the work
    /// envelope (arm shorter than the horizontal distance to a tower).
    pub fn joint_positions(&self, p: Vec3) -> Result<[f64; 3], UnreachableError> {
        match *self {
            Kinematics::Cartesian => Ok([p.x, p.y, p.z]),
            Kinematics::CoreXy => Ok([p.x + p.y, p.x - p.y, p.z]),
            Kinematics::Delta {
                tower_radius,
                arm_length,
            } => {
                let mut out = [0.0; 3];
                for (i, angle) in Self::tower_angles().iter().enumerate() {
                    let tx = tower_radius * angle.cos();
                    let ty = tower_radius * angle.sin();
                    let dx = tx - p.x;
                    let dy = ty - p.y;
                    let horiz_sq = dx * dx + dy * dy;
                    let arm_sq = arm_length * arm_length;
                    if horiz_sq >= arm_sq {
                        return Err(UnreachableError { position: p });
                    }
                    out[i] = p.z + (arm_sq - horiz_sq).sqrt();
                }
                Ok(out)
            }
        }
    }

    /// Joint velocities at a given tool position and velocity, via a
    /// central finite difference of [`Kinematics::joint_positions`] (exact
    /// for the linear kinematics, accurate for Delta at printing speeds).
    ///
    /// # Errors
    ///
    /// Returns [`UnreachableError`] as for [`Kinematics::joint_positions`].
    pub fn joint_velocities(
        &self,
        position: Vec3,
        velocity: Vec3,
    ) -> Result<[f64; 3], UnreachableError> {
        const H: f64 = 1e-4; // seconds
        let ahead = position + velocity * H;
        let behind = position + velocity * (-H);
        let ja = self.joint_positions(ahead)?;
        let jb = self.joint_positions(behind)?;
        Ok([
            (ja[0] - jb[0]) / (2.0 * H),
            (ja[1] - jb[1]) / (2.0 * H),
            (ja[2] - jb[2]) / (2.0 * H),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cartesian_is_identity() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(
            Kinematics::Cartesian.joint_positions(p).unwrap(),
            [1.0, -2.0, 3.0]
        );
        let v = Kinematics::Cartesian
            .joint_velocities(p, Vec3::new(4.0, 5.0, 6.0))
            .unwrap();
        assert!((v[0] - 4.0).abs() < 1e-6);
        assert!((v[1] - 5.0).abs() < 1e-6);
        assert!((v[2] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn corexy_mixing() {
        let j = Kinematics::CoreXy
            .joint_positions(Vec3::new(2.0, 1.0, 0.5))
            .unwrap();
        assert_eq!(j, [3.0, 1.0, 0.5]);
    }

    #[test]
    fn delta_center_symmetric() {
        let k = Kinematics::rostock_delta();
        let j = k.joint_positions(Vec3::new(0.0, 0.0, 10.0)).unwrap();
        assert!((j[0] - j[1]).abs() < 1e-9);
        assert!((j[1] - j[2]).abs() < 1e-9);
        // Carriage above the effector by sqrt(L^2 - R^2).
        let expect = 10.0 + (290.0f64.powi(2) - 200.0f64.powi(2)).sqrt();
        assert!((j[0] - expect).abs() < 1e-9);
    }

    #[test]
    fn delta_moving_toward_a_tower_lowers_its_carriage_height_difference() {
        let k = Kinematics::rostock_delta();
        // Tower 0 is at angle 90° = (0, R). Moving toward it shortens the
        // horizontal distance, so carriage 0 rises less above z... i.e.
        // joint 0 decreases relative to the centered pose? No: smaller
        // horizontal distance -> larger sqrt term -> carriage higher.
        let center = k.joint_positions(Vec3::new(0.0, 0.0, 5.0)).unwrap();
        let toward0 = k.joint_positions(Vec3::new(0.0, 50.0, 5.0)).unwrap();
        assert!(toward0[0] > center[0]);
        // And the far towers' carriages drop.
        assert!(toward0[1] < center[1]);
        assert!(toward0[2] < center[2]);
    }

    #[test]
    fn delta_unreachable_positions_error() {
        let k = Kinematics::Delta {
            tower_radius: 100.0,
            arm_length: 120.0,
        };
        // 70 mm from center toward the opposite side of tower 0 puts the
        // horizontal distance to tower 0 at 170 > 120.
        let err = k.joint_positions(Vec3::new(0.0, -70.0, 0.0)).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn delta_pure_z_motion_moves_all_towers_equally() {
        let k = Kinematics::rostock_delta();
        let v = k
            .joint_velocities(Vec3::new(10.0, -20.0, 30.0), Vec3::new(0.0, 0.0, 7.0))
            .unwrap();
        for vi in v {
            assert!((vi - 7.0).abs() < 1e-6);
        }
    }

    proptest! {
        #[test]
        fn prop_delta_joints_consistent_with_arm_length(
            x in -60.0f64..60.0,
            y in -60.0f64..60.0,
            z in 0.0f64..100.0,
        ) {
            let (r, l) = (200.0, 290.0);
            let k = Kinematics::Delta { tower_radius: r, arm_length: l };
            let p = Vec3::new(x, y, z);
            let joints = k.joint_positions(p).unwrap();
            for (i, angle) in Kinematics::tower_angles().iter().enumerate() {
                let tower = Vec3::new(r * angle.cos(), r * angle.sin(), joints[i]);
                // The arm connects carriage to effector: length must be L.
                let d = (tower - p).norm();
                prop_assert!((d - l).abs() < 1e-9, "arm {} length {}", i, d);
            }
        }

        #[test]
        fn prop_corexy_velocities_linear(
            vx in -50.0f64..50.0,
            vy in -50.0f64..50.0,
        ) {
            let v = Kinematics::CoreXy
                .joint_velocities(Vec3::new(10.0, 10.0, 1.0), Vec3::new(vx, vy, 0.0))
                .unwrap();
            prop_assert!((v[0] - (vx + vy)).abs() < 1e-5);
            prop_assert!((v[1] - (vx - vy)).abs() < 1e-5);
            prop_assert!(v[2].abs() < 1e-5);
        }
    }
}
