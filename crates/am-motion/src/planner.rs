//! Look-ahead motion planner.
//!
//! Mirrors the structure of real FDM firmware (Marlin/Grbl):
//!
//! 1. nominal velocity per move = min(feedrate, machine max),
//! 2. junction velocities between consecutive moves from the Grbl
//!    junction-deviation model (sharper corners → slower),
//! 3. a reverse pass ensuring every move can decelerate to its exit
//!    velocity, and a forward pass ensuring it can accelerate from its
//!    entry velocity,
//! 4. a trapezoid per move.
//!
//! The resulting [`Segment`] list is fully deterministic — identical
//! G-code always yields the identical nominal plan. Time noise is added
//! *on top* of this plan by `am-printer`, exactly as the paper describes
//! (the planner determines the acceleration, the execution adds random
//! variation).

use crate::profile::TrapezoidProfile;
use crate::segment::Segment;
use crate::types::{MachineLimits, Vec3};
use serde::{Deserialize, Serialize};

/// One move handed to the planner (already resolved to absolute targets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerMove {
    /// Absolute target position (mm).
    pub target: Vec3,
    /// Filament to extrude over this move (mm; 0 for travel).
    pub e_delta: f64,
    /// Requested feedrate (mm/s).
    pub feedrate: f64,
    /// `true` for travel (non-extruding) moves.
    pub travel: bool,
}

/// Plans a chain of moves starting at rest from `start`, ending at rest.
///
/// Zero-length moves are dropped (they carry no motion; our slicer never
/// emits pure-extrusion moves).
///
/// # Panics
///
/// Panics if `limits` is invalid (`MachineLimits::is_valid`) or any
/// feedrate is non-positive — these are programmer errors in machine
/// profiles, not runtime conditions.
pub fn plan_moves(start: Vec3, moves: &[PlannerMove], limits: &MachineLimits) -> Vec<Segment> {
    assert!(limits.is_valid(), "invalid machine limits: {limits:?}");
    // Resolve geometry, dropping zero-length moves.
    struct Work {
        from: Vec3,
        to: Vec3,
        dir: Vec3,
        length: f64,
        v_nominal: f64,
        e_delta: f64,
        travel: bool,
    }
    let mut work: Vec<Work> = Vec::with_capacity(moves.len());
    let mut pos = start;
    for m in moves {
        assert!(
            m.feedrate.is_finite() && m.feedrate > 0.0,
            "feedrate must be positive, got {}",
            m.feedrate
        );
        let delta = m.target - pos;
        let length = delta.norm();
        if length < 1e-9 {
            pos = m.target;
            continue;
        }
        work.push(Work {
            from: pos,
            to: m.target,
            dir: delta * (1.0 / length),
            length,
            v_nominal: m.feedrate.min(limits.max_velocity),
            e_delta: m.e_delta,
            travel: m.travel,
        });
        pos = m.target;
    }
    let n = work.len();
    if n == 0 {
        return Vec::new();
    }

    // Junction velocities: entry[i] is the speed at the junction between
    // move i-1 and move i. entry[0] = exit[n-1] = 0 (start/end at rest).
    let mut entry = vec![0.0f64; n + 1];
    for i in 1..n {
        let cos_theta = work[i - 1].dir.dot(work[i].dir).clamp(-1.0, 1.0);
        let vmax = work[i - 1].v_nominal.min(work[i].v_nominal);
        entry[i] = junction_velocity(cos_theta, limits).min(vmax);
    }

    // Reverse pass: can we decelerate from entry[i] to entry[i+1] in
    // work[i].length?
    for i in (0..n).rev() {
        let reachable =
            (entry[i + 1] * entry[i + 1] + 2.0 * limits.acceleration * work[i].length).sqrt();
        if entry[i] > reachable {
            entry[i] = reachable;
        }
    }
    // Forward pass: can we accelerate from entry[i] to entry[i+1]?
    for i in 0..n {
        let reachable = (entry[i] * entry[i] + 2.0 * limits.acceleration * work[i].length).sqrt();
        if entry[i + 1] > reachable {
            entry[i + 1] = reachable;
        }
    }

    // Trapezoids.
    let mut out = Vec::with_capacity(n);
    let mut e = 0.0;
    for (i, w) in work.iter().enumerate() {
        let profile = TrapezoidProfile::plan(
            w.length,
            entry[i],
            w.v_nominal,
            entry[i + 1],
            limits.acceleration,
        );
        let e_from = e;
        e += w.e_delta;
        out.push(Segment {
            from: w.from,
            to: w.to,
            e_from,
            e_to: e,
            travel: w.travel,
            profile,
        });
    }
    out
}

/// Grbl junction-deviation cornering model: the corner is approximated by
/// an arc of radius `r = jd · sin(θ/2) / (1 − sin(θ/2))`, and the junction
/// speed is `sqrt(a · r)`.
fn junction_velocity(cos_theta: f64, limits: &MachineLimits) -> f64 {
    // θ is the angle between the incoming and outgoing directions; a
    // straight-through junction has cos θ = 1 (no slowdown needed).
    if cos_theta > 0.999999 {
        return f64::INFINITY; // effectively "no junction limit"
    }
    if cos_theta < -0.999999 {
        return 0.0; // full reversal: stop
    }
    let sin_half = ((1.0 - cos_theta) / 2.0).sqrt();
    let radius = limits.junction_deviation * sin_half / (1.0 - sin_half);
    (limits.acceleration * radius)
        .sqrt()
        .max(limits.min_junction_speed)
}

/// Total duration of a plan (s).
pub fn plan_duration(segments: &[Segment]) -> f64 {
    segments.iter().map(Segment::duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lim() -> MachineLimits {
        MachineLimits::ultimaker3()
    }

    fn mv(x: f64, y: f64, f: f64) -> PlannerMove {
        PlannerMove {
            target: Vec3::new(x, y, 0.0),
            e_delta: 0.1,
            feedrate: f,
            travel: false,
        }
    }

    #[test]
    fn empty_and_zero_length_plans() {
        assert!(plan_moves(Vec3::ZERO, &[], &lim()).is_empty());
        let same = plan_moves(Vec3::ZERO, &[mv(0.0, 0.0, 50.0)], &lim());
        assert!(same.is_empty());
    }

    #[test]
    fn single_move_starts_and_ends_at_rest() {
        let segs = plan_moves(Vec3::ZERO, &[mv(100.0, 0.0, 50.0)], &lim());
        assert_eq!(segs.len(), 1);
        let p = &segs[0].profile;
        assert_eq!(p.v_entry, 0.0);
        assert_eq!(p.v_exit, 0.0);
        assert!((p.v_cruise - 50.0).abs() < 1e-9);
    }

    #[test]
    fn feedrate_clamped_to_machine_max() {
        let segs = plan_moves(Vec3::ZERO, &[mv(500.0, 0.0, 900.0)], &lim());
        assert!((segs[0].profile.v_cruise - lim().max_velocity).abs() < 1e-9);
    }

    #[test]
    fn straight_chain_keeps_speed_through_junction() {
        let segs = plan_moves(
            Vec3::ZERO,
            &[mv(50.0, 0.0, 60.0), mv(100.0, 0.0, 60.0)],
            &lim(),
        );
        assert_eq!(segs.len(), 2);
        // Colinear junction: exit of first == entry of second == cruise.
        assert!((segs[0].profile.v_exit - 60.0).abs() < 1e-6);
        assert!((segs[1].profile.v_entry - 60.0).abs() < 1e-6);
    }

    #[test]
    fn right_angle_junction_slows_down() {
        let segs = plan_moves(
            Vec3::ZERO,
            &[mv(50.0, 0.0, 60.0), mv(50.0, 50.0, 60.0)],
            &lim(),
        );
        let vj = segs[0].profile.v_exit;
        assert!(vj < 30.0, "junction speed {vj} should be far below cruise");
        assert!(vj >= lim().min_junction_speed - 1e-9);
        assert!((segs[1].profile.v_entry - vj).abs() < 1e-9);
    }

    #[test]
    fn reversal_stops_completely() {
        let segs = plan_moves(
            Vec3::ZERO,
            &[mv(50.0, 0.0, 60.0), mv(0.0, 0.0, 60.0)],
            &lim(),
        );
        assert!(segs[0].profile.v_exit.abs() < 1e-9);
    }

    #[test]
    fn short_segment_chain_is_reachability_consistent() {
        // Many tiny colinear segments: junction speeds must satisfy
        // v_next² <= v² + 2aL in both directions.
        let moves: Vec<PlannerMove> = (1..=20).map(|i| mv(i as f64 * 0.5, 0.0, 100.0)).collect();
        let segs = plan_moves(Vec3::ZERO, &moves, &lim());
        let a = lim().acceleration;
        for s in &segs {
            let p = &s.profile;
            assert!(
                p.v_exit * p.v_exit <= p.v_entry * p.v_entry + 2.0 * a * p.length + 1e-6,
                "forward reachability violated"
            );
            assert!(
                p.v_entry * p.v_entry <= p.v_exit * p.v_exit + 2.0 * a * p.length + 1e-6,
                "reverse reachability violated"
            );
        }
        // Ends at rest.
        assert!(segs.last().unwrap().profile.v_exit.abs() < 1e-9);
    }

    #[test]
    fn extrusion_accumulates() {
        let segs = plan_moves(
            Vec3::ZERO,
            &[mv(10.0, 0.0, 50.0), mv(20.0, 0.0, 50.0)],
            &lim(),
        );
        assert_eq!(segs[0].e_from, 0.0);
        assert!((segs[0].e_to - 0.1).abs() < 1e-12);
        assert!((segs[1].e_from - 0.1).abs() < 1e-12);
        assert!((segs[1].e_to - 0.2).abs() < 1e-12);
    }

    #[test]
    fn plan_duration_sums() {
        let segs = plan_moves(
            Vec3::ZERO,
            &[mv(30.0, 0.0, 50.0), mv(30.0, 30.0, 50.0)],
            &lim(),
        );
        let total: f64 = segs.iter().map(|s| s.duration()).sum();
        assert!((plan_duration(&segs) - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    #[should_panic(expected = "feedrate")]
    fn bad_feedrate_panics() {
        let _ = plan_moves(Vec3::ZERO, &[mv(1.0, 0.0, 0.0)], &lim());
    }

    #[test]
    fn determinism() {
        let moves: Vec<PlannerMove> = (0..50)
            .map(|i| mv((i as f64 * 7.3) % 90.0, (i as f64 * 3.1) % 90.0, 60.0))
            .collect();
        let a = plan_moves(Vec3::ZERO, &moves, &lim());
        let b = plan_moves(Vec3::ZERO, &moves, &lim());
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_plan_invariants(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..24),
            feed in 10.0f64..120.0,
        ) {
            let moves: Vec<PlannerMove> = pts
                .iter()
                .map(|&(x, y)| mv(x, y, feed))
                .collect();
            let segs = plan_moves(Vec3::ZERO, &moves, &lim());
            let a = lim().acceleration;
            let mut last_to = Vec3::ZERO;
            for s in &segs {
                let p = &s.profile;
                // Segments connect.
                prop_assert!((s.from - last_to).norm() < 1e-9);
                last_to = s.to;
                // Velocities within limits.
                prop_assert!(p.v_cruise <= lim().max_velocity + 1e-9);
                // Reachability both ways.
                prop_assert!(p.v_exit * p.v_exit <= p.v_entry * p.v_entry + 2.0 * a * p.length + 1e-6);
                prop_assert!(p.v_entry * p.v_entry <= p.v_exit * p.v_exit + 2.0 * a * p.length + 1e-6);
                prop_assert!(p.duration().is_finite());
            }
            if let Some(last) = segs.last() {
                prop_assert!(last.profile.v_exit.abs() < 1e-9);
            }
            if let Some(first) = segs.first() {
                prop_assert!(first.profile.v_entry.abs() < 1e-9);
            }
        }
    }
}
