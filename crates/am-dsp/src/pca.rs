//! Principal Component Analysis over signal channels.
//!
//! The Belikovetsky baseline IDS (§III, §VIII-C) compresses a spectrogram's
//! channels down to three principal components before comparing signals
//! point by point with the cosine distance. [`Pca::fit`] learns the
//! projection from a reference signal; [`Pca::transform`] applies it to any
//! signal with the same channel count — so the observed and reference
//! signals are projected into the *same* component space.

use crate::error::DspError;
use crate::linalg::{jacobi_eigen, Matrix};
use crate::signal::Signal;
use crate::stats;

/// A fitted PCA projection from `input_channels` to `components`.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `components x input_channels` projection matrix (rows = principal
    /// axes, orthonormal).
    projection: Matrix,
    /// Eigenvalues (variances) of the retained components, descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits PCA on the channels of `signal`, retaining `components` axes.
    ///
    /// Each time sample is an observation; each channel is a variable.
    ///
    /// # Errors
    ///
    /// - [`DspError::InvalidParameter`] if `components == 0` or exceeds the
    ///   channel count,
    /// - [`DspError::TooShort`] if the signal has fewer than 2 samples.
    pub fn fit(signal: &Signal, components: usize) -> Result<Self, DspError> {
        let c = signal.channels();
        if components == 0 || components > c {
            return Err(DspError::InvalidParameter(format!(
                "components must be in 1..={c}, got {components}"
            )));
        }
        if signal.len() < 2 {
            return Err(DspError::TooShort {
                needed: 2,
                got: signal.len(),
            });
        }
        let n = signal.len() as f64;
        let mean: Vec<f64> = (0..c).map(|ch| stats::mean(signal.channel(ch))).collect();
        // Covariance matrix (c x c).
        let mut cov = Matrix::zeros(c, c);
        for i in 0..c {
            let xi = signal.channel(i);
            for j in i..c {
                let xj = signal.channel(j);
                let mut acc = 0.0;
                for t in 0..signal.len() {
                    acc += (xi[t] - mean[i]) * (xj[t] - mean[j]);
                }
                let v = acc / (n - 1.0);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let eig = jacobi_eigen(&cov)?;
        let mut projection = Matrix::zeros(components, c);
        for k in 0..components {
            let row = eig.vectors.row(k);
            for j in 0..c {
                projection[(k, j)] = row[j];
            }
        }
        Ok(Pca {
            mean,
            projection,
            explained_variance: eig.values[..components].to_vec(),
        })
    }

    /// Number of retained components.
    pub fn components(&self) -> usize {
        self.projection.rows()
    }

    /// Number of input channels the projection expects.
    pub fn input_channels(&self) -> usize {
        self.projection.cols()
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Projects a signal into component space: output has
    /// `self.components()` channels and the same length/sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] if the channel count differs
    /// from the fitted input.
    pub fn transform(&self, signal: &Signal) -> Result<Signal, DspError> {
        let c = self.input_channels();
        if signal.channels() != c {
            return Err(DspError::ShapeMismatch(format!(
                "pca fitted on {c} channels, input has {}",
                signal.channels()
            )));
        }
        let k = self.components();
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; signal.len()]; k];
        for (j, m) in self.mean.iter().enumerate() {
            let ch = signal.channel(j);
            for (comp, dst) in out.iter_mut().enumerate().take(k) {
                let w = self.projection[(comp, j)];
                if w == 0.0 {
                    continue;
                }
                for t in 0..signal.len() {
                    dst[t] += w * (ch[t] - m);
                }
            }
        }
        Signal::from_channels(signal.fs(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-channel signal where channel 2 = ch0 + ch1 (rank 2).
    fn rank2_signal() -> Signal {
        let n = 256;
        Signal::from_fn(100.0, 3, n, |t, f| {
            f[0] = (2.0 * t).sin();
            f[1] = (5.3 * t).cos() * 0.5;
            f[2] = f[0] + f[1];
        })
        .unwrap()
    }

    #[test]
    fn fit_validates_parameters() {
        let s = rank2_signal();
        assert!(Pca::fit(&s, 0).is_err());
        assert!(Pca::fit(&s, 4).is_err());
        let short = Signal::zeros(10.0, 2, 1).unwrap();
        assert!(Pca::fit(&short, 1).is_err());
    }

    #[test]
    fn rank2_data_has_two_significant_components() {
        let s = rank2_signal();
        let pca = Pca::fit(&s, 3).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] > 1e-3);
        assert!(ev[1] > 1e-4);
        // Third component captures (numerically) nothing.
        assert!(ev[2].abs() < 1e-10, "ev={ev:?}");
    }

    #[test]
    fn transform_shape() {
        let s = rank2_signal();
        let pca = Pca::fit(&s, 2).unwrap();
        let t = pca.transform(&s).unwrap();
        assert_eq!(t.channels(), 2);
        assert_eq!(t.len(), s.len());
        assert_eq!(t.fs(), s.fs());
        let wrong = Signal::zeros(100.0, 2, 16).unwrap();
        assert!(pca.transform(&wrong).is_err());
    }

    #[test]
    fn components_are_decorrelated_and_variance_sorted() {
        let s = rank2_signal();
        let pca = Pca::fit(&s, 2).unwrap();
        let t = pca.transform(&s).unwrap();
        let v0 = stats::variance(t.channel(0));
        let v1 = stats::variance(t.channel(1));
        assert!(v0 >= v1);
        // Decorrelated: |pearson| ~ 0.
        let r = crate::metrics::pearson(t.channel(0), t.channel(1));
        assert!(r.abs() < 1e-6, "r={r}");
    }

    #[test]
    fn projection_preserves_total_variance_with_all_components() {
        let s = rank2_signal();
        let pca = Pca::fit(&s, 3).unwrap();
        let t = pca.transform(&s).unwrap();
        let orig: f64 = (0..3).map(|c| stats::variance(s.channel(c))).sum();
        let proj: f64 = (0..3).map(|c| stats::variance(t.channel(c))).sum();
        assert!(
            (orig - proj).abs() < 1e-8 * orig.max(1.0),
            "{orig} vs {proj}"
        );
    }

    #[test]
    fn same_projection_applies_to_other_signals() {
        // The Belikovetsky use case: fit on the reference, transform both.
        let reference = rank2_signal();
        let pca = Pca::fit(&reference, 3).unwrap();
        let observed = Signal::from_fn(100.0, 3, 256, |t, f| {
            f[0] = (2.0 * t).sin() * 1.01;
            f[1] = (5.3 * t).cos() * 0.49;
            f[2] = f[0] + f[1];
        })
        .unwrap();
        let tr = pca.transform(&reference).unwrap();
        let to = pca.transform(&observed).unwrap();
        // Nearly identical processes project onto nearly identical curves.
        let r = crate::metrics::pearson(tr.channel(0), to.channel(0));
        assert!(r > 0.999, "r={r}");
    }
}
