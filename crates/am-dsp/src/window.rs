//! Window functions.
//!
//! Table III of the paper uses Blackman–Harris and Boxcar windows for the
//! spectrograms; §VI-B uses a Gaussian window as the bias in TDEB (Fig 5).

use serde::{Deserialize, Serialize};

/// The window functions used anywhere in the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WindowKind {
    /// Rectangular window (all ones). Table III uses this for PWR.
    Boxcar,
    /// Hann window; included for completeness / ablations.
    Hann,
    /// 4-term Blackman–Harris window. Table III default.
    BlackmanHarris,
}

impl WindowKind {
    /// Samples the window at `i` of `n` points (periodic convention).
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = std::f64::consts::TAU * i as f64 / n as f64;
        match self {
            WindowKind::Boxcar => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * x.cos(),
            WindowKind::BlackmanHarris => {
                const A0: f64 = 0.35875;
                const A1: f64 = 0.48829;
                const A2: f64 = 0.14128;
                const A3: f64 = 0.01168;
                A0 - A1 * x.cos() + A2 * (2.0 * x).cos() - A3 * (3.0 * x).cos()
            }
        }
    }

    /// Generates the full window of length `n`.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }
}

impl std::fmt::Display for WindowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WindowKind::Boxcar => "boxcar",
            WindowKind::Hann => "hann",
            WindowKind::BlackmanHarris => "blackman-harris",
        };
        f.write_str(s)
    }
}

/// Gaussian bias window used by TDEB (§VI-B):
/// `w[j] = exp(-0.5 * ((j - center)/sigma)^2)` for `j = 0..len`.
///
/// The paper centers it at `j = n_ext` over a similarity array of length
/// `2 n_ext + 1`, with standard deviation `n_sigma`.
pub fn gaussian_window(len: usize, center: f64, sigma: f64) -> Vec<f64> {
    if sigma <= 0.0 {
        // Degenerate: a delta at the (rounded) center.
        let mut w = vec![0.0; len];
        let c = center.round() as isize;
        if c >= 0 && (c as usize) < len {
            w[c as usize] = 1.0;
        }
        return w;
    }
    (0..len)
        .map(|j| {
            let z = (j as f64 - center) / sigma;
            (-0.5 * z * z).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxcar_is_all_ones() {
        assert_eq!(WindowKind::Boxcar.generate(5), vec![1.0; 5]);
    }

    #[test]
    fn hann_starts_at_zero_and_is_symmetric_inside() {
        let w = WindowKind::Hann.generate(8);
        assert!(w[0].abs() < 1e-12);
        // Periodic Hann: w[i] == w[n - i] for 0 < i < n.
        for (i, v) in w.iter().enumerate().skip(1) {
            assert!((v - WindowKind::Hann.value(8 - i, 8)).abs() < 1e-12);
        }
    }

    #[test]
    fn blackman_harris_peak_is_near_one_at_center() {
        let n = 64;
        let w = WindowKind::BlackmanHarris.generate(n);
        let peak = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 1.0).abs() < 1e-2, "peak={peak}");
        // Very low values at the edges (the BH window's defining feature).
        assert!(w[0] < 1e-4);
    }

    #[test]
    fn degenerate_single_point_windows() {
        for k in [
            WindowKind::Boxcar,
            WindowKind::Hann,
            WindowKind::BlackmanHarris,
        ] {
            assert_eq!(k.generate(1), vec![1.0]);
            assert_eq!(k.generate(0), Vec::<f64>::new());
        }
    }

    #[test]
    fn gaussian_window_peaks_at_center() {
        let w = gaussian_window(21, 10.0, 3.0);
        assert!((w[10] - 1.0).abs() < 1e-12);
        assert!(w[0] < w[5] && w[5] < w[10]);
        assert!(w[20] < w[15] && w[15] < w[10]);
        // Symmetric around the center.
        for j in 0..10 {
            assert!((w[j] - w[20 - j]).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_window_zero_sigma_is_delta() {
        let w = gaussian_window(5, 2.0, 0.0);
        assert_eq!(w, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
        // Center outside the window: all zeros.
        let w = gaussian_window(3, 7.0, 0.0);
        assert_eq!(w, vec![0.0; 3]);
    }

    #[test]
    fn gaussian_ratio_controls_bias_strength() {
        // t_ext / t_sigma = 2 (paper default) -> edge weight exp(-2) ~ 0.135.
        let n_ext = 100.0;
        let w = gaussian_window(201, n_ext, n_ext / 2.0);
        assert!((w[0] - (-2.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn display_names() {
        assert_eq!(WindowKind::BlackmanHarris.to_string(), "blackman-harris");
        assert_eq!(WindowKind::Boxcar.to_string(), "boxcar");
        assert_eq!(WindowKind::Hann.to_string(), "hann");
    }
}
