//! Error type for DSP operations.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible DSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The channels passed to a constructor had different lengths.
    RaggedChannels {
        /// Length of channel 0.
        expected: usize,
        /// Index of the first offending channel.
        channel: usize,
        /// Length of the offending channel.
        actual: usize,
    },
    /// A signal was constructed or used with zero channels.
    NoChannels,
    /// A non-positive or non-finite sampling frequency was supplied.
    InvalidSampleRate(u64),
    /// A slice range was out of bounds or inverted.
    InvalidRange {
        /// Start index (inclusive).
        start: usize,
        /// End index (exclusive).
        end: usize,
        /// Length of the signal being sliced.
        len: usize,
    },
    /// Two signals that must agree in some dimension did not.
    ShapeMismatch(String),
    /// A parameter was outside its legal domain.
    InvalidParameter(String),
    /// The input is too short for the requested operation.
    TooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// An input contained a NaN or infinite sample where a finite value
    /// is required (e.g. feeding a distance metric).
    NonFinite {
        /// Channel of the first offending sample.
        channel: usize,
        /// Index of the first offending sample within that channel.
        index: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::RaggedChannels {
                expected,
                channel,
                actual,
            } => write!(
                f,
                "channel {channel} has {actual} samples but channel 0 has {expected}"
            ),
            DspError::NoChannels => write!(f, "signal must have at least one channel"),
            DspError::InvalidSampleRate(bits) => write!(
                f,
                "sampling frequency must be finite and positive (got bits {bits:#x})"
            ),
            DspError::InvalidRange { start, end, len } => {
                write!(f, "invalid slice range {start}..{end} for length {len}")
            }
            DspError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            DspError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DspError::TooShort { needed, got } => {
                write!(f, "input too short: needed {needed} samples, got {got}")
            }
            DspError::NonFinite { channel, index } => {
                write!(f, "non-finite sample at channel {channel}, index {index}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            DspError::RaggedChannels {
                expected: 4,
                channel: 1,
                actual: 3,
            },
            DspError::NoChannels,
            DspError::InvalidSampleRate(0),
            DspError::InvalidRange {
                start: 3,
                end: 1,
                len: 10,
            },
            DspError::ShapeMismatch("a vs b".into()),
            DspError::InvalidParameter("eta".into()),
            DspError::TooShort { needed: 8, got: 2 },
            DspError::NonFinite {
                channel: 0,
                index: 3,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
