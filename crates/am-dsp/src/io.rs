//! Binary persistence for [`Signal`]s.
//!
//! A deployment records reference signals once and reuses them for every
//! print (§IV "Acquisition of Reference Signals"), so signals need a
//! stable on-disk form. The format is deliberately simple and
//! self-describing:
//!
//! ```text
//! magic  "AMSG"          4 bytes
//! version u16 LE         (currently 1)
//! fs      f64 LE
//! channels u32 LE
//! len      u64 LE        samples per channel
//! data     f64 LE        channel-major, channels × len values
//! ```

use crate::error::DspError;
use crate::signal::Signal;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"AMSG";
const VERSION: u16 = 1;

/// Serializes a signal to its binary form.
pub fn to_bytes(signal: &Signal) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + 4 + 8 + signal.channels() * signal.len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_f64_le(signal.fs());
    buf.put_u32_le(signal.channels() as u32);
    buf.put_u64_le(signal.len() as u64);
    for c in 0..signal.channels() {
        for &v in signal.channel(c) {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Deserializes a signal from its binary form.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] on a bad magic/version/shape or
/// truncated input.
pub fn from_bytes(mut data: &[u8]) -> Result<Signal, DspError> {
    if data.len() < 4 + 2 + 8 + 4 + 8 {
        return Err(DspError::InvalidParameter("signal header truncated".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DspError::InvalidParameter(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(DspError::InvalidParameter(format!(
            "unsupported signal version {version}"
        )));
    }
    let fs = data.get_f64_le();
    let channels = data.get_u32_le() as usize;
    let len = data.get_u64_le() as usize;
    let expected = channels
        .checked_mul(len)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| DspError::InvalidParameter("signal shape overflows".into()))?;
    if data.remaining() < expected {
        return Err(DspError::InvalidParameter(format!(
            "signal data truncated: need {expected} bytes, have {}",
            data.remaining()
        )));
    }
    let mut chans = Vec::with_capacity(channels);
    for _ in 0..channels {
        let mut ch = Vec::with_capacity(len);
        for _ in 0..len {
            ch.push(data.get_f64_le());
        }
        chans.push(ch);
    }
    Signal::from_channels(fs, chans)
}

/// Writes a signal to any [`Write`] sink (a `&mut` reference also works).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_signal<W: Write>(signal: &Signal, mut writer: W) -> std::io::Result<()> {
    writer.write_all(&to_bytes(signal))
}

/// Reads a signal from any [`Read`] source (a `&mut` reference also
/// works).
///
/// # Errors
///
/// Propagates I/O errors; format errors surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_signal<R: Read>(mut reader: R) -> std::io::Result<Signal> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(&data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_signal() -> Signal {
        Signal::from_channels(
            48_000.0,
            vec![
                vec![0.0, 1.5, -2.25, f64::MIN_POSITIVE],
                vec![9.0, -9.0, 0.125, 1e300],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_exact() {
        let s = sample_signal();
        let bytes = to_bytes(&s);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn io_trait_roundtrip() {
        let s = sample_signal();
        let mut file = Vec::new();
        write_signal(&s, &mut file).unwrap();
        let back = read_signal(&file[..]).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let s = sample_signal();
        let mut bytes = to_bytes(&s).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
        let mut bytes = to_bytes(&s).to_vec();
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let s = sample_signal();
        let bytes = to_bytes(&s);
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn io_error_kind_is_invalid_data() {
        let err = read_signal(&b"AMSGxx"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            fs in 1.0f64..1e6,
            chans in 1usize..5,
            len in 0usize..64,
            seed in 0u64..1000,
        ) {
            let data: Vec<Vec<f64>> = (0..chans)
                .map(|c| {
                    (0..len)
                        .map(|i| ((seed as f64 + c as f64 * 13.0 + i as f64) * 0.7).sin())
                        .collect()
                })
                .collect();
            let s = Signal::from_channels(fs, data).unwrap();
            let back = from_bytes(&to_bytes(&s)).unwrap();
            prop_assert_eq!(s, back);
        }
    }
}
