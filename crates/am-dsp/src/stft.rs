//! Short-Time Fourier Transform spectrograms (Table III).
//!
//! The paper transforms each side-channel signal into a spectrogram before
//! comparison (for the IDSs that use spectrograms). Per Table III a
//! spectrogram is parameterized by:
//!
//! - spectral resolution `Δf` (Hz) — the window length is `1/Δf` seconds,
//! - temporal resolution `Δt` (s) — the hop between windows,
//! - a window function (Blackman–Harris for most channels, Boxcar for PWR).
//!
//! "The spectrogram of a signal can be considered a new signal with a
//! reduced sampling rate and an increased number of channels": we return a
//! [`Signal`] whose sample rate is `1/Δt` and whose channel count is
//! `(n_window/2 + 1) · C`.

use crate::error::DspError;
use crate::fft;
use crate::signal::Signal;
pub use crate::window::WindowKind;
use serde::{Deserialize, Serialize};

/// Spectrogram configuration (one row of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StftConfig {
    /// Spectral resolution in Hz; window length is `1/delta_f` seconds.
    pub delta_f: f64,
    /// Temporal resolution in seconds; the hop between consecutive windows.
    pub delta_t: f64,
    /// Window function applied before each DFT.
    pub window: WindowKind,
}

impl StftConfig {
    /// Creates a config, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `delta_f` or `delta_t` is
    /// not finite and positive.
    pub fn new(delta_f: f64, delta_t: f64, window: WindowKind) -> Result<Self, DspError> {
        if !(delta_f.is_finite() && delta_f > 0.0) {
            return Err(DspError::InvalidParameter(format!(
                "delta_f must be positive, got {delta_f}"
            )));
        }
        if !(delta_t.is_finite() && delta_t > 0.0) {
            return Err(DspError::InvalidParameter(format!(
                "delta_t must be positive, got {delta_t}"
            )));
        }
        Ok(StftConfig {
            delta_f,
            delta_t,
            window,
        })
    }

    /// Window length in samples for a signal sampled at `fs`.
    pub fn window_len(&self, fs: f64) -> usize {
        (fs / self.delta_f).round().max(1.0) as usize
    }

    /// Hop length in samples for a signal sampled at `fs`.
    pub fn hop_len(&self, fs: f64) -> usize {
        (fs * self.delta_t).round().max(1.0) as usize
    }

    /// Number of spectral bins per input channel.
    pub fn bins(&self, fs: f64) -> usize {
        self.window_len(fs) / 2 + 1
    }
}

/// Computes the magnitude spectrogram of `signal`.
///
/// Output shape: `frames = floor((N - window)/hop) + 1` samples,
/// `bins · C` channels, sample rate `fs / hop`. Channel layout is
/// input-channel-major: output channel `c · bins + k` is bin `k` of input
/// channel `c`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] if the signal is shorter than one window.
pub fn spectrogram(signal: &Signal, config: &StftConfig) -> Result<Signal, DspError> {
    let fs = signal.fs();
    let win_len = config.window_len(fs);
    let hop = config.hop_len(fs);
    if signal.len() < win_len {
        return Err(DspError::TooShort {
            needed: win_len,
            got: signal.len(),
        });
    }
    let frames = (signal.len() - win_len) / hop + 1;
    let bins = win_len / 2 + 1;
    let taper = config.window.generate(win_len);
    let out_channels = signal.channels() * bins;
    let mut channels: Vec<Vec<f64>> = vec![Vec::with_capacity(frames); out_channels];
    let mut buf = vec![0.0; win_len];
    let mut mags = Vec::with_capacity(bins);
    for c in 0..signal.channels() {
        let ch = signal.channel(c);
        for f in 0..frames {
            let start = f * hop;
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ch[start + i] * taper[i];
            }
            fft::real_dft_magnitude_into(&buf, &mut mags);
            debug_assert_eq!(mags.len(), bins);
            for (k, &m) in mags.iter().enumerate() {
                channels[c * bins + k].push(m);
            }
        }
    }
    Signal::from_channels(fs / hop as f64, channels)
}

/// Log-magnitude spectrogram: `log10(1 + |X|)`. Compresses dynamic range,
/// which helps the correlation-based comparators on audio-like channels.
///
/// # Errors
///
/// Same as [`spectrogram`].
pub fn log_spectrogram(signal: &Signal, config: &StftConfig) -> Result<Signal, DspError> {
    let mut s = spectrogram(signal, config)?;
    s.map_in_place(|v| (1.0 + v).log10());
    Ok(s)
}

/// Welch power-spectral-density estimate of one channel: magnitude-squared
/// periodograms of 50%-overlapping windowed segments, averaged.
///
/// Returns `(frequencies_hz, psd)` with `segment_len / 2 + 1` bins. Useful
/// for characterizing sensor channels (e.g. confirming EPT's 60 Hz mains
/// dominance) without building a full spectrogram.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] if the channel is shorter than one
/// segment and [`DspError::InvalidParameter`] for a zero `segment_len`.
pub fn welch_psd(
    samples: &[f64],
    fs: f64,
    segment_len: usize,
    window: WindowKind,
) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    if segment_len == 0 {
        return Err(DspError::InvalidParameter(
            "welch segment_len must be >= 1".into(),
        ));
    }
    if samples.len() < segment_len {
        return Err(DspError::TooShort {
            needed: segment_len,
            got: samples.len(),
        });
    }
    let hop = (segment_len / 2).max(1);
    let taper = window.generate(segment_len);
    let win_power: f64 = taper.iter().map(|w| w * w).sum();
    let bins = segment_len / 2 + 1;
    let mut acc = vec![0.0f64; bins];
    let mut count = 0usize;
    let mut buf = vec![0.0f64; segment_len];
    let mut mags = Vec::with_capacity(bins);
    let mut start = 0;
    while start + segment_len <= samples.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = samples[start + i] * taper[i];
        }
        fft::real_dft_magnitude_into(&buf, &mut mags);
        for (a, m) in acc.iter_mut().zip(mags.iter()) {
            *a += m * m;
        }
        count += 1;
        start += hop;
    }
    let norm = 1.0 / (count as f64 * win_power * fs);
    for (k, a) in acc.iter_mut().enumerate() {
        // One-sided PSD: double everything except DC and Nyquist.
        let one_sided = if k == 0 || (segment_len % 2 == 0 && k == bins - 1) {
            1.0
        } else {
            2.0
        };
        *a *= norm * one_sided;
    }
    let freqs = (0..bins)
        .map(|k| k as f64 * fs / segment_len as f64)
        .collect();
    Ok((freqs, acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(fs: f64, f: f64, secs: f64) -> Signal {
        let n = (fs * secs) as usize;
        Signal::from_fn(fs, 1, n, |t, frame| {
            frame[0] = (std::f64::consts::TAU * f * t).sin()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(StftConfig::new(0.0, 0.1, WindowKind::Hann).is_err());
        assert!(StftConfig::new(10.0, -0.1, WindowKind::Hann).is_err());
        assert!(StftConfig::new(10.0, 0.1, WindowKind::Hann).is_ok());
    }

    #[test]
    fn table3_shapes() {
        // ACC: fs 4000, Δf 20, Δt 1/80 → window 200, hop 50, 101 bins.
        let c = StftConfig::new(20.0, 1.0 / 80.0, WindowKind::BlackmanHarris).unwrap();
        assert_eq!(c.window_len(4000.0), 200);
        assert_eq!(c.hop_len(4000.0), 50);
        assert_eq!(c.bins(4000.0), 101);
        // MAG: fs 100, Δf 5, Δt 1/20 → window 20, 11 bins.
        let m = StftConfig::new(5.0, 1.0 / 20.0, WindowKind::BlackmanHarris).unwrap();
        assert_eq!(m.window_len(100.0), 20);
        assert_eq!(m.bins(100.0), 11);
        // EPT: fs 96000, Δf 120 → window 800, 401 bins.
        let e = StftConfig::new(120.0, 1.0 / 240.0, WindowKind::BlackmanHarris).unwrap();
        assert_eq!(e.bins(96000.0), 401);
        // PWR: fs 12000, Δf 60, boxcar → window 200, 101 bins.
        let p = StftConfig::new(60.0, 1.0 / 120.0, WindowKind::Boxcar).unwrap();
        assert_eq!(p.bins(12000.0), 101);
    }

    #[test]
    fn spectrogram_shape_and_rate() {
        let fs = 1000.0;
        let s = sine(fs, 100.0, 1.0); // 1000 samples
        let cfg = StftConfig::new(10.0, 0.05, WindowKind::Hann).unwrap(); // win 100, hop 50
        let spec = spectrogram(&s, &cfg).unwrap();
        assert_eq!(spec.channels(), 51);
        assert_eq!(spec.len(), (1000 - 100) / 50 + 1);
        assert!((spec.fs() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spectrogram_peak_at_tone_bin() {
        let fs = 1000.0;
        let tone = 100.0;
        let s = sine(fs, tone, 2.0);
        let cfg = StftConfig::new(10.0, 0.1, WindowKind::BlackmanHarris).unwrap();
        let spec = spectrogram(&s, &cfg).unwrap();
        // Bin spacing = Δf = 10 Hz → tone should dominate bin 10.
        let mid = spec.len() / 2;
        let frame: Vec<f64> = (0..spec.channels()).map(|c| spec.sample(mid, c)).collect();
        let peak = crate::stats::argmax(&frame).unwrap();
        assert_eq!(peak, 10);
    }

    #[test]
    fn multichannel_layout_is_channel_major() {
        let fs = 200.0;
        let n = 400;
        // Channel 0: 20 Hz tone; channel 1: 50 Hz tone.
        let s = Signal::from_fn(fs, 2, n, |t, frame| {
            frame[0] = (std::f64::consts::TAU * 20.0 * t).sin();
            frame[1] = (std::f64::consts::TAU * 50.0 * t).sin();
        })
        .unwrap();
        let cfg = StftConfig::new(10.0, 0.1, WindowKind::Hann).unwrap(); // win 20, 11 bins
        let spec = spectrogram(&s, &cfg).unwrap();
        assert_eq!(spec.channels(), 22);
        let mid = spec.len() / 2;
        // Input channel 0's bins are output channels 0..11; peak at bin 2.
        let f0: Vec<f64> = (0..11).map(|c| spec.sample(mid, c)).collect();
        assert_eq!(crate::stats::argmax(&f0).unwrap(), 2);
        // Input channel 1's bins are output channels 11..22; peak at bin 5.
        let f1: Vec<f64> = (11..22).map(|c| spec.sample(mid, c)).collect();
        assert_eq!(crate::stats::argmax(&f1).unwrap(), 5);
    }

    #[test]
    fn too_short_input_rejected() {
        let s = sine(100.0, 10.0, 0.05); // 5 samples
        let cfg = StftConfig::new(10.0, 0.05, WindowKind::Hann).unwrap(); // win 10
        assert!(matches!(
            spectrogram(&s, &cfg),
            Err(DspError::TooShort { needed: 10, got: 5 })
        ));
    }

    #[test]
    fn log_spectrogram_compresses() {
        let s = sine(1000.0, 100.0, 1.0);
        let cfg = StftConfig::new(10.0, 0.05, WindowKind::Hann).unwrap();
        let lin = spectrogram(&s, &cfg).unwrap();
        let log = log_spectrogram(&s, &cfg).unwrap();
        assert_eq!(lin.len(), log.len());
        assert_eq!(lin.channels(), log.channels());
        // log10(1 + x) <= x for x >= 0.
        for c in 0..lin.channels() {
            for (a, b) in lin.channel(c).iter().zip(log.channel(c).iter()) {
                assert!(b <= a || *a < 1e-9);
                assert!(*b >= 0.0);
            }
        }
    }

    #[test]
    fn welch_peak_at_tone_frequency() {
        let fs = 1000.0;
        let tone = 100.0;
        let n = 8000;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * tone * i as f64 / fs).sin())
            .collect();
        let (freqs, psd) = welch_psd(&x, fs, 200, WindowKind::BlackmanHarris).unwrap();
        let peak = crate::stats::argmax(&psd).unwrap();
        assert!(
            (freqs[peak] - tone).abs() < 5.0 + 1e-9,
            "peak at {}",
            freqs[peak]
        );
        // Peak dominates the far-away bins.
        assert!(psd[peak] > 100.0 * psd[60]);
    }

    #[test]
    fn welch_parseval_on_white_noise() {
        // Total integrated one-sided PSD ~ variance of the signal.
        let n = 40_000;
        let mut state = 1u64;
        let x: Vec<f64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as f64 / (1u64 << 23) as f64 - 1.0
            })
            .collect();
        let var = crate::stats::variance(&x);
        let fs = 100.0;
        let (freqs, psd) = welch_psd(&x, fs, 256, WindowKind::Hann).unwrap();
        let df = freqs[1] - freqs[0];
        let integral: f64 = psd.iter().sum::<f64>() * df;
        assert!(
            (integral - var).abs() < 0.15 * var,
            "integral {integral} vs variance {var}"
        );
    }

    #[test]
    fn welch_validates_inputs() {
        assert!(welch_psd(&[1.0; 10], 10.0, 0, WindowKind::Hann).is_err());
        assert!(welch_psd(&[1.0; 10], 10.0, 20, WindowKind::Hann).is_err());
    }

    #[test]
    fn exact_one_window_input_gives_one_frame() {
        let s = sine(100.0, 10.0, 0.1); // 10 samples
        let cfg = StftConfig::new(10.0, 0.05, WindowKind::Boxcar).unwrap(); // win 10, hop 5
        let spec = spectrogram(&s, &cfg).unwrap();
        assert_eq!(spec.len(), 1);
    }
}
