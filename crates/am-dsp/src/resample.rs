//! Resampling helpers for the sensor DAQ layer.

use crate::error::DspError;
use crate::signal::Signal;

/// Linearly interpolates `x` (sampled uniformly at `fs_in`) at time `t`.
/// Times outside the signal clamp to the endpoints.
pub fn sample_at(x: &[f64], fs_in: f64, t: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let pos = t * fs_in;
    if pos <= 0.0 {
        return x[0];
    }
    let last = (x.len() - 1) as f64;
    if pos >= last {
        return x[x.len() - 1];
    }
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    x[i] * (1.0 - frac) + x[i + 1] * frac
}

/// Resamples a signal to `fs_out` by per-channel linear interpolation.
///
/// # Errors
///
/// Returns [`DspError::InvalidSampleRate`] if `fs_out` is not finite and
/// positive.
pub fn resample(signal: &Signal, fs_out: f64) -> Result<Signal, DspError> {
    if !(fs_out.is_finite() && fs_out > 0.0) {
        return Err(DspError::InvalidSampleRate(fs_out.to_bits()));
    }
    let out_len = (signal.duration() * fs_out).round() as usize;
    let fs_in = signal.fs();
    let mut channels = Vec::with_capacity(signal.channels());
    for c in 0..signal.channels() {
        let ch = signal.channel(c);
        let out: Vec<f64> = (0..out_len)
            .map(|n| sample_at(ch, fs_in, n as f64 / fs_out))
            .collect();
        channels.push(out);
    }
    Signal::from_channels(fs_out, channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sample_at_interpolates_and_clamps() {
        let x = [0.0, 10.0, 20.0];
        assert_eq!(sample_at(&x, 1.0, 0.5), 5.0);
        assert_eq!(sample_at(&x, 1.0, -3.0), 0.0);
        assert_eq!(sample_at(&x, 1.0, 99.0), 20.0);
        assert_eq!(sample_at(&[], 1.0, 0.0), 0.0);
    }

    #[test]
    fn resample_identity_rate_roundtrips() {
        let s = Signal::from_fn(100.0, 1, 100, |t, f| f[0] = t).unwrap();
        let r = resample(&s, 100.0).unwrap();
        assert_eq!(r.len(), 100);
        for (a, b) in r.channel(0).iter().zip(s.channel(0).iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn upsample_linear_ramp_stays_linear() {
        let s = Signal::from_fn(10.0, 1, 20, |t, f| f[0] = 3.0 * t).unwrap();
        let r = resample(&s, 40.0).unwrap();
        assert_eq!(r.len(), 80);
        for n in 0..r.len() - 4 {
            let t = n as f64 / 40.0;
            assert!((r.channel(0)[n] - 3.0 * t).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn downsample_preserves_duration() {
        let s = Signal::from_fn(1000.0, 2, 1000, |t, f| {
            f[0] = t.sin();
            f[1] = t.cos();
        })
        .unwrap();
        let r = resample(&s, 100.0).unwrap();
        assert_eq!(r.len(), 100);
        assert_eq!(r.channels(), 2);
        assert!((r.duration() - s.duration()).abs() < 0.02);
    }

    #[test]
    fn resample_rejects_bad_rate() {
        let s = Signal::mono(10.0, vec![1.0; 10]).unwrap();
        assert!(resample(&s, 0.0).is_err());
        assert!(resample(&s, f64::NAN).is_err());
    }

    proptest! {
        #[test]
        fn prop_resample_bounded_by_input(
            data in proptest::collection::vec(-10.0f64..10.0, 2..64),
            rate in 1.0f64..200.0,
        ) {
            let s = Signal::mono(50.0, data.clone()).unwrap();
            let r = resample(&s, rate).unwrap();
            let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in r.channel(0) {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }
    }
}
