//! Runtime-dispatched SIMD kernels for the correlation/ZNCC/DTW hot paths.
//!
//! Every dense inner loop in the detection pipeline reduces to a handful
//! of primitives — dot product, centered dot + squared norms (the ZNCC
//! numerator/denominator), plain sums, absolute/squared difference
//! accumulation, and the elementwise `min` that batches the DTW dynamic
//! program's min-of-three step. This module provides each primitive in
//! three backends and resolves which to run once per process:
//!
//! - [`Backend::Ordered`]: the legacy sequential loop, bit-identical to
//!   the pre-SIMD code. All golden tables were pinned against it.
//! - [`Backend::Scalar`]: a multi-accumulator rewrite that mirrors the
//!   AVX2 lane structure exactly (4 or 8 independent partial sums,
//!   pinned combine order, sequential tail). Faster than `Ordered`
//!   because the accumulator chains are independent, and **bit-identical
//!   to [`Backend::Avx2`]** by construction.
//! - [`Backend::Avx2`]: explicit `core::arch::x86_64` intrinsics behind
//!   `is_x86_feature_detected!("avx2")`. No FMA in reductions — fused
//!   rounding would diverge from the scalar mirror.
//!
//! # Kernel classes and the bit-stability contract
//!
//! *Elementwise* kernels ([`min2_into`], [`mul_in_place`],
//! [`sub_scalar_into`], [`conj_mul_in_place`]) perform no reassociation:
//! every output element is the same expression in any backend, so they
//! are bit-identical everywhere and safe on the default path.
//!
//! *Reduction* kernels ([`sum`], [`dot`], [`sq_norm`], [`abs_diff_sum`],
//! [`sq_diff_sum`], [`centered_sq_sum`], [`center_and_sq_norm`],
//! [`centered_dot_norms`]) reassociate the accumulation when lanes are
//! used, which changes rounding. The default [`SimdMode::Auto`]
//! therefore runs reductions on [`Backend::Ordered`] (keeping every
//! golden table byte-identical) and only the provably-exact elementwise
//! kernels on AVX2; the reassociated lanes are an opt-in fast path
//! (`AM_SIMD=fast|scalar|avx2`) covered by ULP-bounded property tests
//! (`tests/simd_equivalence.rs`).
//!
//! # Selection
//!
//! The `AM_SIMD` environment variable wins over [`set_mode`]:
//!
//! | `AM_SIMD` | elementwise | reductions | label |
//! |-----------|-------------|------------|-------|
//! | `off` | Ordered | Ordered | `off` |
//! | `auto` (default) | AVX2 if detected | Ordered | `bit-stable+avx2` / `bit-stable` |
//! | `scalar` | Scalar | Scalar | `scalar` |
//! | `avx2` / `fast` | AVX2 if detected | AVX2 if detected | `avx2` (falls back to `scalar`) |
//!
//! The resolved dispatch is recorded in `GridReport::simd_backend` and
//! the `BENCH_*.json` headers so perf artifacts are never compared
//! across backends.
//!
//! # NaN handling
//!
//! Reductions propagate NaN in every backend (a NaN poisons each
//! accumulator it touches and survives the combine). [`min2_into`] is
//! the exception: scalar `f64::min` ignores a single NaN operand while
//! AVX2 `vminpd` returns the second operand — callers (the DTW dynamic
//! programs) quarantine non-finite samples upstream, so the kernels only
//! ever see finite values and `+inf` band padding, on which all backends
//! agree bit-for-bit.

use crate::fft::Complex;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// Requested SIMD policy (see the module docs for the selection table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdMode {
    /// Legacy sequential loops everywhere; the pure pre-SIMD code path.
    Off,
    /// Bit-stable default: AVX2 for elementwise kernels, ordered
    /// reductions. Byte-identical to [`SimdMode::Off`].
    Auto,
    /// Reassociated fast path on the best available backend.
    Fast,
    /// Force the multi-accumulator scalar lanes (reassociated).
    Scalar,
    /// Force AVX2 (reassociated); falls back to `Scalar` if undetected.
    Avx2,
}

impl SimdMode {
    /// Parses an `AM_SIMD` value; unknown strings are ignored by the
    /// resolver (same forgiving idiom as `AM_EVAL_THREADS`).
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(SimdMode::Off),
            "auto" => Some(SimdMode::Auto),
            "fast" => Some(SimdMode::Fast),
            "scalar" => Some(SimdMode::Scalar),
            "avx2" => Some(SimdMode::Avx2),
            _ => None,
        }
    }
}

/// Concrete implementation family a kernel class dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sequential legacy order (bit-identical to the pre-SIMD code).
    Ordered,
    /// Multi-accumulator scalar lanes mirroring AVX2 exactly.
    Scalar,
    /// Explicit AVX2 intrinsics (requires runtime detection).
    Avx2,
}

impl Backend {
    /// Short stable name (used by benches and test labels).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ordered => "ordered",
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Ordered | Backend::Scalar => true,
            Backend::Avx2 => avx2_available(),
        }
    }
}

/// Whether AVX2 is detected at runtime (always false off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Detected CPU features relevant to the kernel layer, as a stable
/// provenance string for the `BENCH_*.json` headers (e.g.
/// `"x86_64:sse2+avx+avx2+fma"`).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = vec!["sse2"];
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        format!("x86_64:{}", feats.join("+"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        std::env::consts::ARCH.to_string()
    }
}

const LABELS: [&str; 5] = ["off", "bit-stable", "bit-stable+avx2", "scalar", "avx2"];

/// The resolved per-class backend selection for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Backend for order-preserving elementwise kernels.
    pub elementwise: Backend,
    /// Backend for reassociating reduction kernels.
    pub reduction: Backend,
    label: u8,
}

impl Dispatch {
    /// Human-readable backend label, recorded in `GridReport` and the
    /// bench artifacts: one of `off`, `bit-stable`, `bit-stable+avx2`,
    /// `scalar`, `avx2`.
    pub fn label(self) -> &'static str {
        LABELS[self.label as usize]
    }

    fn encode(self) -> u32 {
        1 | ((self.elementwise as u32) << 1)
            | ((self.reduction as u32) << 3)
            | ((self.label as u32) << 5)
    }

    fn decode(bits: u32) -> Dispatch {
        let backend = |b: u32| match b & 0b11 {
            0 => Backend::Ordered,
            1 => Backend::Scalar,
            _ => Backend::Avx2,
        };
        Dispatch {
            elementwise: backend(bits >> 1),
            reduction: backend(bits >> 3),
            label: ((bits >> 5) & 0b111) as u8,
        }
    }
}

/// Mode requested via [`set_mode`] before first use (`SimdMode::Auto`).
static REQUESTED: AtomicU8 = AtomicU8::new(1);
/// Resolved dispatch, encoded; 0 = not yet resolved.
static RESOLVED: AtomicU32 = AtomicU32::new(0);

fn requested_mode() -> SimdMode {
    match REQUESTED.load(Ordering::Relaxed) {
        0 => SimdMode::Off,
        2 => SimdMode::Fast,
        3 => SimdMode::Scalar,
        4 => SimdMode::Avx2,
        _ => SimdMode::Auto,
    }
}

fn resolve(mode: SimdMode) -> Dispatch {
    let _span = am_telemetry::span!("simd.dispatch");
    let avx2 = avx2_available();
    let d = match mode {
        SimdMode::Off => Dispatch {
            elementwise: Backend::Ordered,
            reduction: Backend::Ordered,
            label: 0,
        },
        SimdMode::Auto => {
            if avx2 {
                Dispatch {
                    elementwise: Backend::Avx2,
                    reduction: Backend::Ordered,
                    label: 2,
                }
            } else {
                Dispatch {
                    elementwise: Backend::Ordered,
                    reduction: Backend::Ordered,
                    label: 1,
                }
            }
        }
        SimdMode::Scalar => Dispatch {
            elementwise: Backend::Scalar,
            reduction: Backend::Scalar,
            label: 3,
        },
        SimdMode::Fast | SimdMode::Avx2 => {
            if avx2 {
                Dispatch {
                    elementwise: Backend::Avx2,
                    reduction: Backend::Avx2,
                    label: 4,
                }
            } else {
                Dispatch {
                    elementwise: Backend::Scalar,
                    reduction: Backend::Scalar,
                    label: 3,
                }
            }
        }
    };
    am_telemetry::count!("simd.dispatch.resolutions");
    d
}

/// Requests a mode before the first kernel runs. `AM_SIMD` in the
/// environment still wins at resolution time. Returns `false` (and has
/// no effect) if the dispatch was already resolved.
pub fn set_mode(mode: SimdMode) -> bool {
    if RESOLVED.load(Ordering::Acquire) != 0 {
        return false;
    }
    REQUESTED.store(
        match mode {
            SimdMode::Off => 0,
            SimdMode::Auto => 1,
            SimdMode::Fast => 2,
            SimdMode::Scalar => 3,
            SimdMode::Avx2 => 4,
        },
        Ordering::Relaxed,
    );
    RESOLVED.load(Ordering::Acquire) == 0
}

/// Re-resolves the dispatch from `mode`, ignoring `AM_SIMD` and any
/// earlier resolution. **Benchmark/test hook only** — flipping backends
/// mid-run makes results incomparable with golden pins; production code
/// resolves once via [`active`].
pub fn force_mode(mode: SimdMode) -> Dispatch {
    let d = resolve(mode);
    RESOLVED.store(d.encode(), Ordering::Release);
    d
}

/// The process-wide dispatch, resolving it on first use from `AM_SIMD`
/// (falling back to the [`set_mode`] request, default `Auto`).
#[inline]
pub fn active() -> Dispatch {
    let bits = RESOLVED.load(Ordering::Acquire);
    if bits != 0 {
        return Dispatch::decode(bits);
    }
    let mode = std::env::var("AM_SIMD")
        .ok()
        .and_then(|s| SimdMode::parse(&s))
        .unwrap_or_else(requested_mode);
    let d = resolve(mode);
    // A racing thread resolves to the same value: `resolve` is pure in
    // (env, request, CPU), so the store is idempotent.
    RESOLVED.store(d.encode(), Ordering::Release);
    d
}

// ---------------------------------------------------------------------------
// Ordered backend: the legacy sequential loops, verbatim.
// ---------------------------------------------------------------------------

mod ordered {
    #[inline]
    pub fn sum(x: &[f64]) -> f64 {
        x.iter().sum()
    }

    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += x * y;
        }
        acc
    }

    #[inline]
    pub fn sq_norm(x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for v in x {
            acc += v * v;
        }
        acc
    }

    #[inline]
    pub fn abs_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += (x - y).abs();
        }
        acc
    }

    #[inline]
    pub fn sq_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += (x - y) * (x - y);
        }
        acc
    }

    #[inline]
    pub fn centered_sq_sum(x: &[f64], mu: f64) -> f64 {
        let mut acc = 0.0;
        for v in x {
            acc += (v - mu) * (v - mu);
        }
        acc
    }

    #[inline]
    pub fn center_and_sq_norm(frame: &mut [f64], mu: f64) -> f64 {
        let mut sq = 0.0;
        for v in frame.iter_mut() {
            *v -= mu;
            sq += *v * *v;
        }
        sq
    }

    #[inline]
    pub fn centered_dot_norms(u: &[f64], mu: f64, v: &[f64], mv: f64) -> (f64, f64, f64) {
        let mut num = 0.0;
        let mut du = 0.0;
        let mut dv = 0.0;
        for (x, y) in u.iter().zip(v.iter()) {
            let a = x - mu;
            let b = y - mv;
            num += a * b;
            du += a * a;
            dv += b * b;
        }
        (num, du, dv)
    }
}

// ---------------------------------------------------------------------------
// Scalar-lane backend: multi-accumulator mirrors of the AVX2 kernels.
// Single-output reductions use 8 lanes (two vectors' worth of ILP); the
// fused multi-output kernels use 4 (three accumulator sets already
// saturate the add ports). Combine order is pinned pairwise:
// ((l0+l1)+(l2+l3)) [+ ((l4+l5)+(l6+l7))], then the sequential tail.
// ---------------------------------------------------------------------------

mod lanes {
    #[inline]
    fn combine8(acc: [f64; 8]) -> f64 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    #[inline]
    fn combine4(acc: [f64; 4]) -> f64 {
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    // Sub-lane inputs skip the accumulator array: with zero full blocks
    // the lane path is combine-of-(+0.0)s followed by a sequential tail
    // from +0.0, i.e. exactly the plain sequential fold — so the
    // short-circuit is bitwise invisible and saves the zeroing/combine
    // overhead that dominates tiny calls (4-channel DTW frames).

    #[inline]
    pub fn sum(x: &[f64]) -> f64 {
        if x.len() < 8 {
            // Not `ordered::sum`: `Iterator::sum` folds from -0.0, while
            // the lane tail folds from the +0.0 combine result.
            let mut total = 0.0;
            for &v in x {
                total += v;
            }
            return total;
        }
        let mut acc = [0.0f64; 8];
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for c in chunks {
            for l in 0..8 {
                acc[l] += c[l];
            }
        }
        let mut total = combine8(acc);
        for &v in tail {
            total += v;
        }
        total
    }

    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        if n < 8 {
            return super::ordered::dot(&a[..n], &b[..n]);
        }
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i + 8 <= n {
            for l in 0..8 {
                acc[l] += a[i + l] * b[i + l];
            }
            i += 8;
        }
        let mut total = combine8(acc);
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    #[inline]
    pub fn sq_norm(x: &[f64]) -> f64 {
        if x.len() < 8 {
            return super::ordered::sq_norm(x);
        }
        let mut acc = [0.0f64; 8];
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for c in chunks {
            for l in 0..8 {
                acc[l] += c[l] * c[l];
            }
        }
        let mut total = combine8(acc);
        for &v in tail {
            total += v * v;
        }
        total
    }

    #[inline]
    pub fn abs_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        if n < 8 {
            return super::ordered::abs_diff_sum(&a[..n], &b[..n]);
        }
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i + 8 <= n {
            for l in 0..8 {
                acc[l] += (a[i + l] - b[i + l]).abs();
            }
            i += 8;
        }
        let mut total = combine8(acc);
        while i < n {
            total += (a[i] - b[i]).abs();
            i += 1;
        }
        total
    }

    #[inline]
    pub fn sq_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        if n < 8 {
            return super::ordered::sq_diff_sum(&a[..n], &b[..n]);
        }
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i + 8 <= n {
            for l in 0..8 {
                let d = a[i + l] - b[i + l];
                acc[l] += d * d;
            }
            i += 8;
        }
        let mut total = combine8(acc);
        while i < n {
            let d = a[i] - b[i];
            total += d * d;
            i += 1;
        }
        total
    }

    #[inline]
    pub fn centered_sq_sum(x: &[f64], mu: f64) -> f64 {
        if x.len() < 8 {
            return super::ordered::centered_sq_sum(x, mu);
        }
        let mut acc = [0.0f64; 8];
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for c in chunks {
            for l in 0..8 {
                let d = c[l] - mu;
                acc[l] += d * d;
            }
        }
        let mut total = combine8(acc);
        for &v in tail {
            let d = v - mu;
            total += d * d;
        }
        total
    }

    #[inline]
    pub fn center_and_sq_norm(frame: &mut [f64], mu: f64) -> f64 {
        if frame.len() < 4 {
            return super::ordered::center_and_sq_norm(frame, mu);
        }
        let mut acc = [0.0f64; 4];
        let mut chunks = frame.chunks_exact_mut(4);
        for c in chunks.by_ref() {
            for l in 0..4 {
                c[l] -= mu;
                acc[l] += c[l] * c[l];
            }
        }
        let mut total = combine4(acc);
        for v in chunks.into_remainder() {
            *v -= mu;
            total += *v * *v;
        }
        total
    }

    #[inline]
    pub fn centered_dot_norms(u: &[f64], mu: f64, v: &[f64], mv: f64) -> (f64, f64, f64) {
        let n = u.len().min(v.len());
        if n < 4 {
            return super::ordered::centered_dot_norms(&u[..n], mu, &v[..n], mv);
        }
        let mut num = [0.0f64; 4];
        let mut du = [0.0f64; 4];
        let mut dv = [0.0f64; 4];
        let mut i = 0;
        while i + 4 <= n {
            for l in 0..4 {
                let a = u[i + l] - mu;
                let b = v[i + l] - mv;
                num[l] += a * b;
                du[l] += a * a;
                dv[l] += b * b;
            }
            i += 4;
        }
        let mut tn = combine4(num);
        let mut tu = combine4(du);
        let mut tv = combine4(dv);
        while i < n {
            let a = u[i] - mu;
            let b = v[i] - mv;
            tn += a * b;
            tu += a * a;
            tv += b * b;
            i += 1;
        }
        (tn, tu, tv)
    }

    // Elementwise kernels: identical semantics to `Ordered` (no
    // reassociation); kept here as the non-AVX2 implementations.

    #[inline]
    pub fn min2_into(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((x, y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
            *o = x.min(*y);
        }
    }

    #[inline]
    pub fn mul_in_place(a: &mut [f64], b: &[f64]) {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x *= y;
        }
    }

    #[inline]
    pub fn sub_scalar_into(src: &[f64], c: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(src.iter().map(|v| v - c));
    }

    #[inline]
    pub fn conj_mul_in_place(a: &mut [super::Complex], b: &[super::Complex]) {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x = *x * y.conj();
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend. Every kernel is the exact vector transcription of its
// `lanes` mirror: same lane count, same combine order, same sequential
// tail, mul+add instead of FMA — so Scalar and Avx2 are bit-identical.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex;
    use core::arch::x86_64::*;

    /// Pinned horizontal combine: `(l0 + l1) + (l2 + l3)`.
    #[inline]
    unsafe fn hsum(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(x: &[f64]) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p.add(i)));
            acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p.add(i + 4)));
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            total += *p.add(i);
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_add_pd(
                acc0,
                _mm256_mul_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i))),
            );
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(
                    _mm256_loadu_pd(pa.add(i + 4)),
                    _mm256_loadu_pd(pb.add(i + 4)),
                ),
            );
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            total += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_norm(x: &[f64]) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let v0 = _mm256_loadu_pd(p.add(i));
            let v1 = _mm256_loadu_pd(p.add(i + 4));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, v0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, v1));
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            let v = *p.add(i);
            total += v * v;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn abs_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let sign = _mm256_set1_pd(-0.0);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            let d1 = _mm256_sub_pd(
                _mm256_loadu_pd(pa.add(i + 4)),
                _mm256_loadu_pd(pb.add(i + 4)),
            );
            acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign, d1));
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            total += (*pa.add(i) - *pb.add(i)).abs();
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_diff_sum(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            let d1 = _mm256_sub_pd(
                _mm256_loadu_pd(pa.add(i + 4)),
                _mm256_loadu_pd(pb.add(i + 4)),
            );
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn centered_sq_sum(x: &[f64], mu: f64) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let vmu = _mm256_set1_pd(mu);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(p.add(i)), vmu);
            let d1 = _mm256_sub_pd(_mm256_loadu_pd(p.add(i + 4)), vmu);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
            i += 8;
        }
        let mut total = hsum(acc0) + hsum(acc1);
        while i < n {
            let d = *p.add(i) - mu;
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn center_and_sq_norm(frame: &mut [f64], mu: f64) -> f64 {
        let n = frame.len();
        let p = frame.as_mut_ptr();
        let vmu = _mm256_set1_pd(mu);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_sub_pd(_mm256_loadu_pd(p.add(i)), vmu);
            _mm256_storeu_pd(p.add(i), v);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
            i += 4;
        }
        let mut total = hsum(acc);
        while i < n {
            let v = *p.add(i) - mu;
            *p.add(i) = v;
            total += v * v;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn centered_dot_norms(u: &[f64], mu: f64, v: &[f64], mv: f64) -> (f64, f64, f64) {
        let n = u.len().min(v.len());
        let (pu, pv) = (u.as_ptr(), v.as_ptr());
        let vmu = _mm256_set1_pd(mu);
        let vmv = _mm256_set1_pd(mv);
        let mut num = _mm256_setzero_pd();
        let mut du = _mm256_setzero_pd();
        let mut dv = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_sub_pd(_mm256_loadu_pd(pu.add(i)), vmu);
            let b = _mm256_sub_pd(_mm256_loadu_pd(pv.add(i)), vmv);
            num = _mm256_add_pd(num, _mm256_mul_pd(a, b));
            du = _mm256_add_pd(du, _mm256_mul_pd(a, a));
            dv = _mm256_add_pd(dv, _mm256_mul_pd(b, b));
            i += 4;
        }
        let mut tn = hsum(num);
        let mut tu = hsum(du);
        let mut tv = hsum(dv);
        while i < n {
            let a = *pu.add(i) - mu;
            let b = *pv.add(i) - mv;
            tn += a * b;
            tu += a * a;
            tv += b * b;
            i += 1;
        }
        (tn, tu, tv)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min2_into(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = a.len().min(b.len()).min(out.len());
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let m = _mm256_min_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            _mm256_storeu_pd(po.add(i), m);
            i += 4;
        }
        while i < n {
            *po.add(i) = (*pa.add(i)).min(*pb.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_in_place(a: &mut [f64], b: &[f64]) {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let m = _mm256_mul_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            _mm256_storeu_pd(pa.add(i), m);
            i += 4;
        }
        while i < n {
            *pa.add(i) *= *pb.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_scalar_into(src: &[f64], c: f64, out: &mut Vec<f64>) {
        let n = src.len();
        out.clear();
        out.resize(n, 0.0);
        let (ps, po) = (src.as_ptr(), out.as_mut_ptr());
        let vc = _mm256_set1_pd(c);
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(po.add(i), _mm256_sub_pd(_mm256_loadu_pd(ps.add(i)), vc));
            i += 4;
        }
        while i < n {
            *po.add(i) = *ps.add(i) - c;
            i += 1;
        }
    }

    /// `a[k] = a[k] * conj(b[k])` — the sliding-dot correlation's
    /// frequency-domain step. Bit-identical to the scalar
    /// `Complex::mul(a, b.conj())`: the real part is the literal same
    /// expression (`ar·br − (−(ai·bi))`), the imaginary part commutes
    /// one exact addition (`ai·br + (−(ar·bi))` vs
    /// `(−(ar·bi)) + ai·br`), and sign flips are exact.
    #[target_feature(enable = "avx2")]
    pub unsafe fn conj_mul_in_place(a: &mut [Complex], b: &[Complex]) {
        let n = a.len().min(b.len());
        // `Complex` is `#[repr(C)]` (re, im): a slice of n Complex is a
        // slice of 2n f64 with interleaved [re, im] pairs.
        let pa = a.as_mut_ptr() as *mut f64;
        let pb = b.as_ptr() as *const f64;
        let sign = _mm256_set1_pd(-0.0);
        let pairs = n / 2;
        for k in 0..pairs {
            let va = _mm256_loadu_pd(pa.add(4 * k)); // [ar0, ai0, ar1, ai1]
            let vb = _mm256_loadu_pd(pb.add(4 * k)); // [br0, bi0, br1, bi1]
            let b_re = _mm256_movedup_pd(vb); // [br0, br0, br1, br1]
            let b_im = _mm256_permute_pd(vb, 0b1111); // [bi0, bi0, bi1, bi1]
            let a_sw = _mm256_permute_pd(va, 0b0101); // [ai0, ar0, ai1, ar1]
            let t1 = _mm256_mul_pd(va, b_re); // [ar·br, ai·br, ...]
            let t2 = _mm256_xor_pd(_mm256_mul_pd(a_sw, b_im), sign); // [−ai·bi, −ar·bi, ...]
                                                                     // addsub: [t1.0 − t2.0, t1.1 + t2.1, ...]
                                                                     //       = [ar·br + ai·bi, ai·br − ar·bi, ...]
            _mm256_storeu_pd(pa.add(4 * k), _mm256_addsub_pd(t1, t2));
        }
        for k in (2 * pairs)..n {
            let y = *b.get_unchecked(k);
            let x = a.get_unchecked_mut(k);
            *x = *x * y.conj();
        }
    }
}

#[cfg(target_arch = "x86_64")]
macro_rules! avx2_dispatch {
    ($fn:ident ( $($arg:expr),* )) => {{
        assert!(
            avx2_available(),
            concat!("Backend::Avx2 requested for `", stringify!($fn), "` without AVX2 support")
        );
        // SAFETY: AVX2 availability checked immediately above.
        unsafe { avx2::$fn($($arg),*) }
    }};
}

#[cfg(not(target_arch = "x86_64"))]
macro_rules! avx2_dispatch {
    ($fn:ident ( $($arg:expr),* )) => {{
        panic!(concat!(
            "Backend::Avx2 requested for `",
            stringify!($fn),
            "` on a non-x86_64 target"
        ))
    }};
}

// ---------------------------------------------------------------------------
// Public dispatched kernels. The plain functions consult the resolved
// process dispatch; the `_with` variants take an explicit backend (for
// hot loops that hoist the lookup, and for benches/property tests).
//
// Below `AVX2_MIN_LEN` elements, `Backend::Avx2` routes to the scalar
// lane mirror instead of the intrinsics: a vector call on a handful of
// elements is pure overhead (feature-check + call + empty vector body —
// DTW frame distances over 3-8 channels hit exactly this), and the
// substitution is bitwise-invisible because `lanes` reproduces the AVX2
// lane structure exactly (pinned by `tests/simd_equivalence.rs`).
// ---------------------------------------------------------------------------

/// Minimum element count for which the AVX2 entry is worth its call
/// overhead; below it the bit-identical scalar mirror runs instead.
const AVX2_MIN_LEN: usize = 16;

/// Σ `x[i]` (reduction).
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    sum_with(active().reduction, x)
}

/// [`sum`] on an explicit backend.
#[inline]
pub fn sum_with(backend: Backend, x: &[f64]) -> f64 {
    match backend {
        Backend::Ordered => ordered::sum(x),
        Backend::Scalar => lanes::sum(x),
        Backend::Avx2 if x.len() < AVX2_MIN_LEN => lanes::sum(x),
        Backend::Avx2 => avx2_dispatch!(sum(x)),
    }
}

/// Σ `a[i]·b[i]` over the common prefix (reduction).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with(active().reduction, a, b)
}

/// [`dot`] on an explicit backend.
#[inline]
pub fn dot_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    match backend {
        Backend::Ordered => ordered::dot(a, b),
        Backend::Scalar => lanes::dot(a, b),
        Backend::Avx2 if a.len().min(b.len()) < AVX2_MIN_LEN => lanes::dot(a, b),
        Backend::Avx2 => avx2_dispatch!(dot(a, b)),
    }
}

/// Σ `x[i]²` (reduction).
#[inline]
pub fn sq_norm(x: &[f64]) -> f64 {
    sq_norm_with(active().reduction, x)
}

/// [`sq_norm`] on an explicit backend.
#[inline]
pub fn sq_norm_with(backend: Backend, x: &[f64]) -> f64 {
    match backend {
        Backend::Ordered => ordered::sq_norm(x),
        Backend::Scalar => lanes::sq_norm(x),
        Backend::Avx2 if x.len() < AVX2_MIN_LEN => lanes::sq_norm(x),
        Backend::Avx2 => avx2_dispatch!(sq_norm(x)),
    }
}

/// Σ `|a[i] − b[i]|` over the common prefix (reduction).
#[inline]
pub fn abs_diff_sum(a: &[f64], b: &[f64]) -> f64 {
    abs_diff_sum_with(active().reduction, a, b)
}

/// [`abs_diff_sum`] on an explicit backend.
#[inline]
pub fn abs_diff_sum_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    match backend {
        Backend::Ordered => ordered::abs_diff_sum(a, b),
        Backend::Scalar => lanes::abs_diff_sum(a, b),
        Backend::Avx2 if a.len().min(b.len()) < AVX2_MIN_LEN => lanes::abs_diff_sum(a, b),
        Backend::Avx2 => avx2_dispatch!(abs_diff_sum(a, b)),
    }
}

/// Σ `(a[i] − b[i])²` over the common prefix (reduction).
#[inline]
pub fn sq_diff_sum(a: &[f64], b: &[f64]) -> f64 {
    sq_diff_sum_with(active().reduction, a, b)
}

/// [`sq_diff_sum`] on an explicit backend.
#[inline]
pub fn sq_diff_sum_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    match backend {
        Backend::Ordered => ordered::sq_diff_sum(a, b),
        Backend::Scalar => lanes::sq_diff_sum(a, b),
        Backend::Avx2 if a.len().min(b.len()) < AVX2_MIN_LEN => lanes::sq_diff_sum(a, b),
        Backend::Avx2 => avx2_dispatch!(sq_diff_sum(a, b)),
    }
}

/// Σ `(x[i] − mu)²` (reduction; the variance numerator).
#[inline]
pub fn centered_sq_sum(x: &[f64], mu: f64) -> f64 {
    centered_sq_sum_with(active().reduction, x, mu)
}

/// [`centered_sq_sum`] on an explicit backend.
#[inline]
pub fn centered_sq_sum_with(backend: Backend, x: &[f64], mu: f64) -> f64 {
    match backend {
        Backend::Ordered => ordered::centered_sq_sum(x, mu),
        Backend::Scalar => lanes::centered_sq_sum(x, mu),
        Backend::Avx2 if x.len() < AVX2_MIN_LEN => lanes::centered_sq_sum(x, mu),
        Backend::Avx2 => avx2_dispatch!(centered_sq_sum(x, mu)),
    }
}

/// Subtracts `mu` from `frame` in place and returns Σ `frame[i]²` after
/// centering (fused reduction; the `FrameView` fill kernel). The
/// centered values are bit-identical in every backend — only the
/// squared-norm accumulation order differs.
#[inline]
pub fn center_and_sq_norm(frame: &mut [f64], mu: f64) -> f64 {
    center_and_sq_norm_with(active().reduction, frame, mu)
}

/// [`center_and_sq_norm`] on an explicit backend.
#[inline]
pub fn center_and_sq_norm_with(backend: Backend, frame: &mut [f64], mu: f64) -> f64 {
    match backend {
        Backend::Ordered => ordered::center_and_sq_norm(frame, mu),
        Backend::Scalar => lanes::center_and_sq_norm(frame, mu),
        Backend::Avx2 if frame.len() < AVX2_MIN_LEN => lanes::center_and_sq_norm(frame, mu),
        Backend::Avx2 => avx2_dispatch!(center_and_sq_norm(frame, mu)),
    }
}

/// The Pearson fused loop over the common prefix: returns
/// `(Σ a·b, Σ a², Σ b²)` with `a = u[i] − mu`, `b = v[i] − mv`
/// (reduction; the ZNCC numerator and both denominator norms in one
/// pass).
#[inline]
pub fn centered_dot_norms(u: &[f64], mu: f64, v: &[f64], mv: f64) -> (f64, f64, f64) {
    centered_dot_norms_with(active().reduction, u, mu, v, mv)
}

/// [`centered_dot_norms`] on an explicit backend.
#[inline]
pub fn centered_dot_norms_with(
    backend: Backend,
    u: &[f64],
    mu: f64,
    v: &[f64],
    mv: f64,
) -> (f64, f64, f64) {
    match backend {
        Backend::Ordered => ordered::centered_dot_norms(u, mu, v, mv),
        Backend::Scalar => lanes::centered_dot_norms(u, mu, v, mv),
        Backend::Avx2 if u.len().min(v.len()) < AVX2_MIN_LEN => {
            lanes::centered_dot_norms(u, mu, v, mv)
        }
        Backend::Avx2 => avx2_dispatch!(centered_dot_norms(u, mu, v, mv)),
    }
}

/// `out[i] = min(a[i], b[i])` over the common prefix (elementwise; the
/// DTW min-of-three batching step — the serial left-neighbor `min`
/// stays with the caller). Inputs must be NaN-free (see module docs).
#[inline]
pub fn min2_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    min2_into_with(active().elementwise, a, b, out)
}

/// [`min2_into`] on an explicit backend.
#[inline]
pub fn min2_into_with(backend: Backend, a: &[f64], b: &[f64], out: &mut [f64]) {
    match backend {
        Backend::Ordered | Backend::Scalar => lanes::min2_into(a, b, out),
        Backend::Avx2 if a.len().min(b.len()).min(out.len()) < AVX2_MIN_LEN => {
            lanes::min2_into(a, b, out)
        }
        Backend::Avx2 => avx2_dispatch!(min2_into(a, b, out)),
    }
}

/// `a[i] *= b[i]` over the common prefix (elementwise; the TDEB bias
/// window multiply).
#[inline]
pub fn mul_in_place(a: &mut [f64], b: &[f64]) {
    mul_in_place_with(active().elementwise, a, b)
}

/// [`mul_in_place`] on an explicit backend.
#[inline]
pub fn mul_in_place_with(backend: Backend, a: &mut [f64], b: &[f64]) {
    match backend {
        Backend::Ordered | Backend::Scalar => lanes::mul_in_place(a, b),
        Backend::Avx2 if a.len().min(b.len()) < AVX2_MIN_LEN => lanes::mul_in_place(a, b),
        Backend::Avx2 => avx2_dispatch!(mul_in_place(a, b)),
    }
}

/// `out = src − c` elementwise into a cleared buffer (the ZNCC template
/// centering).
#[inline]
pub fn sub_scalar_into(src: &[f64], c: f64, out: &mut Vec<f64>) {
    sub_scalar_into_with(active().elementwise, src, c, out)
}

/// [`sub_scalar_into`] on an explicit backend.
#[inline]
pub fn sub_scalar_into_with(backend: Backend, src: &[f64], c: f64, out: &mut Vec<f64>) {
    match backend {
        Backend::Ordered | Backend::Scalar => lanes::sub_scalar_into(src, c, out),
        Backend::Avx2 if src.len() < AVX2_MIN_LEN => lanes::sub_scalar_into(src, c, out),
        Backend::Avx2 => avx2_dispatch!(sub_scalar_into(src, c, out)),
    }
}

/// `a[k] *= conj(b[k])` over the common prefix (elementwise; the
/// frequency-domain step of the FFT sliding-dot correlation).
#[inline]
pub fn conj_mul_in_place(a: &mut [Complex], b: &[Complex]) {
    conj_mul_in_place_with(active().elementwise, a, b)
}

/// [`conj_mul_in_place`] on an explicit backend.
#[inline]
pub fn conj_mul_in_place_with(backend: Backend, a: &mut [Complex], b: &[Complex]) {
    match backend {
        Backend::Ordered | Backend::Scalar => lanes::conj_mul_in_place(a, b),
        Backend::Avx2 if a.len().min(b.len()) < AVX2_MIN_LEN => lanes::conj_mul_in_place(a, b),
        Backend::Avx2 => avx2_dispatch!(conj_mul_in_place(a, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed.wrapping_mul(1442695040888963407));
                (x >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
            })
            .collect()
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(SimdMode::parse("off"), Some(SimdMode::Off));
        assert_eq!(SimdMode::parse(" AVX2 "), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::parse("fast"), Some(SimdMode::Fast));
        assert_eq!(SimdMode::parse("scalar"), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse("banana"), None);
    }

    #[test]
    fn dispatch_encoding_round_trips() {
        for mode in [
            SimdMode::Off,
            SimdMode::Auto,
            SimdMode::Fast,
            SimdMode::Scalar,
            SimdMode::Avx2,
        ] {
            let d = resolve(mode);
            assert_eq!(Dispatch::decode(d.encode()), d, "{mode:?}");
            assert!(!d.label().is_empty());
        }
    }

    #[test]
    fn resolution_table() {
        let off = resolve(SimdMode::Off);
        assert_eq!(off.reduction, Backend::Ordered);
        assert_eq!(off.elementwise, Backend::Ordered);
        assert_eq!(off.label(), "off");
        let auto = resolve(SimdMode::Auto);
        // Auto never reassociates reductions, whatever the CPU.
        assert_eq!(auto.reduction, Backend::Ordered);
        let fast = resolve(SimdMode::Fast);
        assert_ne!(fast.reduction, Backend::Ordered);
        if avx2_available() {
            assert_eq!(auto.elementwise, Backend::Avx2);
            assert_eq!(auto.label(), "bit-stable+avx2");
            assert_eq!(fast.reduction, Backend::Avx2);
            assert_eq!(fast.label(), "avx2");
        } else {
            assert_eq!(auto.label(), "bit-stable");
            assert_eq!(fast.reduction, Backend::Scalar);
            assert_eq!(fast.label(), "scalar");
        }
    }

    #[test]
    fn cpu_features_string_is_stable() {
        let f = cpu_features();
        assert!(!f.is_empty());
        #[cfg(target_arch = "x86_64")]
        assert!(f.starts_with("x86_64:sse2"));
    }

    #[test]
    fn ordered_matches_simple_formulas() {
        let a = data(37, 1);
        let b = data(37, 2);
        assert_eq!(ordered::sum(&a), a.iter().sum::<f64>());
        let mut dot = 0.0;
        for i in 0..37 {
            dot += a[i] * b[i];
        }
        assert_eq!(ordered::dot(&a, &b), dot);
        assert_eq!(ordered::sq_norm(&a), ordered::dot(&a, &a));
    }

    /// The lane backends agree with `Ordered` to tight tolerance (they
    /// reassociate, so equality is approximate here; the exact pinning
    /// lives in `tests/simd_equivalence.rs`).
    #[test]
    fn lanes_close_to_ordered() {
        for n in [0, 1, 3, 4, 7, 8, 9, 31, 64, 100] {
            let a = data(n, 3);
            let b = data(n, 4);
            let tol = 1e-12 * (n.max(1) as f64);
            assert!(
                (lanes::sum(&a) - ordered::sum(&a)).abs() <= tol,
                "sum n={n}"
            );
            assert!((lanes::dot(&a, &b) - ordered::dot(&a, &b)).abs() <= tol);
            assert!((lanes::sq_norm(&a) - ordered::sq_norm(&a)).abs() <= tol);
            assert!((lanes::abs_diff_sum(&a, &b) - ordered::abs_diff_sum(&a, &b)).abs() <= tol);
            assert!((lanes::sq_diff_sum(&a, &b) - ordered::sq_diff_sum(&a, &b)).abs() <= tol);
            assert!(
                (lanes::centered_sq_sum(&a, 0.25) - ordered::centered_sq_sum(&a, 0.25)).abs()
                    <= tol
            );
            let (n1, u1, v1) = lanes::centered_dot_norms(&a, 0.5, &b, -0.5);
            let (n2, u2, v2) = ordered::centered_dot_norms(&a, 0.5, &b, -0.5);
            assert!((n1 - n2).abs() <= tol && (u1 - u2).abs() <= tol && (v1 - v2).abs() <= tol);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            let s1 = lanes::center_and_sq_norm(&mut f1, 0.5);
            let s2 = ordered::center_and_sq_norm(&mut f2, 0.5);
            assert_eq!(f1, f2, "centered values are elementwise-exact");
            assert!((s1 - s2).abs() <= tol);
        }
    }

    /// Scalar lanes and AVX2 must agree **bit for bit** on every
    /// kernel: they are the same algorithm by construction.
    #[test]
    fn avx2_bit_identical_to_lanes() {
        if !avx2_available() {
            return;
        }
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 127] {
            let a = data(n, 5);
            let b = data(n, 6);
            assert_eq!(
                sum_with(Backend::Avx2, &a).to_bits(),
                lanes::sum(&a).to_bits(),
                "sum n={n}"
            );
            assert_eq!(
                dot_with(Backend::Avx2, &a, &b).to_bits(),
                lanes::dot(&a, &b).to_bits()
            );
            assert_eq!(
                sq_norm_with(Backend::Avx2, &a).to_bits(),
                lanes::sq_norm(&a).to_bits()
            );
            assert_eq!(
                abs_diff_sum_with(Backend::Avx2, &a, &b).to_bits(),
                lanes::abs_diff_sum(&a, &b).to_bits()
            );
            assert_eq!(
                sq_diff_sum_with(Backend::Avx2, &a, &b).to_bits(),
                lanes::sq_diff_sum(&a, &b).to_bits()
            );
            assert_eq!(
                centered_sq_sum_with(Backend::Avx2, &a, 0.3).to_bits(),
                lanes::centered_sq_sum(&a, 0.3).to_bits()
            );
            let x1 = centered_dot_norms_with(Backend::Avx2, &a, 0.1, &b, 0.2);
            let x2 = lanes::centered_dot_norms(&a, 0.1, &b, 0.2);
            assert_eq!(
                (x1.0.to_bits(), x1.1.to_bits(), x1.2.to_bits()),
                (x2.0.to_bits(), x2.1.to_bits(), x2.2.to_bits())
            );
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            let s1 = center_and_sq_norm_with(Backend::Avx2, &mut f1, 0.1);
            let s2 = lanes::center_and_sq_norm(&mut f2, 0.1);
            assert_eq!(s1.to_bits(), s2.to_bits());
            assert_eq!(f1, f2);
        }
    }

    /// Elementwise kernels are bit-identical across **all** backends.
    #[test]
    fn elementwise_bit_identical_everywhere() {
        let backends: &[Backend] = if avx2_available() {
            &[Backend::Ordered, Backend::Scalar, Backend::Avx2]
        } else {
            &[Backend::Ordered, Backend::Scalar]
        };
        for n in [0, 1, 3, 4, 5, 8, 13, 64] {
            let a = data(n, 7);
            let b = data(n, 8);
            let mut min_ref = vec![0.0; n];
            lanes::min2_into(&a, &b, &mut min_ref);
            let mut mul_ref = a.clone();
            lanes::mul_in_place(&mut mul_ref, &b);
            let mut sub_ref = Vec::new();
            lanes::sub_scalar_into(&a, 0.7, &mut sub_ref);
            let ca: Vec<Complex> = a
                .chunks(2)
                .filter(|c| c.len() == 2)
                .map(|c| Complex::new(c[0], c[1]))
                .collect();
            let cb: Vec<Complex> = b
                .chunks(2)
                .filter(|c| c.len() == 2)
                .map(|c| Complex::new(c[1], c[0]))
                .collect();
            let mut conj_ref = ca.clone();
            lanes::conj_mul_in_place(&mut conj_ref, &cb);
            for &backend in backends {
                let mut out = vec![0.0; n];
                min2_into_with(backend, &a, &b, &mut out);
                assert_eq!(out, min_ref, "min2 {backend:?} n={n}");
                let mut m = a.clone();
                mul_in_place_with(backend, &mut m, &b);
                assert_eq!(m, mul_ref, "mul {backend:?} n={n}");
                let mut s = Vec::new();
                sub_scalar_into_with(backend, &a, 0.7, &mut s);
                assert_eq!(s, sub_ref, "sub {backend:?} n={n}");
                let mut cm = ca.clone();
                conj_mul_in_place_with(backend, &mut cm, &cb);
                assert_eq!(cm, conj_ref, "conj_mul {backend:?} n={n}");
            }
        }
    }

    /// Reductions propagate NaN in every backend: quarantined inputs
    /// can never be silently folded into a finite result.
    #[test]
    fn reductions_propagate_nan() {
        let backends: &[Backend] = if avx2_available() {
            &[Backend::Ordered, Backend::Scalar, Backend::Avx2]
        } else {
            &[Backend::Ordered, Backend::Scalar]
        };
        for pos in [0usize, 3, 8, 12] {
            let mut a = data(13, 9);
            a[pos] = f64::NAN;
            let b = data(13, 10);
            for &backend in backends {
                assert!(sum_with(backend, &a).is_nan(), "{backend:?} pos={pos}");
                assert!(dot_with(backend, &a, &b).is_nan());
                assert!(sq_norm_with(backend, &a).is_nan());
                assert!(abs_diff_sum_with(backend, &a, &b).is_nan());
                assert!(sq_diff_sum_with(backend, &a, &b).is_nan());
                assert!(centered_sq_sum_with(backend, &a, 0.5).is_nan());
                let (n, u, _) = centered_dot_norms_with(backend, &a, 0.5, &b, 0.5);
                assert!(n.is_nan() && u.is_nan());
            }
        }
    }
}
