//! In-house radix-2 FFT.
//!
//! The offline dependency set has no FFT crate, so we implement the
//! iterative Cooley–Tukey algorithm with bit-reversal permutation. It
//! supports power-of-two lengths; helpers pad to the next power of two.
//!
//! The FFT backs two performance-critical pieces of the reproduction:
//!
//! - [`crate::stft`] spectrograms (Table III), and
//! - the FFT-accelerated sliding cross-correlation inside
//!   [`crate::tde`], which is what makes DWM cheap enough to run on raw
//!   multi-kHz signals.

use crate::error::DspError;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A complex number specialized for FFT work.
///
/// Deliberately minimal — not a general complex-arithmetic library.
// `repr(C)` pins the (re, im) layout so `crate::simd` can reinterpret a
// `&[Complex]` as interleaved f64 pairs for the vectorized conj-multiply.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::mul(self, rhs)
    }
}

/// Returns the smallest power of two `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT of a power-of-two-length buffer.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `buf.len()` is not a power of
/// two.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `buf.len()` is not a power of
/// two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, true)?;
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    let n = buf.len();
    if !n.is_power_of_two() {
        return Err(DspError::InvalidParameter(format!(
            "fft length {n} is not a power of two"
        )));
    }
    if n <= 1 {
        return Ok(());
    }
    fft_plan(n)?.process(buf, inverse);
    Ok(())
}

/// A precomputed radix-2 FFT plan for one power-of-two length: the
/// bit-reversal swap list plus per-stage twiddle-factor tables for both
/// directions.
///
/// The twiddles are generated with the exact incremental recurrence
/// (`w ← w · w_step`) the planless butterfly loop used, so a planned
/// transform is **bit-identical** to the historical implementation — a
/// property the grid's golden pins rely on.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal swaps `(i, j)` with `j > i`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated (`n - 1` entries).
    forward: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for a power-of-two length `n >= 2`.
    fn new(n: usize) -> FftPlan {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if j > i {
                swaps.push((i as u32, j as u32));
            }
        }
        let twiddles = |sign: f64| {
            let mut table = Vec::with_capacity(n - 1);
            let mut size = 2;
            while size <= n {
                let half = size / 2;
                let step = sign * std::f64::consts::TAU / size as f64;
                let w_step = Complex::cis(step);
                let mut w = Complex::new(1.0, 0.0);
                for _ in 0..half {
                    table.push(w);
                    w = w * w_step;
                }
                size *= 2;
            }
            table
        };
        FftPlan {
            n,
            swaps,
            forward: twiddles(-1.0),
            inverse: twiddles(1.0),
        }
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the (unconstructible) zero-length plan; present to
    /// satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Runs the in-place transform (without the inverse `1/N` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan length.
    pub fn process(&self, buf: &mut [Complex], inverse: bool) {
        assert_eq!(buf.len(), self.n, "buffer length does not match plan");
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        let table = if inverse {
            &self.inverse
        } else {
            &self.forward
        };
        let mut size = 2;
        let mut off = 0;
        while size <= self.n {
            let half = size / 2;
            let stage = &table[off..off + half];
            for start in (0..self.n).step_by(size) {
                for (k, &w) in stage.iter().enumerate() {
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * w;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            off += half;
            size *= 2;
        }
    }
}

/// A precomputed Bluestein (chirp-z) plan for one arbitrary length: the
/// chirp table and the FFT of the chirp filter, which depend only on `n`
/// and were previously recomputed (two of the three transforms!) on every
/// [`dft`] call.
#[derive(Debug)]
struct BluesteinPlan {
    /// Padded power-of-two convolution length.
    m: usize,
    /// Chirp `w[i] = exp(-i π i² / n)` (index squared mod `2n`).
    w: Vec<Complex>,
    /// Forward FFT of the chirp filter `b`.
    fb: Vec<Complex>,
}

impl BluesteinPlan {
    fn new(n: usize) -> BluesteinPlan {
        debug_assert!(n > 0 && !n.is_power_of_two());
        let m = next_pow2(2 * n - 1);
        let w: Vec<Complex> = (0..n)
            .map(|i| {
                // i^2 mod 2n avoids precision loss for large i.
                let sq = (i * i) % (2 * n);
                Complex::cis(-std::f64::consts::PI * sq as f64 / n as f64)
            })
            .collect();
        let mut b = vec![Complex::default(); m];
        b[0] = w[0].conj();
        for i in 1..n {
            let bi = w[i].conj();
            b[i] = bi;
            b[m - i] = bi;
        }
        fft_in_place(&mut b).expect("m is a power of two");
        BluesteinPlan { m, w, fb: b }
    }
}

/// Process-wide read-only plan registries. Plans are immutable once
/// built, so every thread shares one copy behind an `Arc`; a worker pool
/// no longer rebuilds each plan per thread the way the old thread-local
/// caches did. The `RwLock` is only touched on a thread's *first* request
/// for a length — after that the thread-local memo below answers without
/// any synchronization.
static SHARED_FFT_PLANS: OnceLock<RwLock<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
static SHARED_BLUESTEIN_PLANS: OnceLock<RwLock<HashMap<usize, Arc<BluesteinPlan>>>> =
    OnceLock::new();

thread_local! {
    static FFT_PLAN_MEMO: RefCell<HashMap<usize, Arc<FftPlan>>> = RefCell::new(HashMap::new());
    static BLUESTEIN_PLAN_MEMO: RefCell<HashMap<usize, Arc<BluesteinPlan>>> =
        RefCell::new(HashMap::new());
    static DFT_SCRATCH: RefCell<Vec<Complex>> = const { RefCell::new(Vec::new()) };
}

fn shared_plan<P>(
    registry: &'static OnceLock<RwLock<HashMap<usize, Arc<P>>>>,
    n: usize,
    build_counter: &str,
    build: impl FnOnce(usize) -> P,
) -> Arc<P> {
    let registry = registry.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(plan) = registry.read().expect("plan registry poisoned").get(&n) {
        return Arc::clone(plan);
    }
    let mut plans = registry.write().expect("plan registry poisoned");
    // Re-check under the write lock: a racing thread may have built the
    // plan between our read miss and here, in which case we share its copy
    // instead of building a duplicate.
    Arc::clone(plans.entry(n).or_insert_with(|| {
        am_telemetry::counter(build_counter).add(1);
        Arc::new(build(n))
    }))
}

/// Returns the cached radix-2 plan for a power-of-two length `n >= 2`,
/// building it on first request. Each plan is built at most once per
/// process (shared registry) and memoized per thread, so steady-state
/// lookups never contend.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `n` is not a power of two or
/// is below 2.
pub fn fft_plan(n: usize) -> Result<Arc<FftPlan>, DspError> {
    if !n.is_power_of_two() || n < 2 {
        return Err(DspError::InvalidParameter(format!(
            "fft plan length {n} is not a power of two >= 2"
        )));
    }
    Ok(FFT_PLAN_MEMO.with(|cache| {
        cache
            .borrow_mut()
            .entry(n)
            .or_insert_with(|| {
                shared_plan(&SHARED_FFT_PLANS, n, "dsp.fft_plan_builds", FftPlan::new)
            })
            .clone()
    }))
}

fn bluestein_plan(n: usize) -> Arc<BluesteinPlan> {
    BLUESTEIN_PLAN_MEMO.with(|cache| {
        cache
            .borrow_mut()
            .entry(n)
            .or_insert_with(|| {
                shared_plan(
                    &SHARED_BLUESTEIN_PLANS,
                    n,
                    "dsp.bluestein_plan_builds",
                    BluesteinPlan::new,
                )
            })
            .clone()
    })
}

/// Forward DFT of arbitrary length via Bluestein's algorithm (chirp-z),
/// falling back to the radix-2 path for power-of-two lengths.
///
/// Needed because Table III's spectrogram windows are not powers of two
/// (e.g. 200 samples → 101 bins for ACC); zero-padding would change the
/// paper's channel counts.
pub fn dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_in_place(&mut buf).expect("power-of-two length");
        return buf;
    }
    // Bluestein: X[k] = w[k] * (a (*) b)[k], with
    //   w[m] = exp(-i pi m^2 / n), a[m] = x[m] w[m], b[m] = conj(w[m]).
    // The chirp `w` and FFT(b) depend only on `n` and come from the plan
    // cache; only the `a` transform pair runs per call.
    let plan = bluestein_plan(n);
    DFT_SCRATCH.with(|scratch| {
        let mut a = scratch.borrow_mut();
        a.clear();
        a.resize(plan.m, Complex::default());
        for i in 0..n {
            a[i] = x[i] * plan.w[i];
        }
        fft_in_place(&mut a).expect("m is a power of two");
        for (ai, bi) in a.iter_mut().zip(plan.fb.iter()) {
            *ai = *ai * *bi;
        }
        ifft_in_place(&mut a).expect("m is a power of two");
        (0..n).map(|k| plan.w[k] * a[k]).collect()
    })
}

/// Magnitudes of the first `n/2 + 1` bins of an arbitrary-length real DFT.
pub fn real_dft_magnitude(input: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    real_dft_magnitude_into(input, &mut out);
    out
}

/// [`real_dft_magnitude`] writing into a caller-owned buffer — the
/// allocation-free per-frame path the STFT and Welch loops run on.
pub fn real_dft_magnitude_into(input: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let n = input.len();
    if n == 0 {
        return;
    }
    let bins = n / 2 + 1;
    if n.is_power_of_two() {
        DFT_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            buf.resize(n, Complex::default());
            for (b, &v) in buf.iter_mut().zip(input.iter()) {
                b.re = v;
            }
            fft_in_place(&mut buf).expect("power-of-two length");
            out.extend(buf.iter().take(bins).map(|c| c.abs()));
        });
        return;
    }
    let x: Vec<Complex> = input.iter().map(|&v| Complex::new(v, 0.0)).collect();
    out.extend(dft(&x).into_iter().take(bins).map(Complex::abs));
}

/// Forward FFT of a real input, zero-padded to `n_fft` (a power of two).
///
/// Returns the first `n_fft/2 + 1` bins (the rest are conjugate-symmetric).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `n_fft` is not a power of two
/// or is shorter than the input.
pub fn rfft(input: &[f64], n_fft: usize) -> Result<Vec<Complex>, DspError> {
    if !n_fft.is_power_of_two() {
        return Err(DspError::InvalidParameter(format!(
            "rfft length {n_fft} is not a power of two"
        )));
    }
    if input.len() > n_fft {
        return Err(DspError::InvalidParameter(format!(
            "input length {} exceeds n_fft {n_fft}",
            input.len()
        )));
    }
    let mut buf = vec![Complex::default(); n_fft];
    for (b, &x) in buf.iter_mut().zip(input.iter()) {
        b.re = x;
    }
    fft_in_place(&mut buf)?;
    buf.truncate(n_fft / 2 + 1);
    Ok(buf)
}

/// Magnitude spectrum of a real input (`|rfft|`).
///
/// # Errors
///
/// Same as [`rfft`].
pub fn rfft_magnitude(input: &[f64], n_fft: usize) -> Result<Vec<f64>, DspError> {
    Ok(rfft(input, n_fft)?.into_iter().map(Complex::abs).collect())
}

/// Linear cross-correlation of `x` with `y` via FFT:
/// `out[k] = sum_m x[m + k] * y[m]` for `k = 0 ..= x.len() - y.len()`.
///
/// This is the raw (un-normalized) sliding dot product that
/// [`crate::tde`] normalizes into a correlation coefficient.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] if `y` is longer than `x` or either is
/// empty.
pub fn sliding_dot_fft(x: &[f64], y: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut scratch = FftScratch::default();
    let mut out = Vec::new();
    sliding_dot_fft_into(x, y, &mut scratch, &mut out)?;
    Ok(out)
}

/// Reusable transform buffers for [`sliding_dot_fft_into`].
///
/// One pair of padded FFT buffers; reusing it across the per-window TDE
/// calls of a DWM pass removes two large allocations per window.
#[derive(Debug, Default)]
pub struct FftScratch {
    fx: Vec<Complex>,
    fy: Vec<Complex>,
}

/// Transform length [`sliding_dot_fft_into`] will pad to for the active
/// kernel dispatch, exposed so [`crate::tde`]'s `Auto` cost model prices
/// the FFT path it would actually run.
///
/// The legacy (bit-stable) padding is `next_pow2(x_len + y_len)` — the
/// full linear-correlation length every golden table was pinned against.
/// It is twice what the valid-mode output needs: only
/// `out_len = x_len - y_len + 1` lags are kept, and circular correlation
/// at length `N` is wrap-free for every lag `k <= N - y_len`, so
/// `N >= (out_len - 1) + y_len = x_len` already yields the exact sums.
/// The reassociated fast path (`AM_SIMD=fast|scalar|avx2`) therefore pads
/// to `next_pow2(x_len)` — the same real-number values through a
/// different-size transform, i.e. different rounding, which is exactly
/// what that opt-in path is allowed to do. The default dispatch keeps
/// reductions on [`crate::simd::Backend::Ordered`] and takes the legacy
/// size, staying byte-identical.
pub fn sliding_fft_len(x_len: usize, y_len: usize) -> usize {
    if crate::simd::active().reduction == crate::simd::Backend::Ordered {
        next_pow2(x_len + y_len)
    } else {
        next_pow2(x_len)
    }
}

/// [`sliding_dot_fft`] writing into caller-owned scratch and output
/// buffers. Produces bit-identical results to the allocating version.
///
/// # Errors
///
/// Same as [`sliding_dot_fft`].
pub fn sliding_dot_fft_into(
    x: &[f64],
    y: &[f64],
    scratch: &mut FftScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    if y.is_empty() || x.is_empty() || y.len() > x.len() {
        return Err(DspError::TooShort {
            needed: y.len().max(1),
            got: x.len(),
        });
    }
    let out_len = x.len() - y.len() + 1;
    let n_fft = sliding_fft_len(x.len(), y.len());
    let fx = &mut scratch.fx;
    let fy = &mut scratch.fy;
    fx.clear();
    fx.resize(n_fft, Complex::default());
    fy.clear();
    fy.resize(n_fft, Complex::default());
    for (b, &v) in fx.iter_mut().zip(x.iter()) {
        b.re = v;
    }
    for (b, &v) in fy.iter_mut().zip(y.iter()) {
        b.re = v;
    }
    fft_in_place(fx)?;
    fft_in_place(fy)?;
    // Correlation = IFFT( FX * conj(FY) ). The conj-multiply is
    // elementwise (order-preserving), so the dispatched kernel is
    // bit-identical to the scalar loop in every backend.
    crate::simd::conj_mul_in_place(fx, fy);
    ifft_in_place(fx)?;
    out.clear();
    out.extend(fx.iter().take(out_len).map(|c| c.re));
    Ok(())
}

/// Naive `O(N·M)` version of [`sliding_dot_fft`], used as a test oracle and
/// as the faster option for very short windows.
///
/// # Errors
///
/// Same as [`sliding_dot_fft`].
pub fn sliding_dot_naive(x: &[f64], y: &[f64]) -> Result<Vec<f64>, DspError> {
    if y.is_empty() || x.is_empty() || y.len() > x.len() {
        return Err(DspError::TooShort {
            needed: y.len().max(1),
            got: x.len(),
        });
    }
    let out_len = x.len() - y.len() + 1;
    let mut out = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let mut acc = 0.0;
        for (m, &ym) in y.iter().enumerate() {
            acc += x[k + m] * ym;
        }
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dft_oracle(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (m, &v) in x.iter().enumerate() {
                    acc = acc
                        + v * Complex::cis(-std::f64::consts::TAU * k as f64 * m as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_dft_oracle() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut got = x.clone();
        fft_in_place(&mut got).unwrap();
        let want = dft_oracle(&x);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.re - w.re).abs() < 1e-9, "{g:?} vs {w:?}");
            assert!((g.im - w.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex::default(); 12];
        assert!(fft_in_place(&mut buf).is_err());
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut buf = x.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(x.iter()) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn rfft_of_sine_peaks_at_bin() {
        // 8-sample sine at bin 2.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 4.0 * i as f64 / n as f64).sin())
            .collect();
        let mag = rfft_magnitude(&x, n).unwrap();
        assert_eq!(mag.len(), n / 2 + 1);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 4);
    }

    #[test]
    fn rfft_validates_args() {
        assert!(rfft(&[1.0; 4], 3).is_err());
        assert!(rfft(&[1.0; 8], 4).is_err());
    }

    #[test]
    fn sliding_dot_matches_naive_small() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 0.0, -1.0];
        let a = sliding_dot_fft(&x, &y).unwrap();
        let b = sliding_dot_naive(&x, &y).unwrap();
        assert_eq!(a.len(), 3);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
        // x.len()==y.len() boundary: single output.
        let c = sliding_dot_fft(&x, &x).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0] - 55.0).abs() < 1e-9);
    }

    #[test]
    fn sliding_dot_rejects_bad_shapes() {
        assert!(sliding_dot_fft(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sliding_dot_fft(&[], &[]).is_err());
        assert!(sliding_dot_naive(&[1.0], &[]).is_err());
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn fft_plans_are_shared_across_threads() {
        // The registry hands every thread the *same* plan allocation —
        // a worker pool must not rebuild plans per worker.
        let main = fft_plan(64).unwrap();
        let other = std::thread::spawn(|| fft_plan(64).unwrap())
            .join()
            .expect("no panic");
        assert!(Arc::ptr_eq(&main, &other));
    }

    #[test]
    fn dft_arbitrary_length_matches_oracle() {
        for n in [1usize, 2, 3, 5, 12, 31, 200] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let got = dft(&x);
            let want = dft_oracle(&x);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.re - w.re).abs() < 1e-7, "n={n}: {g:?} vs {w:?}");
                assert!((g.im - w.im).abs() < 1e-7, "n={n}");
            }
        }
        assert!(dft(&[]).is_empty());
    }

    #[test]
    fn real_dft_magnitude_bin_count_matches_table3() {
        // Table III: a 200-sample window yields 101 spectral channels.
        assert_eq!(real_dft_magnitude(&vec![0.0; 200]).len(), 101);
        assert_eq!(real_dft_magnitude(&[0.0; 20]).len(), 11);
        assert_eq!(real_dft_magnitude(&vec![0.0; 400]).len(), 201);
        assert_eq!(real_dft_magnitude(&vec![0.0; 800]).len(), 401);
    }

    proptest! {
        #[test]
        fn prop_bluestein_matches_radix2_padding_free(
            data in proptest::collection::vec(-10.0f64..10.0, 1..48),
        ) {
            // For arbitrary n, Bluestein must equal the O(n^2) oracle.
            let x: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let got = dft(&x);
            let want = dft_oracle(&x);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g.re - w.re).abs() < 1e-6);
                prop_assert!((g.im - w.im).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_fft_ifft_roundtrip(data in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
            let n = next_pow2(data.len());
            let mut buf: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
            buf.resize(n, Complex::default());
            let orig = buf.clone();
            fft_in_place(&mut buf).unwrap();
            ifft_in_place(&mut buf).unwrap();
            for (a, b) in buf.iter().zip(orig.iter()) {
                prop_assert!((a.re - b.re).abs() < 1e-8);
                prop_assert!((a.im).abs() < 1e-8 || (a.im - b.im).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_sliding_dot_fft_equals_naive(
            x in proptest::collection::vec(-10.0f64..10.0, 4..64),
            ylen in 1usize..16,
        ) {
            let ylen = ylen.min(x.len());
            let y = &x[..ylen];
            let a = sliding_dot_fft(&x, y).unwrap();
            let b = sliding_dot_naive(&x, y).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (u, v) in a.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 1e-6, "{} vs {}", u, v);
            }
        }

        #[test]
        fn prop_plan_cache_bit_identical_across_repeated_and_concurrent_use(
            n in 2usize..128,
            seed in 0.0f64..10.0,
        ) {
            // Covers both the radix-2 plan cache (pow2 n) and the
            // Bluestein chirp cache (everything else).
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37 + seed).sin(), (i as f64 * 0.11 - seed).cos()))
                .collect();
            let first = dft(&input);
            // Repeated use of the now-warm cached plan.
            for _ in 0..3 {
                let again = dft(&input);
                for (x, y) in first.iter().zip(&again) {
                    prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
                    prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
            // Concurrent use: plans come from the shared process-wide
            // registry, so four threads all run the same plan the main
            // thread warmed — every spectrum must still be bit-identical
            // to the warm main-thread one.
            let spectra: Vec<Vec<Complex>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| s.spawn(|| dft(&input)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panic")).collect()
            });
            for spectrum in &spectra {
                for (x, y) in first.iter().zip(spectrum) {
                    prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
                    prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }

        #[test]
        fn prop_parseval(data in proptest::collection::vec(-10.0f64..10.0, 1..64)) {
            // Energy in time domain equals energy in frequency domain / N.
            let n = next_pow2(data.len());
            let mut buf: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
            buf.resize(n, Complex::default());
            let time_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum();
            fft_in_place(&mut buf).unwrap();
            let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }
    }
}
