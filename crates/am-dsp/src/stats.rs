//! Small statistics helpers shared across the workspace.

use crate::simd;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    simd::sum(x) / x.len() as f64
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    simd::centered_sq_sum(x, m) / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Maximum value; `None` for an empty slice. NaNs are ignored.
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
}

/// Minimum value; `None` for an empty slice. NaNs are ignored.
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
}

/// Index of the maximum value; `None` for an empty slice. Ties resolve to
/// the first occurrence; NaNs never win.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            None => best = Some((i, v)),
            Some((_, b)) if v > b => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// Inclusive prefix sums: `out[i] = sum(x[0..=i])`.
pub fn cumsum(x: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    x.iter()
        .map(|&v| {
            acc += v;
            acc
        })
        .collect()
}

/// Exclusive prefix sums with a leading zero: `out[i] = sum(x[0..i])`,
/// `out.len() == x.len() + 1`. Used by the sliding-statistics paths in TDE.
pub fn prefix_sums(x: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len() + 1);
    let mut acc = 0.0;
    out.push(0.0);
    for &v in x {
        acc += v;
        out.push(acc);
    }
    out
}

/// Exclusive prefix sums of squares.
pub fn prefix_sq_sums(x: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len() + 1);
    prefix_sq_sums_into(x, &mut out);
    out
}

/// [`prefix_sums`] writing into a caller-owned buffer (cleared first).
pub fn prefix_sums_into(x: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(x.len() + 1);
    let mut acc = 0.0;
    out.push(0.0);
    for &v in x {
        acc += v;
        out.push(acc);
    }
}

/// [`prefix_sq_sums`] writing into a caller-owned buffer (cleared first).
pub fn prefix_sq_sums_into(x: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(x.len() + 1);
    let mut acc = 0.0;
    out.push(0.0);
    for &v in x {
        acc += v * v;
        out.push(acc);
    }
}

/// Mean absolute difference between consecutive elements. Returns 0.0 for
/// slices shorter than 2. Used to auto-select `t_sigma` (§VI-C).
pub fn mean_abs_diff(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (x.len() - 1) as f64
}

/// Maximum absolute difference between consecutive elements (§VI-C's rule
/// for choosing `t_sigma`). Returns 0.0 for slices shorter than 2.
pub fn max_abs_diff(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_var_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_handle_empty_and_nan() {
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[f64::NAN, 2.0, 1.0]), Some(2.0));
        assert_eq!(min(&[3.0, f64::NAN, 1.0]), Some(1.0));
        assert_eq!(max(&[f64::NAN]), None);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn cumsum_and_prefix() {
        assert_eq!(cumsum(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
        assert_eq!(prefix_sums(&[1.0, 2.0, 3.0]), vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(prefix_sq_sums(&[1.0, 2.0, 3.0]), vec![0.0, 1.0, 5.0, 14.0]);
        assert_eq!(prefix_sums(&[]), vec![0.0]);
    }

    #[test]
    fn diffs() {
        assert_eq!(mean_abs_diff(&[1.0]), 0.0);
        assert!((mean_abs_diff(&[0.0, 2.0, -1.0]) - 2.5).abs() < 1e-12);
        assert_eq!(max_abs_diff(&[0.0, 2.0, -1.0]), 3.0);
        assert_eq!(max_abs_diff(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_prefix_sums_window(x in proptest::collection::vec(-10.0f64..10.0, 1..64), a in 0usize..64, w in 1usize..16) {
            let a = a.min(x.len() - 1);
            let b = (a + w).min(x.len());
            let p = prefix_sums(&x);
            let direct: f64 = x[a..b].iter().sum();
            prop_assert!((p[b] - p[a] - direct).abs() < 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative(x in proptest::collection::vec(-100.0f64..100.0, 0..64)) {
            prop_assert!(variance(&x) >= 0.0);
        }

        #[test]
        fn prop_argmax_is_max(x in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
            let i = argmax(&x).unwrap();
            let m = max(&x).unwrap();
            prop_assert_eq!(x[i], m);
        }
    }
}
