//! Time Delay Estimation (§V-B) and TDE-with-Bias (§VI-B).
//!
//! TDE finds the best location of a short signal `y` inside a longer signal
//! `x` by sliding `y` across `x` and scoring each position with the Pearson
//! correlation coefficient, averaged across channels (Eq 1–3). TDEB
//! multiplies the similarity array by a Gaussian window centered on the
//! middle position before taking the argmax (Fig 5), biasing the estimate
//! toward "no additional delay" — which stabilizes DWM on periodic or noisy
//! windows.
//!
//! Two compute paths are provided:
//!
//! - [`TdeBackend::Naive`]: the textbook `O(W·P)` sliding loop,
//! - [`TdeBackend::Fft`]: zero-normalized cross-correlation in
//!   `O(N log N)` using [`crate::fft`] for the numerator and prefix sums
//!   for the sliding window statistics.
//!
//! Both produce the same scores to within floating-point tolerance (see the
//! property tests); `Auto` picks by estimated cost.

use crate::error::DspError;
use crate::fft;
use crate::metrics::pearson_with_means;
use crate::signal::Signal;
use crate::simd;
use crate::stats;
use crate::window::gaussian_window;
use serde::{Deserialize, Serialize};

/// Which implementation computes the similarity array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TdeBackend {
    /// Direct `O(window · positions)` evaluation.
    Naive,
    /// FFT-accelerated zero-normalized cross-correlation.
    Fft,
    /// Choose by estimated operation count.
    #[default]
    Auto,
}

/// Result of a TDE / TDEB run.
#[derive(Debug, Clone, PartialEq)]
pub struct TdeResult {
    /// Similarity score for every candidate delay (`s[n]` in Eq 1). For
    /// TDEB these are the **biased** scores.
    pub scores: Vec<f64>,
    /// `argmax` of `scores` (Eq 2).
    pub delay: usize,
    /// The winning (possibly biased) score.
    pub score: f64,
}

/// Reusable buffers for the TDE hot path.
///
/// DWM calls TDEB once per window with near-constant shapes; without a
/// scratch every call pays ~8 allocations (centered template, correlation
/// buffers, prefix sums, bias window, score array). Thread one scratch
/// through a DWM pass ([`tdeb_with`] / [`similarity_scores_into`]) and the
/// steady state allocates nothing. Results are bit-identical to the
/// allocating entry points.
#[derive(Debug, Default)]
pub struct TdeScratch {
    /// Mean-centered template `y - mean(y)`.
    yc: Vec<f64>,
    /// Sliding-dot numerators for one channel.
    num: Vec<f64>,
    /// Prefix sums of `x`.
    ps: Vec<f64>,
    /// Prefix sums of `x²`.
    pss: Vec<f64>,
    /// Per-channel normalized scores.
    ch: Vec<f64>,
    /// FFT transform buffers.
    fft: fft::FftScratch,
    /// Channel-averaged (and, for TDEB, biased) scores.
    scores: Vec<f64>,
    /// Cached Gaussian bias window.
    bias: Vec<f64>,
    /// `(len, sigma.to_bits())` key of the cached bias window.
    bias_key: Option<(usize, u64)>,
}

impl TdeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TdeScratch::default()
    }

    /// The score array of the most recent scratch-based run.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

/// Computes the similarity array `s[n] = f(x[n:n+Ny], y)` for
/// `n = 0 ..= Nx - Ny`, with `f` the channel-averaged Pearson correlation.
///
/// # Errors
///
/// - [`DspError::ShapeMismatch`] if channel counts differ,
/// - [`DspError::TooShort`] if `y` is empty or longer than `x`.
pub fn similarity_scores(
    x: &Signal,
    y: &Signal,
    backend: TdeBackend,
) -> Result<Vec<f64>, DspError> {
    let mut scratch = TdeScratch::default();
    let mut out = Vec::new();
    similarity_scores_into(x, y, backend, &mut scratch, &mut out)?;
    Ok(out)
}

/// Relative cost of one FFT "unit" (`n · log2 n`, n = padded length)
/// versus one naive unit (`y_len · positions`). Calibrated from the
/// `tde` group of `cargo bench -p bench --bench dsp_kernels`: naive runs
/// ≈ 2.1–2.4 ns/unit and the FFT path ≈ 3.3–4.4 ns/unit on the reference
/// machine, a ratio of ≈ 1.6–1.8 across DWM-shaped sizes, so 2 keeps
/// `Auto` within 10% of the faster backend at every benchmarked size
/// (the previous value of 6 made `Auto` run the naive path up to ~2×
/// slower than FFT on mid-sized windows).
const AUTO_FFT_COST: u64 = 2;

fn choose_fft(backend: TdeBackend, x_len: usize, y_len: usize, positions: usize) -> bool {
    match backend {
        TdeBackend::Naive => false,
        TdeBackend::Fft => true,
        TdeBackend::Auto => {
            let naive_cost = (y_len as u64).saturating_mul(positions as u64);
            let n = fft::sliding_fft_len(x_len, y_len) as u64;
            let fft_cost = AUTO_FFT_COST * n * (64 - n.leading_zeros() as u64);
            naive_cost > fft_cost
        }
    }
}

/// [`similarity_scores`] writing into caller-owned scratch and output
/// buffers; bit-identical results, no steady-state allocation.
///
/// # Errors
///
/// Same as [`similarity_scores`].
pub fn similarity_scores_into(
    x: &Signal,
    y: &Signal,
    backend: TdeBackend,
    scratch: &mut TdeScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    if x.channels() != y.channels() {
        return Err(DspError::ShapeMismatch(format!(
            "channel counts differ: {} vs {}",
            x.channels(),
            y.channels()
        )));
    }
    if y.is_empty() || y.len() > x.len() {
        return Err(DspError::TooShort {
            needed: y.len().max(1),
            got: x.len(),
        });
    }
    let positions = x.len() - y.len() + 1;
    let use_fft = choose_fft(backend, x.len(), y.len(), positions);
    out.clear();
    out.resize(positions, 0.0);
    for c in 0..x.channels() {
        let xs = x.channel(c);
        let ys = y.channel(c);
        if use_fft {
            zncc_fft_into(xs, ys, scratch)?;
            for (a, s) in out.iter_mut().zip(scratch.ch.iter()) {
                *a += s;
            }
        } else {
            // Same arithmetic as accumulating a per-channel score vector,
            // without materializing it. The template mean is hoisted out
            // of the sliding loop — it does not depend on the position.
            let my = stats::mean(ys);
            for (n, a) in out.iter_mut().enumerate() {
                let win = &xs[n..n + y.len()];
                *a += pearson_with_means(win, ys, stats::mean(win), my);
            }
        }
    }
    let cn = x.channels() as f64;
    for a in out.iter_mut() {
        *a /= cn;
    }
    Ok(())
}

/// FFT path: `num[n] = sum (x_win - mean)(y - mean_y) = sliding_dot(x, y - mean_y)`
/// (the `mean_x * sum(y - mean_y)` term vanishes); denominators from prefix
/// sums of `x` and `x^2`. Writes one channel's scores into `s.ch`.
fn zncc_fft_into(x: &[f64], y: &[f64], s: &mut TdeScratch) -> Result<(), DspError> {
    let w = y.len();
    let my = stats::mean(y);
    simd::sub_scalar_into(y, my, &mut s.yc);
    let ny: f64 = simd::sq_norm(&s.yc).sqrt();
    fft::sliding_dot_fft_into(x, &s.yc, &mut s.fft, &mut s.num)?;
    stats::prefix_sums_into(x, &mut s.ps);
    stats::prefix_sq_sums_into(x, &mut s.pss);
    let wf = w as f64;
    let eps = f64::EPSILON * wf;
    s.ch.clear();
    s.ch.reserve(s.num.len());
    for (n, &numerator) in s.num.iter().enumerate() {
        let sum = s.ps[n + w] - s.ps[n];
        let sum_sq = s.pss[n + w] - s.pss[n];
        let var_term = (sum_sq - sum * sum / wf).max(0.0);
        let denom = ny * var_term.sqrt();
        s.ch.push(if denom <= eps || ny <= eps {
            0.0
        } else {
            (numerator / denom).clamp(-1.0, 1.0)
        });
    }
    Ok(())
}

/// Plain TDE (Eq 1–2): similarity scores plus their argmax.
///
/// # Errors
///
/// Same as [`similarity_scores`].
pub fn tde(x: &Signal, y: &Signal, backend: TdeBackend) -> Result<TdeResult, DspError> {
    let scores = similarity_scores(x, y, backend)?;
    let delay = stats::argmax(&scores).unwrap_or(0);
    let score = scores.get(delay).copied().unwrap_or(0.0);
    Ok(TdeResult {
        scores,
        delay,
        score,
    })
}

/// TDE with Bias (TDEB, §VI-B): multiplies the similarity array by a
/// Gaussian window centered on the middle candidate delay with standard
/// deviation `sigma` (in samples), then takes the argmax.
///
/// In DWM the similarity array has length `2·n_ext + 1`, so the center is
/// exactly `n_ext` — "no change relative to the previous displacement".
///
/// # Errors
///
/// Same as [`similarity_scores`], plus [`DspError::InvalidParameter`] if
/// `sigma` is negative or non-finite.
pub fn tdeb(
    x: &Signal,
    y: &Signal,
    sigma: f64,
    backend: TdeBackend,
) -> Result<TdeResult, DspError> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(DspError::InvalidParameter(format!(
            "tdeb sigma must be finite and non-negative, got {sigma}"
        )));
    }
    let mut scratch = TdeScratch::default();
    let (delay, score) = tdeb_with(x, y, sigma, backend, &mut scratch)?;
    Ok(TdeResult {
        scores: std::mem::take(&mut scratch.scores),
        delay,
        score,
    })
}

/// [`tdeb`] on caller-owned scratch: returns `(delay, score)` and leaves
/// the biased score array in [`TdeScratch::scores`]. The Gaussian bias
/// window is cached in the scratch keyed by `(positions, sigma)` — DWM
/// calls with a fixed shape, so it is built once per pass.
///
/// # Errors
///
/// Same as [`tdeb`].
pub fn tdeb_with(
    x: &Signal,
    y: &Signal,
    sigma: f64,
    backend: TdeBackend,
    scratch: &mut TdeScratch,
) -> Result<(usize, f64), DspError> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(DspError::InvalidParameter(format!(
            "tdeb sigma must be finite and non-negative, got {sigma}"
        )));
    }
    let mut scores = std::mem::take(&mut scratch.scores);
    similarity_scores_into(x, y, backend, scratch, &mut scores)?;
    let key = (scores.len(), sigma.to_bits());
    if scratch.bias_key != Some(key) {
        let center = (scores.len() - 1) as f64 / 2.0;
        scratch.bias = gaussian_window(scores.len(), center, sigma);
        scratch.bias_key = Some(key);
    }
    simd::mul_in_place(&mut scores, &scratch.bias);
    let delay = stats::argmax(&scores).unwrap_or(0);
    let score = scores.get(delay).copied().unwrap_or(0.0);
    scratch.scores = scores;
    Ok((delay, score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chirpy(fs: f64, len: usize, seed: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let t = i as f64 / fs;
                (seed + 3.0 * t + 0.8 * t * t).sin() + 0.3 * (7.1 * t + seed).cos()
            })
            .collect()
    }

    #[test]
    fn tde_finds_embedded_copy() {
        let xs = chirpy(100.0, 400, 0.4);
        let y = Signal::mono(100.0, xs[137..137 + 60].to_vec()).unwrap();
        let x = Signal::mono(100.0, xs).unwrap();
        for backend in [TdeBackend::Naive, TdeBackend::Fft, TdeBackend::Auto] {
            let r = tde(&x, &y, backend).unwrap();
            assert_eq!(r.delay, 137, "backend {backend:?}");
            assert!((r.score - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn auto_cost_model_picks_the_measured_faster_backend() {
        // Shapes from the `tde` micro-bench group (x_len, y_len): the FFT
        // path measures ~4× (w400) and ~12× (w1600) faster than naive, so
        // a calibrated Auto must route both to FFT. The previous constant
        // (6) sent w-scaled mid sizes down the naive path at ~2× cost.
        assert!(choose_fft(TdeBackend::Auto, 800, 400, 401));
        assert!(choose_fft(TdeBackend::Auto, 3200, 1600, 1601));
        // Tiny problems stay naive: the padded FFT dominates there.
        assert!(!choose_fft(TdeBackend::Auto, 64, 16, 49));
        // Explicit backends are never overridden.
        assert!(!choose_fft(TdeBackend::Naive, 3200, 1600, 1601));
        assert!(choose_fft(TdeBackend::Fft, 64, 16, 49));
    }

    #[test]
    fn tde_multichannel_averages_channels() {
        // Channel 0 locates the copy; channel 1 is flat (score 0 everywhere).
        let xs = chirpy(100.0, 300, 1.2);
        let x = Signal::from_channels(100.0, vec![xs.clone(), vec![0.0; 300]]).unwrap();
        let y = Signal::from_channels(100.0, vec![xs[80..140].to_vec(), vec![0.0; 60]]).unwrap();
        let r = tde(&x, &y, TdeBackend::Naive).unwrap();
        assert_eq!(r.delay, 80);
        // Averaged with a zero-score channel: winning score ~ 0.5.
        assert!((r.score - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tde_validates_shapes() {
        let x = Signal::mono(10.0, vec![1.0, 2.0, 3.0]).unwrap();
        let y2 = Signal::from_channels(10.0, vec![vec![1.0], vec![1.0]]).unwrap();
        assert!(tde(&x, &y2, TdeBackend::Naive).is_err());
        let long = Signal::mono(10.0, vec![0.0; 5]).unwrap();
        assert!(tde(&x, &long, TdeBackend::Naive).is_err());
        let empty = Signal::zeros(10.0, 1, 0).unwrap();
        assert!(tde(&x, &empty, TdeBackend::Naive).is_err());
    }

    #[test]
    fn equal_lengths_give_single_score() {
        let v = chirpy(50.0, 64, 2.0);
        let x = Signal::mono(50.0, v.clone()).unwrap();
        let y = Signal::mono(50.0, v).unwrap();
        let r = tde(&x, &y, TdeBackend::Fft).unwrap();
        assert_eq!(r.scores.len(), 1);
        assert_eq!(r.delay, 0);
        assert!((r.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tdeb_biases_periodic_ambiguity_toward_center() {
        // A pure sine has many equally good alignments; TDEB must pick the
        // one nearest the center of the search range (Fig 5's point).
        let fs = 100.0;
        let period = 25; // samples
        let xs: Vec<f64> = (0..400)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect();
        let y = Signal::mono(fs, xs[100..200].to_vec()).unwrap();
        let x = Signal::mono(fs, xs).unwrap();
        // Unbiased: many near-1.0 peaks, argmax may be any multiple of the
        // period. Biased with a tight sigma: must be the center-most peak.
        let r = tdeb(&x, &y, 6.0, TdeBackend::Naive).unwrap();
        let center = (r.scores.len() - 1) / 2; // 150
        let dist = (r.delay as isize - center as isize).unsigned_abs();
        assert!(
            dist <= period / 2,
            "delay {} should be within half a period of center {center}",
            r.delay
        );
    }

    #[test]
    fn tdeb_zero_sigma_forces_center() {
        let xs = chirpy(100.0, 200, 0.0);
        let y = Signal::mono(100.0, xs[50..90].to_vec()).unwrap();
        let x = Signal::mono(100.0, xs).unwrap();
        let r = tdeb(&x, &y, 0.0, TdeBackend::Naive).unwrap();
        // Delta bias at the center: argmax can only be the center position
        // (all other scores are multiplied by 0)... unless the center score
        // is negative and zeros tie; argmax picks first max then. Accept
        // center or a zero-scored position.
        let center = (r.scores.len() - 1) / 2;
        assert!(r.delay == center || r.scores[r.delay] == 0.0);
    }

    #[test]
    fn tdeb_rejects_bad_sigma() {
        let x = Signal::mono(10.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = Signal::mono(10.0, vec![1.0, 2.0]).unwrap();
        assert!(tdeb(&x, &y, -1.0, TdeBackend::Naive).is_err());
        assert!(tdeb(&x, &y, f64::NAN, TdeBackend::Naive).is_err());
    }

    #[test]
    fn flat_reference_scores_zero_everywhere() {
        let x = Signal::mono(10.0, vec![0.0; 32]).unwrap();
        let y = Signal::mono(10.0, vec![0.0; 8]).unwrap();
        for backend in [TdeBackend::Naive, TdeBackend::Fft] {
            let s = similarity_scores(&x, &y, backend).unwrap();
            assert!(s.iter().all(|&v| v == 0.0), "{backend:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_fft_equals_naive(
            x in proptest::collection::vec(-5.0f64..5.0, 16..128),
            w in 4usize..32,
            off in 0usize..64,
        ) {
            let w = w.min(x.len());
            let off = off.min(x.len() - w);
            let y = Signal::mono(1.0, x[off..off + w].to_vec()).unwrap();
            let xs = Signal::mono(1.0, x).unwrap();
            let a = similarity_scores(&xs, &y, TdeBackend::Naive).unwrap();
            let b = similarity_scores(&xs, &y, TdeBackend::Fft).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (u, v) in a.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 1e-6, "{} vs {}", u, v);
            }
        }

        #[test]
        fn prop_scores_bounded(
            x in proptest::collection::vec(-5.0f64..5.0, 16..96),
            w in 2usize..16,
        ) {
            let w = w.min(x.len());
            let y = Signal::mono(1.0, x[..w].to_vec()).unwrap();
            let xs = Signal::mono(1.0, x).unwrap();
            for backend in [TdeBackend::Naive, TdeBackend::Fft] {
                let s = similarity_scores(&xs, &y, backend).unwrap();
                for v in s {
                    prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
                }
            }
        }

        #[test]
        fn prop_embedded_window_recovered(
            x in proptest::collection::vec(-5.0f64..5.0, 48..128),
            off in 0usize..96,
        ) {
            let w = 24.min(x.len());
            let off = off.min(x.len() - w);
            let y = Signal::mono(1.0, x[off..off + w].to_vec()).unwrap();
            let xs = Signal::mono(1.0, x.clone()).unwrap();
            let r = tde(&xs, &y, TdeBackend::Auto).unwrap();
            // The true offset must be a global maximum (ties possible with
            // repeating content, so compare scores, not indices).
            prop_assert!(r.score + 1e-9 >= r.scores[off]);
            prop_assert!(r.scores[off] > 1.0 - 1e-6 || stats::variance(&x[off..off+w]) < 1e-12);
        }
    }
}
