//! Similarity functions and distance metrics (§V-B, §VII-A).
//!
//! The paper's default similarity function is the Pearson correlation
//! coefficient (Eq 3); its default distance metric is the correlation
//! distance (Eq 14). For multi-channel inputs, scores/distances are computed
//! per channel along the time axis and **averaged across channels** — the
//! paper found this raises SNR by discarding channel-wise information.

use crate::error::DspError;
use crate::signal::Signal;
use crate::simd;
use crate::stats;
use serde::{Deserialize, Serialize};

/// Distance metrics available to the comparator.
///
/// NSYNC defaults to [`DistanceMetric::Correlation`]; Euclidean/Manhattan
/// are provided for ablations (the paper rejects them as gain-sensitive),
/// MAE for Moore's IDS, cosine for Belikovetsky's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DistanceMetric {
    /// `1 - pearson(u, v)` (Eq 14). Gain-invariant.
    Correlation,
    /// `1 - cos(u, v)`. Used by the Belikovetsky baseline.
    Cosine,
    /// Mean absolute error. Used by the Moore baseline.
    MeanAbsoluteError,
    /// L2 distance normalized by length.
    Euclidean,
    /// L1 distance normalized by length.
    Manhattan,
}

impl DistanceMetric {
    /// Distance between two equal-length 1-D vectors.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != v.len()` (callers compare pre-sliced windows).
    pub fn distance(self, u: &[f64], v: &[f64]) -> f64 {
        assert_eq!(u.len(), v.len(), "distance inputs must have equal length");
        match self {
            DistanceMetric::Correlation => correlation_distance(u, v),
            DistanceMetric::Cosine => cosine_distance(u, v),
            DistanceMetric::MeanAbsoluteError => mean_absolute_error(u, v),
            DistanceMetric::Euclidean => euclidean_distance(u, v),
            DistanceMetric::Manhattan => manhattan_distance(u, v),
        }
    }

    /// Like [`DistanceMetric::distance`], but with typed errors instead
    /// of panics/NaN propagation: mismatched lengths and non-finite
    /// inputs are reported, never folded into the result. This is the
    /// entry point for anything feeding learned thresholds — a NaN that
    /// reaches an OCC threshold poisons every comparison after it.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] on length mismatch and
    /// [`DspError::NonFinite`] (with `channel` 0/1 meaning `u`/`v`) on
    /// the first NaN or infinity.
    pub fn try_distance(self, u: &[f64], v: &[f64]) -> Result<f64, DspError> {
        if u.len() != v.len() {
            return Err(DspError::ShapeMismatch(format!(
                "{} vs {}",
                u.len(),
                v.len()
            )));
        }
        for (side, data) in [u, v].into_iter().enumerate() {
            if let Some(index) = first_non_finite(data) {
                return Err(DspError::NonFinite {
                    channel: side,
                    index,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Multi-channel distance: per-channel distance averaged across channels
    /// (§VII-A). Both signals must have the same shape and be finite.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] if lengths or channel counts
    /// differ, and [`DspError::NonFinite`] if either signal contains a
    /// NaN or infinite sample (the error reports the offending channel
    /// and index; for the second signal the channel is offset by the
    /// channel count of the first).
    pub fn distance_multichannel(self, a: &Signal, b: &Signal) -> Result<f64, DspError> {
        if a.len() != b.len() || a.channels() != b.channels() {
            return Err(DspError::ShapeMismatch(format!(
                "{}x{} vs {}x{}",
                a.len(),
                a.channels(),
                b.len(),
                b.channels()
            )));
        }
        for ch in 0..a.channels() {
            if let Some(index) = first_non_finite(a.channel(ch)) {
                return Err(DspError::NonFinite { channel: ch, index });
            }
            if let Some(index) = first_non_finite(b.channel(ch)) {
                return Err(DspError::NonFinite {
                    channel: a.channels() + ch,
                    index,
                });
            }
        }
        let c = a.channels() as f64;
        let sum: f64 = (0..a.channels())
            .map(|ch| self.distance(a.channel(ch), b.channel(ch)))
            .sum();
        Ok(sum / c)
    }
}

fn first_non_finite(data: &[f64]) -> Option<usize> {
    data.iter().position(|v| !v.is_finite())
}

impl std::fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DistanceMetric::Correlation => "correlation",
            DistanceMetric::Cosine => "cosine",
            DistanceMetric::MeanAbsoluteError => "mae",
            DistanceMetric::Euclidean => "euclidean",
            DistanceMetric::Manhattan => "manhattan",
        };
        f.write_str(s)
    }
}

/// Pearson correlation coefficient (Eq 3).
///
/// Returns 0.0 when either input has zero variance (instead of NaN): a flat
/// window carries no timing information, so "uncorrelated" is the safe
/// answer for both TDE (score 0 never wins an argmax against real structure)
/// and the comparator (distance 1).
pub fn pearson(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    if u.is_empty() {
        return 0.0;
    }
    pearson_with_means(u, v, stats::mean(u), stats::mean(v))
}

/// [`pearson`] with both means supplied by the caller. The naive TDE
/// sliding loop hoists `mean(y)` out of its per-position calls through
/// this entry point — the mean of a fixed template is position-invariant,
/// so the result is bit-identical to recomputing it every call.
pub(crate) fn pearson_with_means(u: &[f64], v: &[f64], mu: f64, mv: f64) -> f64 {
    let n = u.len();
    if n == 0 {
        return 0.0;
    }
    let (num, du, dv) = simd::centered_dot_norms(u, mu, v, mv);
    let denom = (du * dv).sqrt();
    if denom <= f64::EPSILON * n as f64 {
        0.0
    } else {
        (num / denom).clamp(-1.0, 1.0)
    }
}

/// Correlation distance (Eq 14): `1 - pearson(u, v)`. Range `[0, 2]`.
pub fn correlation_distance(u: &[f64], v: &[f64]) -> f64 {
    1.0 - pearson(u, v)
}

/// Cosine distance: `1 - (u·v)/(|u||v|)`. Zero-norm inputs give 1.0.
pub fn cosine_distance(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    // Centering with mean 0.0 is exact (`x - 0.0` bit-preserves `x`,
    // both zeros included), so the Pearson kernel doubles as the cosine
    // kernel.
    let (num, nu, nv) = simd::centered_dot_norms(u, 0.0, v, 0.0);
    let denom = (nu * nv).sqrt();
    if denom <= f64::EPSILON {
        1.0
    } else {
        1.0 - (num / denom).clamp(-1.0, 1.0)
    }
}

/// Mean absolute error (the Moore baseline's point metric).
pub fn mean_absolute_error(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    if u.is_empty() {
        return 0.0;
    }
    simd::abs_diff_sum(u, v) / u.len() as f64
}

/// Length-normalized Euclidean distance.
pub fn euclidean_distance(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    if u.is_empty() {
        return 0.0;
    }
    let ss = simd::sq_diff_sum(u, v);
    (ss / u.len() as f64).sqrt()
}

/// Length-normalized Manhattan distance (identical to MAE; kept as a named
/// alias because the paper lists both).
pub fn manhattan_distance(u: &[f64], v: &[f64]) -> f64 {
    mean_absolute_error(u, v)
}

/// Multi-channel Pearson similarity averaged across channels (§V-B).
///
/// # Errors
///
/// Returns [`DspError::ShapeMismatch`] if shapes differ.
pub fn pearson_multichannel(a: &Signal, b: &Signal) -> Result<f64, DspError> {
    if a.len() != b.len() || a.channels() != b.channels() {
        return Err(DspError::ShapeMismatch(format!(
            "{}x{} vs {}x{}",
            a.len(),
            a.channels(),
            b.len(),
            b.channels()
        )));
    }
    let c = a.channels() as f64;
    let sum: f64 = (0..a.channels())
        .map(|ch| pearson(a.channel(ch), b.channel(ch)))
        .sum();
    Ok(sum / c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_perfect_correlation() {
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&u, &v) - 1.0).abs() < 1e-12);
        let w = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&u, &w) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_gain_and_offset_invariant() {
        let u = [0.3, -0.8, 1.2, 0.1, -0.4];
        let v: Vec<f64> = u.iter().map(|x| 3.7 * x + 11.0).collect();
        assert!((pearson(&u, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_flat_input_is_zero() {
        assert_eq!(
            pearson(&[5.0; 8], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
            0.0
        );
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn correlation_distance_range() {
        let u = [1.0, -1.0, 1.0, -1.0];
        let v = [-1.0, 1.0, -1.0, 1.0];
        assert!((correlation_distance(&u, &u.clone()) - 0.0).abs() < 1e-12);
        assert!((correlation_distance(&u, &v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_cases() {
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn mae_euclidean_manhattan() {
        let u = [0.0, 0.0, 0.0, 0.0];
        let v = [1.0, -1.0, 1.0, -1.0];
        assert!((mean_absolute_error(&u, &v) - 1.0).abs() < 1e-12);
        assert!((euclidean_distance(&u, &v) - 1.0).abs() < 1e-12);
        assert_eq!(manhattan_distance(&u, &v), mean_absolute_error(&u, &v));
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
        assert_eq!(euclidean_distance(&[], &[]), 0.0);
    }

    #[test]
    fn euclidean_is_gain_sensitive_but_correlation_is_not() {
        // The paper's §VII-A argument for choosing correlation distance.
        let u = [0.1, 0.5, -0.3, 0.9];
        let v: Vec<f64> = u.iter().map(|x| 2.0 * x).collect();
        assert!(euclidean_distance(&u, &v) > 0.1);
        assert!(correlation_distance(&u, &v) < 1e-12);
    }

    #[test]
    fn multichannel_distance_averages() {
        let a =
            Signal::from_channels(10.0, vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]]).unwrap();
        // Channel 0 perfectly correlated, channel 1 anti-correlated.
        let b =
            Signal::from_channels(10.0, vec![vec![2.0, 4.0, 6.0], vec![3.0, 2.0, 1.0]]).unwrap();
        let d = DistanceMetric::Correlation
            .distance_multichannel(&a, &b)
            .unwrap();
        // (0 + 2) / 2 = 1.
        assert!((d - 1.0).abs() < 1e-12);
        let s = pearson_multichannel(&a, &b).unwrap();
        assert!((s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn multichannel_shape_mismatch() {
        let a = Signal::mono(10.0, vec![1.0, 2.0]).unwrap();
        let b = Signal::mono(10.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(DistanceMetric::Correlation
            .distance_multichannel(&a, &b)
            .is_err());
        assert!(pearson_multichannel(&a, &b).is_err());
    }

    #[test]
    fn try_distance_rejects_bad_inputs() {
        let m = DistanceMetric::Correlation;
        assert!(matches!(
            m.try_distance(&[1.0, 2.0], &[1.0]),
            Err(DspError::ShapeMismatch(_))
        ));
        assert!(matches!(
            m.try_distance(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(DspError::NonFinite {
                channel: 0,
                index: 1
            })
        ));
        assert!(matches!(
            m.try_distance(&[1.0, 2.0], &[f64::INFINITY, 2.0]),
            Err(DspError::NonFinite {
                channel: 1,
                index: 0
            })
        ));
        assert!(m.try_distance(&[1.0, 2.0], &[2.0, 1.0]).is_ok());
    }

    #[test]
    fn multichannel_distance_rejects_non_finite() {
        let a = Signal::from_channels(10.0, vec![vec![1.0, 2.0], vec![3.0, f64::NAN]]).unwrap();
        let b = Signal::from_channels(10.0, vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(matches!(
            DistanceMetric::Correlation.distance_multichannel(&a, &b),
            Err(DspError::NonFinite {
                channel: 1,
                index: 1
            })
        ));
        assert!(matches!(
            DistanceMetric::Correlation.distance_multichannel(&b, &a),
            Err(DspError::NonFinite {
                channel: 3,
                index: 1
            })
        ));
    }

    #[test]
    fn metric_display() {
        assert_eq!(DistanceMetric::Correlation.to_string(), "correlation");
        assert_eq!(DistanceMetric::MeanAbsoluteError.to_string(), "mae");
    }

    proptest! {
        #[test]
        fn prop_pearson_bounded(
            u in proptest::collection::vec(-100.0f64..100.0, 2..32),
            v in proptest::collection::vec(-100.0f64..100.0, 2..32),
        ) {
            let n = u.len().min(v.len());
            let r = pearson(&u[..n], &v[..n]);
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn prop_symmetry(
            u in proptest::collection::vec(-10.0f64..10.0, 2..16),
            v in proptest::collection::vec(-10.0f64..10.0, 2..16),
        ) {
            let n = u.len().min(v.len());
            let (u, v) = (&u[..n], &v[..n]);
            for m in [
                DistanceMetric::Correlation,
                DistanceMetric::Cosine,
                DistanceMetric::MeanAbsoluteError,
                DistanceMetric::Euclidean,
                DistanceMetric::Manhattan,
            ] {
                prop_assert!((m.distance(u, v) - m.distance(v, u)).abs() < 1e-9);
                // Identity of indiscernibles (weak form): d(u,u) ~ 0 except
                // correlation of a flat window, which we define as 1.
                let duu = m.distance(u, u);
                prop_assert!(duu < 2.0 + 1e-9);
                prop_assert!(duu >= -1e-9);
            }
        }

        #[test]
        fn prop_correlation_distance_nonnegative(
            u in proptest::collection::vec(-10.0f64..10.0, 2..16),
            v in proptest::collection::vec(-10.0f64..10.0, 2..16),
        ) {
            let n = u.len().min(v.len());
            let d = correlation_distance(&u[..n], &v[..n]);
            prop_assert!((0.0..=2.0 + 1e-12).contains(&d));
        }
    }
}
