//! The [`Signal`] type: a multi-channel, uniformly sampled time series.
//!
//! Follows the notation of §V-A of the paper: a signal `x` has `N` samples
//! and `C` channels; `x[n, c]` is the `n`th sample of channel `c`;
//! `x[n1:n2]` is a time slice and `x[:, c]` a whole channel.
//!
//! Storage is **channel-major** (each channel is contiguous), because every
//! hot loop in the IDS — correlation, TDE, distance metrics — walks one
//! channel at a time and averages results across channels.

use crate::error::DspError;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A multi-channel, uniformly sampled signal.
///
/// # Example
///
/// ```
/// use am_dsp::Signal;
///
/// # fn main() -> Result<(), am_dsp::DspError> {
/// let s = Signal::from_channels(1000.0, vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.channels(), 2);
/// assert_eq!(s.sample(1, 0), 2.0);
/// assert!((s.duration() - 0.002).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    fs: f64,
    len: usize,
    /// Channel-major storage: `data[c * len + n]`.
    data: Vec<f64>,
    channels: usize,
}

impl Signal {
    /// Creates a signal from per-channel sample vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoChannels`] if `channels` is empty,
    /// [`DspError::RaggedChannels`] if channel lengths differ, and
    /// [`DspError::InvalidSampleRate`] if `fs` is not finite and positive.
    pub fn from_channels(fs: f64, channels: Vec<Vec<f64>>) -> Result<Self, DspError> {
        if !(fs.is_finite() && fs > 0.0) {
            return Err(DspError::InvalidSampleRate(fs.to_bits()));
        }
        if channels.is_empty() {
            return Err(DspError::NoChannels);
        }
        let len = channels[0].len();
        for (i, ch) in channels.iter().enumerate() {
            if ch.len() != len {
                return Err(DspError::RaggedChannels {
                    expected: len,
                    channel: i,
                    actual: ch.len(),
                });
            }
        }
        let n_ch = channels.len();
        let mut data = Vec::with_capacity(len * n_ch);
        for ch in &channels {
            data.extend_from_slice(ch);
        }
        Ok(Signal {
            fs,
            len,
            data,
            channels: n_ch,
        })
    }

    /// Creates a single-channel signal.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSampleRate`] if `fs` is not finite and
    /// positive.
    pub fn mono(fs: f64, samples: Vec<f64>) -> Result<Self, DspError> {
        Signal::from_channels(fs, vec![samples])
    }

    /// Creates an all-zero signal with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoChannels`] for zero channels and
    /// [`DspError::InvalidSampleRate`] for a bad sample rate.
    pub fn zeros(fs: f64, channels: usize, len: usize) -> Result<Self, DspError> {
        if !(fs.is_finite() && fs > 0.0) {
            return Err(DspError::InvalidSampleRate(fs.to_bits()));
        }
        if channels == 0 {
            return Err(DspError::NoChannels);
        }
        Ok(Signal {
            fs,
            len,
            data: vec![0.0; channels * len],
            channels,
        })
    }

    /// Builds a signal by sampling a function of time, one closure call per
    /// `(t, frame)` where `frame` receives one value per channel.
    ///
    /// # Errors
    ///
    /// Same as [`Signal::zeros`].
    pub fn from_fn<F>(fs: f64, channels: usize, len: usize, mut f: F) -> Result<Self, DspError>
    where
        F: FnMut(f64, &mut [f64]),
    {
        let mut s = Signal::zeros(fs, channels, len)?;
        let mut frame = vec![0.0; channels];
        for n in 0..len {
            let t = n as f64 / fs;
            f(t, &mut frame);
            for (c, v) in frame.iter().enumerate() {
                s.data[c * len + n] = *v;
            }
        }
        Ok(s)
    }

    /// Sampling frequency in Hz.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Number of samples per channel (`N`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of channels (`C`).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Signal duration in seconds (`N / fs`).
    pub fn duration(&self) -> f64 {
        self.len as f64 / self.fs
    }

    /// The paper's `x[n, c]`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= len()` or `c >= channels()`.
    pub fn sample(&self, n: usize, c: usize) -> f64 {
        assert!(n < self.len, "sample index {n} out of range {}", self.len);
        assert!(
            c < self.channels,
            "channel {c} out of range {}",
            self.channels
        );
        self.data[c * self.len + n]
    }

    /// The paper's `x[:, c]`: a contiguous view of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels()`.
    pub fn channel(&self, c: usize) -> &[f64] {
        assert!(
            c < self.channels,
            "channel {c} out of range {}",
            self.channels
        );
        &self.data[c * self.len..(c + 1) * self.len]
    }

    /// Mutable view of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels()`.
    pub fn channel_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(
            c < self.channels,
            "channel {c} out of range {}",
            self.channels
        );
        &mut self.data[c * self.len..(c + 1) * self.len]
    }

    /// Iterates over all channels as slices.
    pub fn iter_channels(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.channels).map(move |c| self.channel(c))
    }

    /// The paper's `x[n1:n2]`: a time slice across all channels, returned as
    /// an owned signal.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidRange`] if the range is inverted or out of
    /// bounds.
    pub fn slice(&self, range: Range<usize>) -> Result<Signal, DspError> {
        if range.start > range.end || range.end > self.len {
            return Err(DspError::InvalidRange {
                start: range.start,
                end: range.end,
                len: self.len,
            });
        }
        let out_len = range.end - range.start;
        let mut data = Vec::with_capacity(out_len * self.channels);
        for c in 0..self.channels {
            let ch = self.channel(c);
            data.extend_from_slice(&ch[range.clone()]);
        }
        Ok(Signal {
            fs: self.fs,
            len: out_len,
            data,
            channels: self.channels,
        })
    }

    /// Like [`Signal::slice`] but clamps the range to the valid region and
    /// zero-pads anything that falls outside `0..len()`.
    ///
    /// This is the slicing primitive DWM needs: its extended search window
    /// `b{i}_E` can start before index 0 (early windows) or run past the end
    /// of the reference (late windows, Eq (9)).
    pub fn slice_padded(&self, start: isize, end: isize) -> Signal {
        let out_len = (end - start).max(0) as usize;
        let mut data = vec![0.0; out_len * self.channels];
        if out_len == 0 {
            return Signal {
                fs: self.fs,
                len: 0,
                data,
                channels: self.channels,
            };
        }
        let src_start = start.clamp(0, self.len as isize) as usize;
        let src_end = end.clamp(0, self.len as isize) as usize;
        if src_end > src_start {
            let dst_off = (src_start as isize - start) as usize;
            for c in 0..self.channels {
                let ch = self.channel(c);
                let dst =
                    &mut data[c * out_len + dst_off..c * out_len + dst_off + (src_end - src_start)];
                dst.copy_from_slice(&ch[src_start..src_end]);
            }
        }
        Signal {
            fs: self.fs,
            len: out_len,
            data,
            channels: self.channels,
        }
    }

    /// [`Signal::slice_padded`] writing into a caller-owned signal whose
    /// buffer is reused — the allocation-free path DWM's per-window search
    /// slicing runs on. `out`'s previous shape and contents are discarded.
    pub fn slice_padded_into(&self, start: isize, end: isize, out: &mut Signal) {
        let out_len = (end - start).max(0) as usize;
        out.fs = self.fs;
        out.len = out_len;
        out.channels = self.channels;
        out.data.clear();
        out.data.resize(out_len * self.channels, 0.0);
        if out_len == 0 {
            return;
        }
        let src_start = start.clamp(0, self.len as isize) as usize;
        let src_end = end.clamp(0, self.len as isize) as usize;
        if src_end > src_start {
            let dst_off = (src_start as isize - start) as usize;
            for c in 0..self.channels {
                let ch = self.channel(c);
                let dst = &mut out.data
                    [c * out_len + dst_off..c * out_len + dst_off + (src_end - src_start)];
                dst.copy_from_slice(&ch[src_start..src_end]);
            }
        }
    }

    /// [`Signal::slice`] writing into a caller-owned signal whose buffer is
    /// reused. `out`'s previous shape and contents are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidRange`] if the range is inverted or out of
    /// bounds (leaving `out` untouched).
    pub fn slice_into(&self, range: Range<usize>, out: &mut Signal) -> Result<(), DspError> {
        if range.start > range.end || range.end > self.len {
            return Err(DspError::InvalidRange {
                start: range.start,
                end: range.end,
                len: self.len,
            });
        }
        let out_len = range.end - range.start;
        out.fs = self.fs;
        out.len = out_len;
        out.channels = self.channels;
        out.data.clear();
        out.data.reserve(out_len * self.channels);
        for c in 0..self.channels {
            let ch = self.channel(c);
            out.data.extend_from_slice(&ch[range.clone()]);
        }
        Ok(())
    }

    /// Extracts a subset of channels as a new signal.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoChannels`] if `which` is empty and
    /// [`DspError::InvalidParameter`] if any index is out of range.
    pub fn select_channels(&self, which: &[usize]) -> Result<Signal, DspError> {
        if which.is_empty() {
            return Err(DspError::NoChannels);
        }
        let mut chans = Vec::with_capacity(which.len());
        for &c in which {
            if c >= self.channels {
                return Err(DspError::InvalidParameter(format!(
                    "channel index {c} out of range {}",
                    self.channels
                )));
            }
            chans.push(self.channel(c).to_vec());
        }
        Signal::from_channels(self.fs, chans)
    }

    /// Appends `other`'s samples in time. Both signals must have the same
    /// channel count and sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] on disagreement.
    pub fn concat(&self, other: &Signal) -> Result<Signal, DspError> {
        if self.channels != other.channels {
            return Err(DspError::ShapeMismatch(format!(
                "channel counts differ: {} vs {}",
                self.channels, other.channels
            )));
        }
        if (self.fs - other.fs).abs() > f64::EPSILON * self.fs {
            return Err(DspError::ShapeMismatch(format!(
                "sample rates differ: {} vs {}",
                self.fs, other.fs
            )));
        }
        let mut chans = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let mut v = self.channel(c).to_vec();
            v.extend_from_slice(other.channel(c));
            chans.push(v);
        }
        Signal::from_channels(self.fs, chans)
    }

    /// Applies a function to every sample in place.
    pub fn map_in_place<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns per-channel vectors (inverse of [`Signal::from_channels`]).
    pub fn to_channels(&self) -> Vec<Vec<f64>> {
        (0..self.channels)
            .map(|c| self.channel(c).to_vec())
            .collect()
    }

    /// Root-mean-square over all channels and samples.
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self.data.iter().map(|v| v * v).sum();
        (sum_sq / self.data.len() as f64).sqrt()
    }

    /// Converts a time in seconds to the nearest sample index (clamped).
    pub fn index_at(&self, t: f64) -> usize {
        ((t * self.fs).round().max(0.0) as usize).min(self.len.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sig2x4() -> Signal {
        Signal::from_channels(
            10.0,
            vec![vec![0.0, 1.0, 2.0, 3.0], vec![10.0, 11.0, 12.0, 13.0]],
        )
        .unwrap()
    }

    #[test]
    fn basic_shape() {
        let s = sig2x4();
        assert_eq!(s.len(), 4);
        assert_eq!(s.channels(), 2);
        assert_eq!(s.fs(), 10.0);
        assert!((s.duration() - 0.4).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn sample_and_channel_access() {
        let s = sig2x4();
        assert_eq!(s.sample(2, 1), 12.0);
        assert_eq!(s.channel(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.channel(1), &[10.0, 11.0, 12.0, 13.0]);
        let chans: Vec<&[f64]> = s.iter_channels().collect();
        assert_eq!(chans.len(), 2);
    }

    #[test]
    fn ragged_channels_rejected() {
        let err = Signal::from_channels(10.0, vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, DspError::RaggedChannels { channel: 1, .. }));
    }

    #[test]
    fn zero_channels_rejected() {
        assert!(matches!(
            Signal::from_channels(10.0, vec![]),
            Err(DspError::NoChannels)
        ));
    }

    #[test]
    fn bad_fs_rejected() {
        for fs in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Signal::mono(fs, vec![1.0]).is_err(), "fs={fs}");
        }
    }

    #[test]
    fn slice_matches_paper_semantics() {
        // x[n1:n2] is inclusive of n1, exclusive of n2.
        let s = sig2x4();
        let sl = s.slice(1..3).unwrap();
        assert_eq!(sl.len(), 2);
        assert_eq!(sl.channel(0), &[1.0, 2.0]);
        assert_eq!(sl.channel(1), &[11.0, 12.0]);
    }

    #[test]
    fn slice_range_checked() {
        let s = sig2x4();
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 3..2;
        assert!(s.slice(reversed).is_err());
        assert!(s.slice(0..5).is_err());
        assert!(s.slice(4..4).unwrap().is_empty());
    }

    #[test]
    fn slice_padded_zero_pads_both_ends() {
        let s = sig2x4();
        let sl = s.slice_padded(-2, 2);
        assert_eq!(sl.channel(0), &[0.0, 0.0, 0.0, 1.0]);
        let sr = s.slice_padded(3, 6);
        assert_eq!(sr.channel(0), &[3.0, 0.0, 0.0]);
        let inside = s.slice_padded(1, 3);
        assert_eq!(inside.channel(0), &[1.0, 2.0]);
        // Fully outside.
        let out = s.slice_padded(10, 12);
        assert_eq!(out.channel(1), &[0.0, 0.0]);
        // Degenerate empty.
        assert_eq!(s.slice_padded(2, 2).len(), 0);
    }

    #[test]
    fn slice_into_variants_match_allocating() {
        let s = sig2x4();
        let mut out = Signal::zeros(1.0, 1, 0).unwrap();
        s.slice_padded_into(-2, 3, &mut out);
        assert_eq!(out, s.slice_padded(-2, 3));
        // Reuse the same buffer for a different shape.
        s.slice_padded_into(3, 6, &mut out);
        assert_eq!(out, s.slice_padded(3, 6));
        s.slice_into(1..3, &mut out).unwrap();
        assert_eq!(out, s.slice(1..3).unwrap());
        let before = out.clone();
        assert!(s.slice_into(0..5, &mut out).is_err());
        assert_eq!(out, before, "failed slice_into must not disturb out");
    }

    #[test]
    fn select_channels_reorders() {
        let s = sig2x4();
        let sel = s.select_channels(&[1, 0]).unwrap();
        assert_eq!(sel.channel(0), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(sel.channel(1), &[0.0, 1.0, 2.0, 3.0]);
        assert!(s.select_channels(&[]).is_err());
        assert!(s.select_channels(&[2]).is_err());
    }

    #[test]
    fn concat_appends_in_time() {
        let s = sig2x4();
        let t = s.concat(&s).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.channel(0)[4], 0.0);
        let mono = Signal::mono(10.0, vec![1.0]).unwrap();
        assert!(s.concat(&mono).is_err());
        let wrong_fs = Signal::from_channels(20.0, s.to_channels()).unwrap();
        assert!(s.concat(&wrong_fs).is_err());
    }

    #[test]
    fn from_fn_samples_time() {
        let s = Signal::from_fn(4.0, 2, 4, |t, frame| {
            frame[0] = t;
            frame[1] = 2.0 * t;
        })
        .unwrap();
        assert_eq!(s.channel(0), &[0.0, 0.25, 0.5, 0.75]);
        assert_eq!(s.channel(1), &[0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn rms_of_constant() {
        let s = Signal::mono(1.0, vec![3.0; 16]).unwrap();
        assert!((s.rms() - 3.0).abs() < 1e-12);
        let e = Signal::zeros(1.0, 1, 0).unwrap();
        assert_eq!(e.rms(), 0.0);
    }

    #[test]
    fn index_at_clamps() {
        let s = sig2x4();
        assert_eq!(s.index_at(-1.0), 0);
        assert_eq!(s.index_at(0.1), 1);
        assert_eq!(s.index_at(99.0), 3);
    }

    #[test]
    fn map_in_place_applies() {
        let mut s = sig2x4();
        s.map_in_place(|v| v * 2.0);
        assert_eq!(s.sample(1, 1), 22.0);
    }

    proptest! {
        #[test]
        fn prop_slice_then_concat_roundtrip(len in 1usize..64, cut in 0usize..64) {
            let cut = cut.min(len);
            let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let s = Signal::mono(100.0, data).unwrap();
            let a = s.slice(0..cut).unwrap();
            let b = s.slice(cut..len).unwrap();
            let joined = a.concat(&b).unwrap();
            prop_assert_eq!(joined, s);
        }

        #[test]
        fn prop_slice_padded_agrees_with_slice_inside(len in 4usize..64, s0 in 0usize..32, w in 1usize..16) {
            let end = (s0 + w).min(len);
            let start = s0.min(end);
            let data: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let sig = Signal::mono(10.0, data).unwrap();
            let a = sig.slice(start..end).unwrap();
            let b = sig.slice_padded(start as isize, end as isize);
            prop_assert_eq!(a, b);
        }
    }
}
