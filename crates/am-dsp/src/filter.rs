//! Filters used by the discriminator and sensor models.
//!
//! The discriminator suppresses spikes in `h_dist` and `v_dist` with a
//! **trailing minimum** filter (Eq 21–22): a spike only raises the filtered
//! value if it persists for a full filter window (default 3), so isolated
//! time-noise/amplitude-noise spikes cannot cause false positives.

use crate::error::DspError;

/// Trailing-minimum filter (Eq 21–22):
/// `out[i] = min(x[max(0, i-n+1) ..= i])`.
///
/// The paper writes `min(x[i-n : i])`; for the first `n-1` samples the
/// window is truncated to the available prefix (equivalent to padding with
/// `+inf`).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `n == 0`.
pub fn trailing_min(x: &[f64], n: usize) -> Result<Vec<f64>, DspError> {
    if n == 0 {
        return Err(DspError::InvalidParameter(
            "trailing_min window must be >= 1".into(),
        ));
    }
    // Monotonic deque of indices whose values increase.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut out = Vec::with_capacity(x.len());
    for i in 0..x.len() {
        while let Some(&back) = deque.back() {
            if x[back] >= x[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if let Some(&front) = deque.front() {
            if front + n <= i {
                deque.pop_front();
            }
        }
        out.push(x[*deque.front().expect("deque is non-empty")]);
    }
    Ok(out)
}

/// Trailing (causal) moving average:
/// `out[i] = mean(x[max(0, i-n+1) ..= i])`.
///
/// Used by the Belikovetsky baseline (5-second moving average of the cosine
/// distances).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `n == 0`.
pub fn moving_average(x: &[f64], n: usize) -> Result<Vec<f64>, DspError> {
    if n == 0 {
        return Err(DspError::InvalidParameter(
            "moving_average window must be >= 1".into(),
        ));
    }
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i];
        if i >= n {
            acc -= x[i - n];
        }
        let count = (i + 1).min(n);
        out.push(acc / count as f64);
    }
    Ok(out)
}

/// Single-pole low-pass filter: `y[i] = y[i-1] + alpha (x[i] - y[i-1])`.
///
/// `alpha` in `(0, 1]`; used by sensor models for mechanical/thermal lag.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for `alpha` outside `(0, 1]`.
pub fn single_pole_lowpass(x: &[f64], alpha: f64, y0: f64) -> Result<Vec<f64>, DspError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(DspError::InvalidParameter(format!(
            "lowpass alpha must be in (0, 1], got {alpha}"
        )));
    }
    let mut y = y0;
    Ok(x.iter()
        .map(|&v| {
            y += alpha * (v - y);
            y
        })
        .collect())
}

/// Decimates by an integer factor (keeps every `factor`-th sample, starting
/// at index 0). No anti-alias filtering — callers that need it should
/// low-pass first.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `factor == 0`.
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter(
            "decimate factor must be >= 1".into(),
        ));
    }
    Ok(x.iter().step_by(factor).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trailing_min_suppresses_isolated_spike() {
        // A single spike in otherwise low data must vanish with window 3.
        let x = [0.1, 0.1, 9.0, 0.1, 0.1];
        let f = trailing_min(&x, 3).unwrap();
        assert!(f.iter().all(|&v| v <= 0.1 + 1e-12), "{f:?}");
    }

    #[test]
    fn trailing_min_passes_sustained_elevation() {
        // A deviation lasting >= the window length must survive filtering —
        // this is why real intrusions still alert (they persist).
        let x = [0.1, 5.0, 5.0, 5.0, 0.1];
        let f = trailing_min(&x, 3).unwrap();
        assert_eq!(f[3], 5.0);
    }

    #[test]
    fn trailing_min_oracle() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let f = trailing_min(&x, 3).unwrap();
        let oracle: Vec<f64> = (0..x.len())
            .map(|i| {
                let lo = i.saturating_sub(2);
                x[lo..=i].iter().cloned().fold(f64::INFINITY, f64::min)
            })
            .collect();
        assert_eq!(f, oracle);
    }

    #[test]
    fn trailing_min_window_one_is_identity() {
        let x = [2.0, 1.0, 3.0];
        assert_eq!(trailing_min(&x, 1).unwrap(), x.to_vec());
        assert!(trailing_min(&x, 0).is_err());
        assert!(trailing_min(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn moving_average_basic() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let f = moving_average(&x, 2).unwrap();
        assert_eq!(f, vec![1.0, 1.5, 2.5, 3.5]);
        assert!(moving_average(&x, 0).is_err());
    }

    #[test]
    fn lowpass_converges_to_constant_input() {
        let x = vec![1.0; 200];
        let y = single_pole_lowpass(&x, 0.1, 0.0).unwrap();
        assert!((y[199] - 1.0).abs() < 1e-8);
        assert!(y[0] < y[10] && y[10] < y[100]);
        assert!(single_pole_lowpass(&x, 0.0, 0.0).is_err());
        assert!(single_pole_lowpass(&x, 1.5, 0.0).is_err());
    }

    #[test]
    fn lowpass_alpha_one_is_identity() {
        let x = [3.0, -1.0, 2.0];
        assert_eq!(single_pole_lowpass(&x, 1.0, 7.0).unwrap(), x.to_vec());
    }

    #[test]
    fn decimate_basic() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(decimate(&x, 2).unwrap(), vec![0.0, 2.0, 4.0]);
        assert_eq!(decimate(&x, 4).unwrap(), vec![0.0, 4.0]);
        assert_eq!(decimate(&x, 1).unwrap(), x.to_vec());
        assert!(decimate(&x, 0).is_err());
    }

    proptest! {
        #[test]
        fn prop_trailing_min_matches_naive(
            x in proptest::collection::vec(-10.0f64..10.0, 0..64),
            n in 1usize..8,
        ) {
            let fast = trailing_min(&x, n).unwrap();
            let naive: Vec<f64> = (0..x.len())
                .map(|i| {
                    let lo = i.saturating_sub(n - 1);
                    x[lo..=i].iter().cloned().fold(f64::INFINITY, f64::min)
                })
                .collect();
            prop_assert_eq!(fast, naive);
        }

        #[test]
        fn prop_trailing_min_lower_bound(
            x in proptest::collection::vec(-10.0f64..10.0, 1..64),
            n in 1usize..8,
        ) {
            let f = trailing_min(&x, n).unwrap();
            for (fi, xi) in f.iter().zip(x.iter()) {
                prop_assert!(fi <= xi);
            }
        }

        #[test]
        fn prop_moving_average_bounded(
            x in proptest::collection::vec(-10.0f64..10.0, 1..64),
            n in 1usize..8,
        ) {
            let f = moving_average(&x, n).unwrap();
            let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in f {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }
}
