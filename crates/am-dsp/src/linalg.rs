//! Minimal dense linear algebra: a row-major matrix and a Jacobi
//! eigensolver for symmetric matrices.
//!
//! Exists solely to support [`crate::pca`] (the Belikovetsky baseline
//! compresses spectrogram channels with PCA); it is not a general-purpose
//! linear-algebra library.

use crate::error::DspError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, DspError> {
        if data.len() != rows * cols {
            return Err(DspError::ShapeMismatch(format!(
                "expected {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowed row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ShapeMismatch`] if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, DspError> {
        if self.cols != other.rows {
            return Err(DspError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        Ok(out)
    }

    fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Eigen-decomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in **descending** order.
    pub values: Vec<f64>,
    /// `vectors.row(i)` is the unit eigenvector for `values[i]`.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// # Errors
///
/// Returns [`DspError::ShapeMismatch`] if the matrix is not square and
/// symmetric (tolerance `1e-9` relative to the largest entry).
pub fn jacobi_eigen(a: &Matrix) -> Result<EigenDecomposition, DspError> {
    let n = a.rows();
    let scale = a.data.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    if !a.is_symmetric(1e-9 * scale) {
        return Err(DspError::ShapeMismatch(
            "jacobi_eigen requires a symmetric square matrix".into(),
        ));
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[(r, c)] * m[(r, c)];
            }
        }
        if off.sqrt() < 1e-12 * scale.max(1.0) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors (as rows of v^T; we store row k =
                // eigenvector k at the end, so accumulate column rotations).
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (out_row, (_, col)) in pairs.iter().enumerate() {
        for k in 0..n {
            vectors[(out_row, k)] = v[(k, *col)];
        }
    }
    Ok(EigenDecomposition { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&b.transpose()).is_ok());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = Matrix::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.row(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v0[0] - v0[1]).abs() < 1e-9);
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(jacobi_eigen(&a).is_err());
        let r = Matrix::zeros(2, 3);
        assert!(jacobi_eigen(&r).is_err());
    }

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        // A = V^T D V where rows of V are eigenvectors.
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        let vt = e.vectors.transpose();
        vt.matmul(&d).unwrap().matmul(&e.vectors).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_jacobi_reconstructs(seed in proptest::collection::vec(-3.0f64..3.0, 16)) {
            // Build a symmetric 4x4: S = B + B^T.
            let b = Matrix::from_rows(4, 4, seed).unwrap();
            let bt = b.transpose();
            let mut s = Matrix::zeros(4, 4);
            for r in 0..4 {
                for c in 0..4 {
                    s[(r, c)] = b[(r, c)] + bt[(r, c)];
                }
            }
            let e = jacobi_eigen(&s).unwrap();
            let back = reconstruct(&e);
            for r in 0..4 {
                for c in 0..4 {
                    prop_assert!((back[(r, c)] - s[(r, c)]).abs() < 1e-8,
                        "at ({},{}) {} vs {}", r, c, back[(r,c)], s[(r,c)]);
                }
            }
            // Eigenvalues sorted descending.
            for w in e.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
            // Eigenvectors are unit length.
            for i in 0..4 {
                let norm: f64 = e.vectors.row(i).iter().map(|v| v * v).sum();
                prop_assert!((norm - 1.0).abs() < 1e-8);
            }
        }
    }
}
