//! Digital signal processing substrate for the NSYNC reproduction.
//!
//! This crate provides everything the IDS layers need to manipulate sampled
//! side-channel signals:
//!
//! - [`Signal`]: a multi-channel, uniformly sampled time series (§V-A of the
//!   paper's notation: `x[n, c]`, slices `x[n1:n2]`, channels `x[:, c]`).
//! - [`fft`]: an in-house radix-2 complex FFT plus real-input helpers.
//! - [`stft`]: Short-Time Fourier Transform spectrograms with the window
//!   functions of Table III (Blackman–Harris, Boxcar) — a spectrogram is
//!   just another [`Signal`] with more channels and a lower sampling rate.
//! - [`metrics`]: similarity and distance functions (Pearson correlation,
//!   correlation distance Eq (14), cosine, MAE, Euclidean, Manhattan).
//! - [`tde`]: sliding-window Time Delay Estimation (§V-B) with a naive
//!   `O(N·M)` path and an FFT-accelerated zero-normalized cross-correlation
//!   path, plus TDE-with-Bias (TDEB, §VI-B Fig 5).
//! - [`filter`]: trailing-minimum spike suppression (Eq 21–22), moving
//!   average, single-pole low-pass, decimation.
//! - [`window`]: window functions (Gaussian bias window for TDEB included).
//! - [`stats`]: small statistics helpers (mean, variance, max/min, cumsum).
//! - [`simd`]: runtime-dispatched kernel layer (AVX2 / multi-accumulator
//!   scalar / legacy-ordered) behind the `AM_SIMD` override; the dense
//!   inner loops of [`metrics`], [`tde`], [`fft`] and the DTW family in
//!   `am-sync` all route through it.
//! - [`linalg`] / [`pca`]: a tiny dense symmetric eigensolver (Jacobi) and
//!   Principal Component Analysis for the Belikovetsky baseline IDS.
//! - [`resample`]: linear-interpolation resampling used by the sensor DAQ.
//!
//! # Example
//!
//! ```
//! use am_dsp::{Signal, metrics::correlation_distance};
//!
//! # fn main() -> Result<(), am_dsp::DspError> {
//! let a = Signal::from_channels(100.0, vec![vec![0.0, 1.0, 2.0, 3.0]])?;
//! let b = Signal::from_channels(100.0, vec![vec![0.0, 2.0, 4.0, 6.0]])?;
//! // Perfectly correlated channels have zero correlation distance.
//! let d = correlation_distance(a.channel(0), b.channel(0));
//! assert!(d.abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod fft;
pub mod filter;
pub mod io;
pub mod linalg;
pub mod metrics;
pub mod pca;
pub mod resample;
pub mod signal;
pub mod simd;
pub mod stats;
pub mod stft;
pub mod tde;
pub mod window;

pub use error::DspError;
pub use signal::Signal;
