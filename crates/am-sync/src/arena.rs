//! Worker-pinned scratch arenas.
//!
//! Every synchronizer kernel in this crate owns reusable scratch
//! (banded-DP rows for DTW, TDE/FFT buffers and window slices for DWM).
//! Historically each call allocated a fresh scratch; a [`SyncArena`]
//! bundles one of each so a scheduler can pin an arena per worker thread
//! and hand it to every stage callback that worker runs. After the first
//! call warms the buffers, repeated synchronization runs with **zero
//! steady-state allocation** — observable through the
//! `sync.scratch.dtw_allocs` / `sync.scratch.dwm_allocs` telemetry
//! counters, which tick only when a scratch is constructed.
//!
//! Arenas are plain owned data: they are `Send`, never shared between
//! threads concurrently, and carry no results — reusing one across
//! unrelated problems is bit-identical to fresh scratch (pinned by the
//! `*_scratch_reuse_bit_identical` property tests).

use crate::dtw::DtwScratch;
use crate::dwm::DwmScratch;

/// One worker's scratch for every synchronizer kernel in this crate.
///
/// Obtain via [`SyncArena::new`] (or `Default`), then pass to
/// [`Synchronizer::synchronize_with`](crate::Synchronizer::synchronize_with)
/// — or to the arena-aware nsync entry points built on it.
#[derive(Debug, Default)]
pub struct SyncArena {
    pub(crate) dtw: DtwScratch,
    pub(crate) dwm: DwmScratch,
}

impl SyncArena {
    /// Creates an arena with cold (empty) scratch buffers.
    pub fn new() -> Self {
        SyncArena::default()
    }
}
