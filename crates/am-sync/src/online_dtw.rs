//! Online (streaming) DTW, after Oregi et al. (2017).
//!
//! §VI-A notes that classic DTW "does not support real-time analysis" but
//! that "there is an ongoing effort to create a version of DTW that
//! supports real-time analysis". This module implements that direction as
//! an extension: the reference `b` is known up front, observed frames of
//! `a` arrive one at a time, and the detector maintains a single dynamic-
//! programming row — `O(M)` memory, `O(M)` work per frame (optionally
//! band-limited to `O(band)`).
//!
//! After each pushed frame the current best alignment endpoint
//! `j* = argmin_j D(i, j)` is exposed; `j* − i` is a streaming estimate of
//! the horizontal displacement, directly comparable to DWM's `h_disp`.

use crate::dtw::FrameView;
use crate::error::SyncError;
use am_dsp::simd;
use am_dsp::Signal;

/// Streaming DTW state against a fixed reference.
#[derive(Debug)]
pub struct OnlineDtw {
    reference: Signal,
    /// Precomputed frame-major view of the reference (frame means and
    /// norms derived once, not once per observed frame × reference frame).
    ref_view: FrameView,
    /// Reusable one-frame view of the latest observed frame.
    obs_view: FrameView,
    /// `row[j] = D(i, j)` for the most recent observed frame `i`.
    row: Vec<f64>,
    /// Previous row, swapped with `row` each push instead of reallocating.
    prev_row: Vec<f64>,
    /// Batched frame distances for the active band of the current row.
    dist: Vec<f64>,
    /// Batched `min(up, diag)` for the active band of the current row.
    mins: Vec<f64>,
    frames_seen: usize,
    /// Optional Sakoe–Chiba half-band around the diagonal (frames).
    band: Option<usize>,
}

/// Output of one [`OnlineDtw::push`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStep {
    /// Observed frame index `i` (0-based).
    pub frame: usize,
    /// Best-matching reference index `j*`.
    pub best_j: usize,
    /// `j* − i`: the streaming horizontal displacement (frames).
    pub h_disp: f64,
    /// Accumulated path cost at `(i, j*)`, normalized by `i + 1`.
    pub mean_cost: f64,
}

impl OnlineDtw {
    /// Creates a streaming matcher against `reference`.
    ///
    /// `band` limits the warp to `|j − i| <= band` (None = unconstrained).
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::TooShort`] for an empty reference.
    pub fn new(reference: Signal, band: Option<usize>) -> Result<Self, SyncError> {
        if reference.is_empty() {
            return Err(SyncError::TooShort { needed: 1, got: 0 });
        }
        let mut ref_view = FrameView::default();
        ref_view.fill(&reference);
        Ok(OnlineDtw {
            row: vec![f64::INFINITY; reference.len()],
            prev_row: vec![f64::INFINITY; reference.len()],
            dist: Vec::new(),
            mins: Vec::new(),
            ref_view,
            obs_view: FrameView::default(),
            reference,
            frames_seen: 0,
            band,
        })
    }

    /// Number of observed frames consumed so far.
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// Consumes the next observed frame (one time index of a signal with
    /// the reference's channel count) and returns the updated alignment.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Incompatible`] on channel mismatch.
    pub fn push(
        &mut self,
        frame_signal: &Signal,
        frame_index: usize,
    ) -> Result<OnlineStep, SyncError> {
        if frame_signal.channels() != self.reference.channels() {
            return Err(SyncError::Incompatible(format!(
                "frame has {} channels, reference {}",
                frame_signal.channels(),
                self.reference.channels()
            )));
        }
        let m = self.reference.len();
        let i = self.frames_seen;
        let (lo, hi) = match self.band {
            Some(band) => (i.saturating_sub(band), (i + band + 1).min(m)),
            None => (0, m),
        };
        // Observed frame stats derived once, not once per reference frame.
        self.obs_view.fill_frame(frame_signal, frame_index);
        // Roll the rows: `prev_row` becomes D(i-1, ·), `row` is refilled.
        std::mem::swap(&mut self.row, &mut self.prev_row);
        self.row.clear();
        self.row.resize(m, f64::INFINITY);
        // Row-batched DP, mirroring `dtw_windowed_with`: distances and
        // the exact elementwise `min(up, diag)` for the whole band
        // first, then the serial left-neighbor scan. `prev_row` is
        // INFINITY outside the previous band (and everywhere before the
        // first push), so no extra range bookkeeping is needed; the
        // historical `up.min(diag).min(left)` order is preserved.
        let len = hi - lo;
        self.dist.clear();
        self.dist.resize(len, 0.0);
        self.obs_view
            .distance_row(0, &self.ref_view, lo, &mut self.dist);
        self.mins.clear();
        self.mins.resize(len, f64::INFINITY);
        if lo == 0 {
            // Column 0 has no diagonal predecessor — except the virtual
            // start before (0,0), which costs nothing on the first frame.
            self.mins[0] = if i == 0 {
                self.prev_row[0].min(0.0)
            } else {
                self.prev_row[0]
            };
            if len > 1 {
                simd::min2_into(
                    &self.prev_row[1..hi],
                    &self.prev_row[..hi - 1],
                    &mut self.mins[1..],
                );
            }
        } else {
            simd::min2_into(
                &self.prev_row[lo..hi],
                &self.prev_row[lo - 1..hi - 1],
                &mut self.mins,
            );
        }
        let mut best = (0usize, f64::INFINITY);
        let mut left = f64::INFINITY;
        for jj in 0..len {
            let cost = self.dist[jj] + self.mins[jj].min(left);
            self.row[lo + jj] = cost;
            left = cost;
            if cost < best.1 {
                best = (lo + jj, cost);
            }
        }
        self.frames_seen += 1;
        Ok(OnlineStep {
            frame: i,
            best_j: best.0,
            h_disp: best.0 as f64 - i as f64,
            mean_cost: best.1 / (i + 1) as f64,
        })
    }

    /// Pushes every frame of `chunk` (a multi-frame signal), returning one
    /// step per frame.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineDtw::push`].
    pub fn push_chunk(&mut self, chunk: &Signal) -> Result<Vec<OnlineStep>, SyncError> {
        (0..chunk.len()).map(|k| self.push(chunk, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multi-channel wavy signal (>=3 channels so correlation distance is
    /// used per frame).
    fn wavy(n: usize, stretch: f64) -> Signal {
        Signal::from_channels(
            10.0,
            (0..4)
                .map(|c| {
                    (0..n)
                        .map(|i| ((i as f64 * stretch * 0.31) + c as f64 * 0.7).sin())
                        .collect()
                })
                .collect(),
        )
        .expect("rectangular")
    }

    #[test]
    fn identical_signals_track_the_diagonal() {
        let b = wavy(64, 1.0);
        let mut online = OnlineDtw::new(b.clone(), None).unwrap();
        let steps = online.push_chunk(&b).unwrap();
        assert_eq!(steps.len(), 64);
        // After warm-up the endpoint hugs the diagonal.
        for s in &steps[4..] {
            assert!(
                s.h_disp.abs() <= 2.0,
                "frame {}: h_disp {}",
                s.frame,
                s.h_disp
            );
            assert!(s.mean_cost < 0.05, "mean cost {}", s.mean_cost);
        }
        assert_eq!(online.frames_seen(), 64);
    }

    #[test]
    fn stretched_signal_shows_growing_displacement() {
        let b = wavy(96, 1.0);
        // a runs 25% faster: its frame i matches reference ~1.25 i.
        let a = wavy(64, 1.25);
        let mut online = OnlineDtw::new(b, None).unwrap();
        let steps = online.push_chunk(&a).unwrap();
        let last = steps.last().unwrap();
        assert!(
            last.h_disp > 8.0,
            "expected positive drift, got {}",
            last.h_disp
        );
    }

    #[test]
    fn band_limits_the_warp() {
        let b = wavy(64, 1.0);
        let mut online = OnlineDtw::new(b.clone(), Some(3)).unwrap();
        let steps = online.push_chunk(&b).unwrap();
        for s in &steps {
            assert!(s.h_disp.abs() <= 3.0);
        }
    }

    #[test]
    fn validation() {
        let empty = Signal::zeros(10.0, 2, 0).unwrap();
        assert!(OnlineDtw::new(empty, None).is_err());
        let b = wavy(8, 1.0);
        let mut online = OnlineDtw::new(b, None).unwrap();
        let wrong = Signal::zeros(10.0, 2, 4).unwrap();
        assert!(online.push(&wrong, 0).is_err());
    }

    #[test]
    fn streaming_matches_chunked_feeding() {
        let b = wavy(48, 1.0);
        let a = wavy(48, 1.1);
        let mut one = OnlineDtw::new(b.clone(), None).unwrap();
        let all = one.push_chunk(&a).unwrap();
        let mut two = OnlineDtw::new(b, None).unwrap();
        let mut collected = Vec::new();
        for start in (0..48).step_by(7) {
            let end = (start + 7).min(48);
            collected.extend(two.push_chunk(&a.slice(start..end).unwrap()).unwrap());
        }
        // Endpoints identical regardless of chunking.
        let ends_a: Vec<usize> = all.iter().map(|s| s.best_j).collect();
        let ends_b: Vec<usize> = collected.iter().map(|s| s.best_j).collect();
        assert_eq!(ends_a, ends_b);
    }
}
