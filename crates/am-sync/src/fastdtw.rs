//! FastDTW (Salvador & Chan, 2007): linear-time approximate DTW.
//!
//! Recursively coarsens both signals 2×, solves the coarse problem, then
//! refines within a radius-`r` corridor around the projected coarse path.
//! The paper "always use\[s\] the smallest radius for the fastest speed"
//! (radius 1), and still finds it too slow and too inaccurate compared
//! with DWM — both effects are reproduced by the benchmarks.
//!
//! Every level runs through [`dtw_windowed_with`], so the corridor DP
//! inherits the [`am_dsp::simd`] kernel dispatch (batched frame
//! distances and vectorized `min(up, diag)`) with no code of its own.

use crate::align::{hdisp_from_path, Alignment, AlignmentKind, Synchronizer};
use crate::dtw::{dtw_windowed_with, DtwResult, DtwScratch, RowWindow};
use crate::error::SyncError;
use am_dsp::Signal;
use serde::{Deserialize, Serialize};

/// Minimum size below which plain DTW is used directly.
fn min_ts(radius: usize) -> usize {
    radius + 2
}

/// Runs FastDTW with the given corridor radius.
///
/// # Errors
///
/// Same as [`dtw`](crate::dtw::dtw).
pub fn fastdtw(a: &Signal, b: &Signal, radius: usize) -> Result<DtwResult, SyncError> {
    fastdtw_with(a, b, radius, &mut DtwScratch::default())
}

/// [`fastdtw`] on a caller-owned scratch workspace. The recursion runs
/// level by level, so one scratch serves every refinement pass.
///
/// # Errors
///
/// Same as [`dtw`](crate::dtw::dtw).
pub fn fastdtw_with(
    a: &Signal,
    b: &Signal,
    radius: usize,
    scratch: &mut DtwScratch,
) -> Result<DtwResult, SyncError> {
    let _span = am_telemetry::span!("sync.fastdtw");
    fastdtw_recurse(a, b, radius, scratch)
}

fn fastdtw_recurse(
    a: &Signal,
    b: &Signal,
    radius: usize,
    scratch: &mut DtwScratch,
) -> Result<DtwResult, SyncError> {
    if a.len() <= min_ts(radius) || b.len() <= min_ts(radius) {
        let n = a.len();
        let window: RowWindow = (0..n).map(|_| (0, b.len())).collect();
        return dtw_windowed_with(a, b, &window, scratch);
    }
    let half_a = halve(a);
    let half_b = halve(b);
    let coarse = fastdtw_recurse(&half_a, &half_b, radius, scratch)?;
    let window = expand_window(&coarse.path, a.len(), b.len(), radius);
    dtw_windowed_with(a, b, &window, scratch)
}

/// Halves a signal's resolution by averaging adjacent sample pairs.
fn halve(s: &Signal) -> Signal {
    let out_len = s.len() / 2;
    let channels: Vec<Vec<f64>> = (0..s.channels())
        .map(|c| {
            let ch = s.channel(c);
            (0..out_len)
                .map(|i| (ch[2 * i] + ch[2 * i + 1]) / 2.0)
                .collect()
        })
        .collect();
    Signal::from_channels(s.fs() / 2.0, channels).expect("halve preserves shape")
}

/// Projects a coarse path to fine resolution and dilates it by `radius`,
/// producing per-row column windows that are guaranteed connected.
fn expand_window(coarse_path: &[(usize, usize)], n: usize, m: usize, radius: usize) -> RowWindow {
    let mut lo = vec![usize::MAX; n];
    let mut hi = vec![0usize; n];
    let mut mark = |i: isize, j_lo: isize, j_hi: isize| {
        if i < 0 || i >= n as isize {
            return;
        }
        let i = i as usize;
        let jl = j_lo.clamp(0, m as isize - 1) as usize;
        let jh = j_hi.clamp(0, m as isize) as usize;
        lo[i] = lo[i].min(jl);
        hi[i] = hi[i].max(jh);
    };
    let r = radius as isize;
    for &(ci, cj) in coarse_path {
        // Each coarse cell covers a 2x2 block at fine resolution.
        for di in 0..2isize {
            let i = 2 * ci as isize + di;
            let j0 = 2 * cj as isize;
            mark(i - r, j0 - r, j0 + 2 + r);
            for dd in -r..=r {
                mark(i + dd, j0 - r, j0 + 2 + r);
            }
        }
    }
    // Fill any untouched rows (possible when n is odd) from neighbors and
    // enforce monotone connectivity: row i's window must overlap or abut
    // row i-1's.
    let mut prev: (usize, usize) = (0, 1);
    for i in 0..n {
        if lo[i] == usize::MAX {
            lo[i] = prev.0;
            hi[i] = prev.1;
        }
        // Connectivity: allow stepping from the previous row.
        if lo[i] > prev.1 {
            lo[i] = prev.1 - 1;
        }
        if hi[i] < prev.0 + 1 {
            hi[i] = (prev.0 + 1).min(m);
        }
        hi[i] = hi[i].min(m).max(lo[i] + 1);
        prev = (lo[i], hi[i]);
    }
    // Last row must include m-1.
    if hi[n - 1] < m {
        hi[n - 1] = m;
    }
    if lo[n - 1] > m - 1 {
        lo[n - 1] = m - 1;
    }
    // First row must include 0.
    lo[0] = 0;
    lo.into_iter().zip(hi).collect()
}

/// The FastDTW-based synchronizer used by NSYNC/DTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DtwSynchronizer {
    /// FastDTW corridor radius; the paper uses the smallest (1).
    pub radius: usize,
}

impl Default for DtwSynchronizer {
    fn default() -> Self {
        DtwSynchronizer { radius: 1 }
    }
}

impl Synchronizer for DtwSynchronizer {
    fn synchronize(&self, a: &Signal, b: &Signal) -> Result<Alignment, SyncError> {
        let result = fastdtw(a, b, self.radius)?;
        let h_disp = hdisp_from_path(&result.path, a.len());
        Ok(Alignment {
            h_disp,
            kind: AlignmentKind::Pointwise { path: result.path },
        })
    }

    fn synchronize_with(
        &self,
        a: &Signal,
        b: &Signal,
        arena: &mut crate::SyncArena,
    ) -> Result<Alignment, SyncError> {
        let result = fastdtw_with(a, b, self.radius, &mut arena.dtw)?;
        let h_disp = hdisp_from_path(&result.path, a.len());
        Ok(Alignment {
            h_disp,
            kind: AlignmentKind::Pointwise { path: result.path },
        })
    }

    fn name(&self) -> String {
        format!("DTW(r={})", self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use proptest::prelude::*;

    fn chirp(len: usize, rate: f64) -> Signal {
        Signal::mono(
            100.0,
            (0..len)
                .map(|i| {
                    let t = i as f64 * rate;
                    (0.3 * t + 0.01 * t * t).sin()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fastdtw_matches_dtw_on_identical_signals() {
        let a = chirp(64, 1.0);
        let r = fastdtw(&a, &a, 1).unwrap();
        assert!(r.cost < 1e-9);
        assert_eq!(*r.path.first().unwrap(), (0, 0));
        assert_eq!(*r.path.last().unwrap(), (63, 63));
    }

    #[test]
    fn fastdtw_cost_close_to_exact() {
        let a = chirp(80, 1.0);
        let b = chirp(96, 0.85);
        let exact = dtw(&a, &b).unwrap();
        let approx = fastdtw(&a, &b, 2).unwrap();
        assert!(
            approx.cost <= exact.cost * 1.6 + 0.5,
            "approx {} vs exact {}",
            approx.cost,
            exact.cost
        );
        assert!(approx.cost >= exact.cost - 1e-9, "approx can't beat exact");
    }

    #[test]
    fn small_inputs_fall_through_to_exact() {
        let a = chirp(3, 1.0);
        let exact = dtw(&a, &a).unwrap();
        let fast = fastdtw(&a, &a, 1).unwrap();
        assert_eq!(exact.path, fast.path);
    }

    #[test]
    fn synchronizer_produces_pointwise_alignment() {
        let a = chirp(64, 1.0);
        let sync = DtwSynchronizer::default();
        let al = sync.synchronize(&a, &a).unwrap();
        assert_eq!(al.h_disp.len(), 64);
        assert!(al.h_disp.iter().all(|&v| v.abs() < 1e-9));
        assert!(matches!(al.kind, AlignmentKind::Pointwise { .. }));
        assert_eq!(sync.name(), "DTW(r=1)");
    }

    #[test]
    fn odd_lengths_handled() {
        let a = chirp(37, 1.0);
        let b = chirp(53, 0.9);
        let r = fastdtw(&a, &b, 1).unwrap();
        assert_eq!(*r.path.first().unwrap(), (0, 0));
        assert_eq!(*r.path.last().unwrap(), (36, 52));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_fastdtw_path_valid(
            na in 8usize..64,
            nb in 8usize..64,
            radius in 1usize..3,
            seed in 0.0f64..10.0,
        ) {
            let a = Signal::mono(10.0, (0..na).map(|i| (i as f64 * 0.7 + seed).sin()).collect()).unwrap();
            let b = Signal::mono(10.0, (0..nb).map(|i| (i as f64 * 0.5 + seed).cos()).collect()).unwrap();
            let r = fastdtw(&a, &b, radius).unwrap();
            prop_assert_eq!(*r.path.first().unwrap(), (0, 0));
            prop_assert_eq!(*r.path.last().unwrap(), (na - 1, nb - 1));
            for w in r.path.windows(2) {
                let (i0, j0) = w[0];
                let (i1, j1) = w[1];
                prop_assert!(i1 >= i0 && j1 >= j0 && (i1 - i0) <= 1 && (j1 - j0) <= 1);
                prop_assert!(i1 + j1 > i0 + j0);
            }
            prop_assert!(r.cost.is_finite() && r.cost >= 0.0);
        }

        #[test]
        fn prop_fastdtw_scratch_reuse_bit_identical(
            na in 8usize..64,
            nb in 8usize..64,
            radius in 1usize..3,
            seed in 0.0f64..10.0,
        ) {
            let a = Signal::mono(10.0, (0..na).map(|i| (i as f64 * 0.7 + seed).sin()).collect()).unwrap();
            let b = Signal::mono(10.0, (0..nb).map(|i| (i as f64 * 0.5 + seed).cos()).collect()).unwrap();
            let fresh = fastdtw(&a, &b, radius).unwrap();
            // A scratch dirtied by an unrelated problem must give the
            // same path and bitwise-identical cost.
            let mut scratch = DtwScratch::new();
            fastdtw_with(&b, &a, radius, &mut scratch).unwrap();
            let reused = fastdtw_with(&a, &b, radius, &mut scratch).unwrap();
            prop_assert_eq!(&fresh.path, &reused.path);
            prop_assert_eq!(fresh.cost.to_bits(), reused.cost.to_bits());
        }
    }
}
