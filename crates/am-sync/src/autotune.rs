//! Automatic DWM parameter selection — §VI-C's recipes as code.
//!
//! The paper prescribes how to pick each parameter from data:
//!
//! - **`t_sigma`**: "start with a large `t_sigma` and obtain the maximum
//!   value of the absolute difference of `h_disp` between any two
//!   consecutive windows. We select `t_sigma` to be a value that is larger
//!   than this maximum value."
//! - **`t_win`**: "sweep `t_win` from a small value to a large value and
//!   select the `t_win` such that the change of the overall shape of
//!   `h_disp` is the smallest with respect to `t_win`."
//! - **`eta`**: "start with a small value, typically 0.1. If DWM is unable
//!   to converge, crank up this value."
//!
//! These run on a *benign* observed/reference pair (parameter selection is
//! part of training, so no malicious data is needed — consistent with the
//! OCC story).

use crate::dwm::{dwm, DwmParams};
use crate::error::SyncError;
use am_dsp::metrics::pearson;
use am_dsp::resample::sample_at;
use am_dsp::stats::max_abs_diff;
use am_dsp::Signal;

/// Selects `t_sigma` per §VI-C: run DWM with a deliberately loose bias,
/// measure the largest window-to-window jump of `h_disp`, and return a
/// value `margin`× that jump (the paper says "larger than"; 1.5 is a
/// sensible default margin). The result is clamped to `[t_win/16,
/// t_win/2]` — the lower bound keeps the bias from pinning the track to
/// zero displacement (Fig 6(a)'s too-small-σ failure), the upper bound
/// keeps the bias meaningful at all.
///
/// # Errors
///
/// Propagates DWM failures on the probe run.
pub fn select_sigma(
    a: &Signal,
    b: &Signal,
    base: &DwmParams,
    margin: f64,
) -> Result<f64, SyncError> {
    if !(margin.is_finite() && margin >= 1.0) {
        return Err(SyncError::InvalidParameter(format!(
            "margin must be >= 1, got {margin}"
        )));
    }
    let probe = DwmParams {
        t_ext: base.t_win,         // wide search
        t_sigma: base.t_win * 2.0, // effectively unbiased
        ..*base
    };
    let alignment = dwm(a, b, &probe)?;
    let fs = a.fs();
    let max_jump_s = max_abs_diff(&alignment.h_disp) / fs;
    Ok((max_jump_s * margin).clamp(base.t_win / 16.0, base.t_win / 2.0))
}

/// Shape difference between two `h_disp` tracks of possibly different
/// lengths: `1 − pearson` after resampling the shorter onto the longer's
/// grid. 0 = identical shape.
pub fn shape_change(h_a: &[f64], t_hop_a: f64, h_b: &[f64], t_hop_b: f64) -> f64 {
    if h_a.len() < 2 || h_b.len() < 2 {
        return 1.0;
    }
    // Resample b's track onto a's time grid.
    let fs_b = 1.0 / t_hop_b;
    let resampled: Vec<f64> = (0..h_a.len())
        .map(|i| sample_at(h_b, fs_b, i as f64 * t_hop_a))
        .collect();
    1.0 - pearson(h_a, &resampled)
}

/// Selects `t_win` per §VI-C: sweep the candidates (each with the default
/// hop/ext/sigma ratios), compute the shape change between consecutive
/// candidates' `h_disp`, and pick the first candidate after which the
/// shape stops changing (minimum successive change).
///
/// # Errors
///
/// Returns [`SyncError::InvalidParameter`] for fewer than 2 candidates and
/// propagates DWM failures.
pub fn select_window(a: &Signal, b: &Signal, candidates: &[f64]) -> Result<f64, SyncError> {
    if candidates.len() < 2 {
        return Err(SyncError::InvalidParameter(
            "need at least two t_win candidates".into(),
        ));
    }
    let mut tracks = Vec::with_capacity(candidates.len());
    for &w in candidates {
        let params = DwmParams::from_window(w);
        let al = dwm(a, b, &params)?;
        // Convert to seconds so different sample scales compare fairly.
        let fs = a.fs();
        let h_s: Vec<f64> = al.h_disp.iter().map(|v| v / fs).collect();
        tracks.push((w, params.t_hop, h_s));
    }
    let mut best = (candidates[1], f64::INFINITY);
    for pair in tracks.windows(2) {
        let (_, hop_a, ref ha) = pair[0];
        let (w_b, hop_b, ref hb) = pair[1];
        let change = shape_change(ha, hop_a, hb, hop_b);
        if change < best.1 {
            best = (w_b, change);
        }
    }
    Ok(best.0)
}

/// Full §VI-C auto-tune: pick `t_win` by shape convergence, derive the
/// default ratios, then refine `t_sigma` from the loose-bias probe.
///
/// # Errors
///
/// Propagates selection failures.
pub fn auto_tune(
    a: &Signal,
    b: &Signal,
    window_candidates: &[f64],
) -> Result<DwmParams, SyncError> {
    let t_win = select_window(a, b, window_candidates)?;
    let base = DwmParams::from_window(t_win);
    let t_sigma = select_sigma(a, b, &base, 1.5)?;
    Ok(DwmParams {
        t_sigma,
        t_ext: (2.0 * t_sigma).min(t_win),
        ..base
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(fs: f64, secs: f64, warp: f64) -> Signal {
        let n = (fs * secs) as usize;
        Signal::from_fn(fs, 1, n, |t, f| {
            let ts = t * (1.0 + warp);
            f[0] = (1.1 * ts).sin() + 0.5 * (3.3 * ts + 0.4).sin() + 0.25 * (7.9 * ts).cos()
        })
        .unwrap()
    }

    #[test]
    fn select_sigma_exceeds_true_jump() {
        let fs = 50.0;
        let b = wave(fs, 80.0, 0.0);
        let a = wave(fs, 80.0, 0.004); // slow drift
        let base = DwmParams::from_window(4.0);
        let sigma = select_sigma(&a, &b, &base, 1.5).unwrap();
        // True consecutive-window drift is ~0.004 * 2 s = 8 ms; the
        // selected sigma must cover it with margin but stay well under the
        // window.
        assert!(sigma >= 0.008, "sigma {sigma}");
        assert!(sigma <= 2.0, "sigma {sigma}");
        assert!(select_sigma(&a, &b, &base, 0.5).is_err());
    }

    #[test]
    fn shape_change_zero_for_identical_tracks() {
        let h = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert!(shape_change(&h, 1.0, &h, 1.0) < 1e-9);
        // Same shape at half the hop.
        let dense: Vec<f64> = (0..9).map(|i| i as f64 / 2.0).collect();
        assert!(shape_change(&h, 1.0, &dense, 0.5) < 1e-6);
        // Opposite shape maxes out.
        let neg: Vec<f64> = h.iter().map(|v| -v).collect();
        assert!(shape_change(&h, 1.0, &neg, 1.0) > 1.9);
        assert_eq!(shape_change(&[], 1.0, &h, 1.0), 1.0);
    }

    #[test]
    fn select_window_converges_to_stable_scale() {
        let fs = 50.0;
        let b = wave(fs, 80.0, 0.0);
        let a = wave(fs, 80.0, 0.005);
        let w = select_window(&a, &b, &[1.0, 2.0, 4.0, 8.0]).unwrap();
        assert!([2.0, 4.0, 8.0].contains(&w), "picked {w}");
        assert!(select_window(&a, &b, &[4.0]).is_err());
    }

    #[test]
    fn auto_tune_produces_usable_params() {
        let fs = 50.0;
        let b = wave(fs, 80.0, 0.0);
        let a = wave(fs, 80.0, 0.005);
        let params = auto_tune(&a, &b, &[1.0, 2.0, 4.0, 8.0]).unwrap();
        // The tuned parameters must validate and synchronize the pair.
        let al = dwm(&a, &b, &params).unwrap();
        assert!(!al.is_empty());
        assert!(params.t_sigma > 0.0);
        assert!(params.t_ext <= params.t_win);
        // And they track the drift: final displacement near the truth
        // (0.5% of ~76 s of track ≈ 0.3-0.4 s).
        let fs = a.fs();
        let last = al.h_disp.last().unwrap() / fs;
        assert!(last > 0.1, "tracked {last}");
    }
}
