//! Error type for synchronizers.

use am_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Errors from dynamic synchronization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SyncError {
    /// The signals cannot be compared (shape/rate mismatch).
    Incompatible(String),
    /// One of the signals is too short for the configured windows.
    TooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter(String),
    /// An underlying DSP operation failed.
    Dsp(DspError),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Incompatible(msg) => write!(f, "incompatible signals: {msg}"),
            SyncError::TooShort { needed, got } => {
                write!(f, "signal too short: needed {needed} samples, got {got}")
            }
            SyncError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SyncError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl Error for SyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyncError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for SyncError {
    fn from(e: DspError) -> Self {
        SyncError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SyncError::from(DspError::NoChannels);
        assert!(e.to_string().contains("dsp"));
        assert!(Error::source(&e).is_some());
        assert!(SyncError::TooShort { needed: 4, got: 1 }
            .to_string()
            .contains("4"));
    }
}
