//! Dynamic Window Matching (DWM) — the paper's novel synchronizer
//! (§VI-B, Algorithm 1).
//!
//! A pair of windows slides across the observed signal `a` and the
//! reference `b`. For each window index `i`, biased Time Delay Estimation
//! (TDEB) locates `a{i}` inside an extended window of `b` centred at the
//! current low-frequency displacement estimate:
//!
//! - Eq (9): the search window `b{i; h_low[i-1]}_E` spans
//!   `±n_ext` around the expected position,
//! - Eq (13): `h_disp[i] = j − n_ext + h_low[i−1]`,
//! - Eq (12): `h_low[i] = round(η (j − n_ext) + h_low[i−1])` — the
//!   inertial track that keeps one bad estimate from running away.
//!
//! The Gaussian bias (σ = `n_sigma`) stabilizes TDE on periodic or noisy
//! windows (Fig 5). DWM is window-by-window, so it runs in real time:
//! [`DwmStream`] consumes the observed signal incrementally.
//!
//! The per-window TDEB correlation (ZNCC numerators, norms, the bias
//! multiply) bottoms out in the [`am_dsp::simd`] kernel layer via
//! [`tdeb_with`], so DWM picks up the runtime AVX2 dispatch without any
//! window logic changing.

use crate::align::{Alignment, AlignmentKind, Synchronizer};
use crate::error::SyncError;
use am_dsp::tde::{tdeb_with, TdeBackend, TdeScratch};
use am_dsp::Signal;
use serde::{Deserialize, Serialize};

/// DWM parameters in seconds (§VI-C, Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DwmParams {
    /// Window width `t_win` (s).
    pub t_win: f64,
    /// Hop `t_hop` (s); default `t_win / 2`.
    pub t_hop: f64,
    /// Extended search half-width `t_ext` (s).
    pub t_ext: f64,
    /// Gaussian bias std-dev `t_sigma` (s); default `t_ext / 2`.
    pub t_sigma: f64,
    /// Inertia `η` of the low-frequency displacement track.
    pub eta: f64,
}

impl DwmParams {
    /// Table IV parameters for the Ultimaker 3.
    pub fn um3() -> Self {
        DwmParams {
            t_win: 4.0,
            t_hop: 2.0,
            t_ext: 2.0,
            t_sigma: 1.0,
            eta: 0.1,
        }
    }

    /// Table IV parameters for the Rostock Max V3.
    pub fn rm3() -> Self {
        DwmParams {
            t_win: 1.0,
            t_hop: 0.5,
            t_ext: 0.1,
            t_sigma: 0.05,
            eta: 0.1,
        }
    }

    /// Derives a parameter set from `t_win` using the paper's default
    /// ratios: `t_hop = t_win/2`, `t_ext = t_win/2`, `t_sigma = t_ext/2`,
    /// `η = 0.1`.
    pub fn from_window(t_win: f64) -> Self {
        DwmParams {
            t_win,
            t_hop: t_win / 2.0,
            t_ext: t_win / 2.0,
            t_sigma: t_win / 4.0,
            eta: 0.1,
        }
    }

    /// Converts to sample-domain parameters at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InvalidParameter`] if any duration is
    /// non-positive, `eta` is outside `(0, 1]`, or the window degenerates
    /// to fewer than 2 samples.
    pub fn to_samples(&self, fs: f64) -> Result<SampleParams, SyncError> {
        for (name, v) in [
            ("t_win", self.t_win),
            ("t_hop", self.t_hop),
            ("t_ext", self.t_ext),
            ("t_sigma", self.t_sigma),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SyncError::InvalidParameter(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err(SyncError::InvalidParameter(format!(
                "eta must be in (0, 1], got {}",
                self.eta
            )));
        }
        let n_win = (self.t_win * fs).round() as usize;
        let n_hop = ((self.t_hop * fs).round() as usize).max(1);
        let n_ext = ((self.t_ext * fs).round() as usize).max(1);
        let n_sigma = self.t_sigma * fs;
        if n_win < 2 {
            return Err(SyncError::InvalidParameter(format!(
                "t_win = {} is under 2 samples at fs = {fs}",
                self.t_win
            )));
        }
        Ok(SampleParams {
            n_win,
            n_hop,
            n_ext,
            n_sigma,
            eta: self.eta,
        })
    }
}

/// DWM parameters in samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleParams {
    /// Window width (samples).
    pub n_win: usize,
    /// Hop (samples).
    pub n_hop: usize,
    /// Extended half-width (samples).
    pub n_ext: usize,
    /// Gaussian bias std-dev (samples).
    pub n_sigma: f64,
    /// Inertia.
    pub eta: f64,
}

/// Reusable buffers for one DWM pass: the TDE scratch plus the search and
/// observed-window signals each step would otherwise allocate. Lives in a
/// [`crate::SyncArena`] so a scheduler can pin one per worker and run
/// every DWM pass with zero steady-state allocation.
#[derive(Debug)]
pub(crate) struct DwmScratch {
    pub(crate) tde: TdeScratch,
    pub(crate) search: Signal,
    /// Observed-window slice buffer reused across windows and calls.
    pub(crate) window: Signal,
}

impl Default for DwmScratch {
    fn default() -> Self {
        am_telemetry::count!("sync.scratch.dwm_allocs");
        DwmScratch {
            tde: TdeScratch::new(),
            search: Signal::zeros(1.0, 1, 0).expect("valid empty signal"),
            window: Signal::zeros(1.0, 1, 0).expect("valid empty signal"),
        }
    }
}

/// One DWM step (Algorithm 1 lines 8–10): find `a{i}` in the extended
/// window of `b` around `h_low_prev`.
fn dwm_step(
    b: &Signal,
    window_a: &Signal,
    i: usize,
    h_low_prev: i64,
    p: &SampleParams,
    backend: TdeBackend,
    scratch: &mut DwmScratch,
) -> Result<(i64, i64), SyncError> {
    let _span = am_telemetry::span!("sync.dwm_step");
    let base = (i * p.n_hop) as i64 + h_low_prev;
    let start = base - p.n_ext as i64;
    let end = base + p.n_ext as i64 + p.n_win as i64;
    b.slice_padded_into(start as isize, end as isize, &mut scratch.search);
    let (delay, _score) = tdeb_with(
        &scratch.search,
        window_a,
        p.n_sigma,
        backend,
        &mut scratch.tde,
    )?;
    let j = delay as i64;
    let h_disp = j - p.n_ext as i64 + h_low_prev;
    let h_low = (p.eta * (j - p.n_ext as i64) as f64 + h_low_prev as f64).round() as i64;
    Ok((h_disp, h_low))
}

/// Runs batch DWM over a full observed signal.
///
/// Returns the alignment with `h_disp[i]` in samples for each window.
///
/// # Errors
///
/// Returns [`SyncError::TooShort`] if `a` does not contain a single
/// window, [`SyncError::Incompatible`] on channel/rate mismatch, and
/// propagates parameter validation errors.
pub fn dwm(a: &Signal, b: &Signal, params: &DwmParams) -> Result<Alignment, SyncError> {
    dwm_with(a, b, params, &mut DwmScratch::default())
}

/// [`dwm`] running on caller-owned scratch — the worker-pinned arena path.
/// Bit-identical to the allocating version.
pub(crate) fn dwm_with(
    a: &Signal,
    b: &Signal,
    params: &DwmParams,
    scratch: &mut DwmScratch,
) -> Result<Alignment, SyncError> {
    let _span = am_telemetry::span!("sync.dwm");
    check_compatible(a, b)?;
    let p = params.to_samples(a.fs())?;
    if a.len() < p.n_win {
        return Err(SyncError::TooShort {
            needed: p.n_win,
            got: a.len(),
        });
    }
    let n_windows = (a.len() - p.n_win) / p.n_hop + 1;
    let mut h_disp = Vec::with_capacity(n_windows);
    let mut h_low: i64 = 0;
    // Take the window buffer out of the scratch so it can be sliced into
    // while the rest of the scratch is mutably borrowed by dwm_step; the
    // zero-length placeholder does not allocate.
    let mut window_a = std::mem::replace(
        &mut scratch.window,
        Signal::zeros(1.0, 1, 0).expect("valid empty signal"),
    );
    for i in 0..n_windows {
        if let Err(e) = a.slice_into(i * p.n_hop..i * p.n_hop + p.n_win, &mut window_a) {
            scratch.window = window_a;
            return Err(SyncError::from(e));
        }
        match dwm_step(b, &window_a, i, h_low, &p, TdeBackend::Auto, scratch) {
            Ok((d, low)) => {
                h_disp.push(d as f64);
                h_low = low;
            }
            Err(e) => {
                scratch.window = window_a;
                return Err(e);
            }
        }
    }
    scratch.window = window_a;
    Ok(Alignment {
        h_disp,
        kind: AlignmentKind::Windowed {
            n_win: p.n_win,
            n_hop: p.n_hop,
        },
    })
}

fn check_compatible(a: &Signal, b: &Signal) -> Result<(), SyncError> {
    if a.channels() != b.channels() {
        return Err(SyncError::Incompatible(format!(
            "channel counts differ: {} vs {}",
            a.channels(),
            b.channels()
        )));
    }
    if (a.fs() - b.fs()).abs() > 1e-9 * a.fs() {
        return Err(SyncError::Incompatible(format!(
            "sample rates differ: {} vs {}",
            a.fs(),
            b.fs()
        )));
    }
    Ok(())
}

/// The DWM-based [`Synchronizer`] used by NSYNC/DWM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DwmSynchronizer {
    /// Time-domain parameters.
    pub params: DwmParams,
}

impl DwmSynchronizer {
    /// Wraps a parameter set.
    pub fn new(params: DwmParams) -> Self {
        DwmSynchronizer { params }
    }
}

impl Synchronizer for DwmSynchronizer {
    fn synchronize(&self, a: &Signal, b: &Signal) -> Result<Alignment, SyncError> {
        dwm(a, b, &self.params)
    }

    fn synchronize_with(
        &self,
        a: &Signal,
        b: &Signal,
        arena: &mut crate::SyncArena,
    ) -> Result<Alignment, SyncError> {
        dwm_with(a, b, &self.params, &mut arena.dwm)
    }

    fn name(&self) -> String {
        "DWM".into()
    }
}

/// Streaming DWM: the reference `b` is known in advance; observed samples
/// arrive in chunks, and each completed window yields an `h_disp` value —
/// the "real time" mode of operation DTW lacks (§VI-A).
#[derive(Debug)]
pub struct DwmStream {
    b: Signal,
    p: SampleParams,
    /// Buffered observed samples, channel-major.
    buffer: Vec<Vec<f64>>,
    next_window: usize,
    h_low: i64,
    fs: f64,
    scratch: DwmScratch,
}

impl DwmStream {
    /// Creates a stream against reference `b`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(b: Signal, params: &DwmParams) -> Result<Self, SyncError> {
        let p = params.to_samples(b.fs())?;
        Ok(DwmStream {
            buffer: vec![Vec::new(); b.channels()],
            fs: b.fs(),
            b,
            p,
            next_window: 0,
            h_low: 0,
            scratch: DwmScratch::default(),
        })
    }

    /// Number of windows emitted so far.
    pub fn windows_emitted(&self) -> usize {
        self.next_window
    }

    /// The sample-domain parameters in effect.
    pub fn sample_params(&self) -> SampleParams {
        self.p
    }

    /// The reference signal.
    pub fn reference(&self) -> &Signal {
        &self.b
    }

    /// Returns window `i` of the buffered observed signal, if complete.
    pub fn window(&self, i: usize) -> Option<Signal> {
        let start = i * self.p.n_hop;
        let end = start + self.p.n_win;
        if end > self.buffer[0].len() {
            return None;
        }
        Signal::from_channels(
            self.fs,
            self.buffer
                .iter()
                .map(|ch| ch[start..end].to_vec())
                .collect(),
        )
        .ok()
    }

    /// Feeds a chunk of observed samples; returns any newly completed
    /// `(window_index, h_disp_samples)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Incompatible`] if the chunk's shape/rate
    /// disagrees with the reference.
    pub fn push(&mut self, chunk: &Signal) -> Result<Vec<(usize, f64)>, SyncError> {
        if chunk.channels() != self.b.channels() {
            return Err(SyncError::Incompatible(format!(
                "chunk has {} channels, reference {}",
                chunk.channels(),
                self.b.channels()
            )));
        }
        if (chunk.fs() - self.fs).abs() > 1e-9 * self.fs {
            return Err(SyncError::Incompatible(format!(
                "chunk fs {} vs reference {}",
                chunk.fs(),
                self.fs
            )));
        }
        for c in 0..chunk.channels() {
            self.buffer[c].extend_from_slice(chunk.channel(c));
        }
        let mut out = Vec::new();
        loop {
            let start = self.next_window * self.p.n_hop;
            let end = start + self.p.n_win;
            if end > self.buffer[0].len() {
                break;
            }
            let window_a = Signal::from_channels(
                self.fs,
                self.buffer
                    .iter()
                    .map(|ch| ch[start..end].to_vec())
                    .collect(),
            )
            .map_err(SyncError::from)?;
            let (d, low) = dwm_step(
                &self.b,
                &window_a,
                self.next_window,
                self.h_low,
                &self.p,
                TdeBackend::Auto,
                &mut self.scratch,
            )?;
            out.push((self.next_window, d as f64));
            self.h_low = low;
            self.next_window += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A wiggly aperiodic test signal.
    fn reference(fs: f64, secs: f64) -> Signal {
        let n = (fs * secs) as usize;
        Signal::from_fn(fs, 1, n, |t, f| {
            f[0] = (1.3 * t).sin() + 0.6 * (3.1 * t + 0.5).sin() + 0.3 * (7.7 * t).cos()
        })
        .unwrap()
    }

    /// Warps time with a slow drift: t' = t + drift(t), resampling the
    /// reference — a clean model of accumulated time noise.
    fn warped(b: &Signal, drift_per_s: f64) -> Signal {
        let fs = b.fs();
        let n = b.len();
        let ch = b.channel(0);
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let t_src = t * (1.0 + drift_per_s);
                am_dsp::resample::sample_at(ch, fs, t_src)
            })
            .collect();
        Signal::mono(fs, data).unwrap()
    }

    fn params() -> DwmParams {
        DwmParams {
            t_win: 4.0,
            t_hop: 2.0,
            t_ext: 2.0,
            t_sigma: 1.0,
            eta: 0.1,
        }
    }

    #[test]
    fn table4_presets() {
        assert_eq!(DwmParams::um3().t_win, 4.0);
        assert_eq!(DwmParams::rm3().t_ext, 0.1);
        let d = DwmParams::from_window(2.0);
        assert_eq!(d.t_hop, 1.0);
        assert_eq!(d.t_sigma, 0.5);
    }

    #[test]
    fn param_validation() {
        let mut p = params();
        p.eta = 0.0;
        assert!(p.to_samples(100.0).is_err());
        p = params();
        p.t_win = -1.0;
        assert!(p.to_samples(100.0).is_err());
        p = params();
        assert!(p.to_samples(100.0).is_ok());
    }

    #[test]
    fn identical_signals_have_zero_displacement() {
        let b = reference(50.0, 60.0);
        let al = dwm(&b, &b, &params()).unwrap();
        assert!(!al.is_empty());
        for (i, &d) in al.h_disp.iter().enumerate() {
            assert_eq!(d, 0.0, "window {i}");
        }
    }

    #[test]
    fn constant_shift_is_recovered() {
        let b = reference(50.0, 60.0);
        // a = b delayed by 0.5 s: a[n] = b[n - 25] -> b must be shifted
        // +(-25)? a{i} matches b at position i*hop - 25, so h_disp = -25.
        let shift = 25usize;
        let a_data: Vec<f64> = b.channel(0)[..b.len() - shift].to_vec();
        let a = Signal::mono(50.0, a_data).unwrap();
        let b_cut = Signal::mono(50.0, b.channel(0)[shift..].to_vec()).unwrap();
        // a starts at b[0], b_cut starts at b[shift]: a{i} appears in b_cut
        // at i*hop - shift => h_disp = -shift.
        let al = dwm(&a, &b_cut, &params()).unwrap();
        // Skip the first windows (the low-frequency track needs to lock).
        let tail = &al.h_disp[al.len() / 2..];
        for &d in tail {
            assert!(
                (d + shift as f64).abs() <= 3.0,
                "expected ~-25, got {d} (tail {tail:?})"
            );
        }
    }

    #[test]
    fn slow_drift_is_tracked() {
        let fs = 50.0;
        let b = reference(fs, 120.0);
        let a = warped(&b, 0.01); // a runs 1% fast: 1.2 s drift by the end
        let al = dwm(&a, &b, &params()).unwrap();
        let last = *al.h_disp.last().unwrap();
        // At the end, a{last} corresponds to b content ~1% later:
        // h_disp should approach +0.01 * T * fs ~ +55..60 samples.
        let expected = 0.01 * (al.len() - 1) as f64 * 2.0 * fs; // hop = 2 s
        assert!(
            (last - expected).abs() < 15.0,
            "tracked {last}, expected ~{expected}"
        );
        // And the track is roughly monotone.
        let first_quarter = al.h_disp[al.len() / 4];
        let three_quarter = al.h_disp[3 * al.len() / 4];
        assert!(three_quarter > first_quarter);
    }

    #[test]
    fn too_short_signal_rejected() {
        let b = reference(50.0, 60.0);
        let a = Signal::mono(50.0, vec![0.0; 10]).unwrap();
        assert!(matches!(
            dwm(&a, &b, &params()),
            Err(SyncError::TooShort { .. })
        ));
    }

    #[test]
    fn incompatible_signals_rejected() {
        let b = reference(50.0, 30.0);
        let a2 = Signal::from_channels(50.0, vec![vec![0.0; 600], vec![0.0; 600]]).unwrap();
        assert!(dwm(&a2, &b, &params()).is_err());
        let wrong_fs = Signal::mono(60.0, b.channel(0).to_vec()).unwrap();
        assert!(dwm(&wrong_fs, &b, &params()).is_err());
    }

    #[test]
    fn synchronizer_trait_roundtrip() {
        let b = reference(50.0, 40.0);
        let s = DwmSynchronizer::new(params());
        let al = s.synchronize(&b, &b).unwrap();
        assert!(matches!(
            al.kind,
            AlignmentKind::Windowed {
                n_win: 200,
                n_hop: 100
            }
        ));
        assert_eq!(s.name(), "DWM");
    }

    #[test]
    fn streaming_matches_batch() {
        let fs = 50.0;
        let b = reference(fs, 80.0);
        let a = warped(&b, 0.005);
        let batch = dwm(&a, &b, &params()).unwrap();
        let mut stream = DwmStream::new(b, &params()).unwrap();
        let mut collected = Vec::new();
        let chunk_len = 160; // 3.2 s chunks
        let mut i = 0;
        while i < a.len() {
            let end = (i + chunk_len).min(a.len());
            let chunk = a.slice(i..end).unwrap();
            collected.extend(stream.push(&chunk).unwrap());
            i = end;
        }
        assert_eq!(collected.len(), batch.len());
        for ((wi, d), bd) in collected.iter().zip(batch.h_disp.iter()) {
            assert_eq!(*d, *bd, "window {wi}");
        }
        assert_eq!(stream.windows_emitted(), batch.len());
    }

    #[test]
    fn streaming_rejects_bad_chunks() {
        let b = reference(50.0, 20.0);
        let mut stream = DwmStream::new(b, &params()).unwrap();
        let wrong_ch = Signal::from_channels(50.0, vec![vec![0.0; 10], vec![0.0; 10]]).unwrap();
        assert!(stream.push(&wrong_ch).is_err());
        let wrong_fs = Signal::mono(99.0, vec![0.0; 10]).unwrap();
        assert!(stream.push(&wrong_fs).is_err());
    }

    #[test]
    fn runaway_is_damped_by_low_frequency_track() {
        // Feed a window of pure noise mid-signal: h_low must not jump by
        // more than eta * n_ext per window.
        let fs = 50.0;
        let b = reference(fs, 60.0);
        let mut a = b.clone();
        // Corrupt 4 s in the middle.
        let mid = a.len() / 2;
        for n in mid..mid + 200 {
            let v = ((n * 2654435761) % 1000) as f64 / 500.0 - 1.0;
            a.channel_mut(0)[n] = v;
        }
        let al = dwm(&a, &b, &params()).unwrap();
        // After the corruption the track must return near zero.
        let last = *al.h_disp.last().unwrap();
        assert!(last.abs() <= 5.0, "did not re-lock: {last}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        #[test]
        fn prop_constant_shift_recovered(shift in 5usize..40) {
            // For any moderate constant delay, the locked track converges
            // to -shift (see constant_shift_is_recovered for the sign
            // convention).
            let b = reference(50.0, 60.0);
            let a = Signal::mono(50.0, b.channel(0)[..b.len() - shift].to_vec()).unwrap();
            let b_cut = Signal::mono(50.0, b.channel(0)[shift..].to_vec()).unwrap();
            let al = dwm(&a, &b_cut, &params()).unwrap();
            let tail = &al.h_disp[al.len() * 3 / 4..];
            for &d in tail {
                proptest::prop_assert!(
                    (d + shift as f64).abs() <= 4.0,
                    "shift {}: got {}", shift, d
                );
            }
        }
    }
}
