//! Dynamic synchronization (DSYNC, §VI): finding the timing relationship
//! between two side-channel signals in the presence of time noise.
//!
//! Two synchronizers are provided:
//!
//! - [`dtw`] / [`fastdtw`]: the existing point-based method, Dynamic Time
//!   Warping (Sakoe–Chiba) and its linear-time approximation FastDTW
//!   (Salvador & Chan), which the paper uses as the baseline fine-DSYNC,
//! - [`dwm`]: the paper's novel window-based method, **Dynamic Window
//!   Matching**, built on biased Time Delay Estimation (TDEB) with an
//!   inertial low-frequency displacement track (Eq 9–13), plus a
//!   streaming variant ([`dwm::DwmStream`]) for real-time operation.
//!
//! Both produce an [`Alignment`]: the horizontal-displacement array
//! `h_disp` plus the bookkeeping NSYNC's comparator needs to pair up
//! corresponding points/windows.

pub mod align;
pub mod arena;
pub mod autotune;
pub mod dtw;
pub mod dwm;
pub mod error;
pub mod fastdtw;
pub mod online_dtw;

pub use align::{Alignment, AlignmentKind, Synchronizer};
pub use arena::SyncArena;
pub use dwm::{DwmParams, DwmStream, DwmSynchronizer};
pub use error::SyncError;
pub use fastdtw::DtwSynchronizer;
pub use online_dtw::OnlineDtw;
