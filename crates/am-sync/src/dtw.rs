//! Full Dynamic Time Warping (Sakoe & Chiba, 1978).
//!
//! `O(N·M)` time and memory; used directly on short signals and as the
//! base case / windowed refinement step of [`crate::fastdtw`]. The point
//! distance is the paper's correlation distance computed **across
//! channels** at each time index, which is why the paper applies DTW to
//! spectrograms (many channels per frame) and not to raw 1–6-channel
//! signals; for signals with fewer than 3 channels we fall back to the
//! mean absolute difference.

use crate::error::SyncError;
use am_dsp::metrics;
use am_dsp::Signal;

/// Result of a DTW run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtwResult {
    /// Warp path: `(i, j)` pairs, monotone, from `(0,0)` to `(N-1,M-1)`.
    pub path: Vec<(usize, usize)>,
    /// Accumulated cost along the path.
    pub cost: f64,
}

/// Per-row search window: `(lo, hi)` — columns `lo..hi` are admissible.
pub type RowWindow = Vec<(usize, usize)>;

/// Distance between frame `i` of `a` and frame `j` of `b` across channels.
pub fn frame_distance(a: &Signal, i: usize, b: &Signal, j: usize) -> f64 {
    let c = a.channels();
    if c >= 3 {
        let u: Vec<f64> = (0..c).map(|ch| a.sample(i, ch)).collect();
        let v: Vec<f64> = (0..c).map(|ch| b.sample(j, ch)).collect();
        metrics::correlation_distance(&u, &v)
    } else {
        let mut acc = 0.0;
        for ch in 0..c {
            acc += (a.sample(i, ch) - b.sample(j, ch)).abs();
        }
        acc / c as f64
    }
}

/// Full DTW over all cells.
///
/// # Errors
///
/// Returns [`SyncError::Incompatible`] for mismatched channel counts and
/// [`SyncError::TooShort`] for empty inputs.
pub fn dtw(a: &Signal, b: &Signal) -> Result<DtwResult, SyncError> {
    let n = a.len();
    let window: RowWindow = (0..n).map(|_| (0, b.len())).collect();
    dtw_windowed(a, b, &window)
}

/// DTW restricted to a per-row column window (used by FastDTW).
///
/// Rows whose window is empty are illegal; the window must allow a
/// monotone path from `(0,0)` to `(N-1,M-1)`.
///
/// # Errors
///
/// Same as [`dtw`], plus [`SyncError::InvalidParameter`] if the window
/// disconnects the path.
pub fn dtw_windowed(a: &Signal, b: &Signal, window: &RowWindow) -> Result<DtwResult, SyncError> {
    if a.channels() != b.channels() {
        return Err(SyncError::Incompatible(format!(
            "channel counts differ: {} vs {}",
            a.channels(),
            b.channels()
        )));
    }
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Err(SyncError::TooShort { needed: 1, got: 0 });
    }
    if window.len() != n {
        return Err(SyncError::InvalidParameter(format!(
            "window has {} rows for {} frames",
            window.len(),
            n
        )));
    }
    // Row-sparse cost storage.
    let mut row_lo = vec![0usize; n];
    let mut costs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for (i, &(lo, hi)) in window.iter().enumerate() {
        let lo = lo.min(m);
        let hi = hi.min(m);
        if lo >= hi {
            return Err(SyncError::InvalidParameter(format!(
                "empty window at row {i}"
            )));
        }
        row_lo[i] = lo;
        costs.push(vec![f64::INFINITY; hi - lo]);
    }
    let get = |costs: &Vec<Vec<f64>>, i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 {
            return if i == -1 && j == -1 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let (i, j) = (i as usize, j as usize);
        if i >= n {
            return f64::INFINITY;
        }
        let lo = row_lo[i];
        if j < lo || j >= lo + costs[i].len() {
            return f64::INFINITY;
        }
        costs[i][j - lo]
    };
    for i in 0..n {
        let lo = row_lo[i];
        let len = costs[i].len();
        for jj in 0..len {
            let j = lo + jj;
            let d = frame_distance(a, i, b, j);
            let best = get(&costs, i as isize - 1, j as isize)
                .min(get(&costs, i as isize, j as isize - 1))
                .min(get(&costs, i as isize - 1, j as isize - 1));
            costs[i][jj] = d + best;
        }
    }
    let total = get(&costs, n as isize - 1, m as isize - 1);
    if !total.is_finite() {
        return Err(SyncError::InvalidParameter(
            "search window disconnects the warp path".into(),
        ));
    }
    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n as isize - 1, m as isize - 1);
    path.push((i as usize, j as usize));
    while i > 0 || j > 0 {
        let diag = get(&costs, i - 1, j - 1);
        let up = get(&costs, i - 1, j);
        let left = get(&costs, i, j - 1);
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
        path.push((i.max(0) as usize, j.max(0) as usize));
    }
    path.reverse();
    Ok(DtwResult { path, cost: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::hdisp_from_path;

    fn mono(v: Vec<f64>) -> Signal {
        Signal::mono(10.0, v).unwrap()
    }

    #[test]
    fn identical_signals_take_the_diagonal() {
        let a = mono(vec![0.0, 1.0, 2.0, 1.0, 0.0, -1.0]);
        let r = dtw(&a, &a).unwrap();
        assert!(r.cost.abs() < 1e-12);
        let expected: Vec<(usize, usize)> = (0..6).map(|i| (i, i)).collect();
        assert_eq!(r.path, expected);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = mono(vec![0.0, 1.0, 3.0, 2.0, 0.0]);
        let b = mono(vec![0.0, 0.5, 1.0, 3.0, 3.0, 2.0, 0.0]);
        let r = dtw(&a, &b).unwrap();
        assert_eq!(*r.path.first().unwrap(), (0, 0));
        assert_eq!(*r.path.last().unwrap(), (4, 6));
        for w in r.path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn warping_absorbs_a_time_stretch() {
        // b is a 2x time-stretched copy of a: DTW cost stays near zero and
        // h_disp grows roughly linearly.
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = dtw(&mono(a), &mono(b)).unwrap();
        // Cost accumulates over ~96 path steps; a small per-step residual
        // from discrete warping is expected.
        assert!(r.cost / (r.path.len() as f64) < 0.1, "cost {}", r.cost);
        let h = hdisp_from_path(&r.path, 32);
        assert!(h[31] > 20.0, "end displacement {}", h[31]);
    }

    #[test]
    fn multichannel_uses_correlation_across_channels() {
        // 4-channel frames; b's frames are scaled copies of a's: zero
        // correlation distance regardless of gain.
        let n = 10;
        let a = Signal::from_channels(
            10.0,
            (0..4)
                .map(|c| (0..n).map(|i| ((i + c) as f64).sin()).collect())
                .collect(),
        )
        .unwrap();
        let b = Signal::from_channels(
            10.0,
            (0..4)
                .map(|c| (0..n).map(|i| 3.0 * ((i + c) as f64).sin()).collect())
                .collect(),
        )
        .unwrap();
        let r = dtw(&a, &b).unwrap();
        assert!(r.cost < 1e-9, "gain-invariant cost, got {}", r.cost);
    }

    #[test]
    fn incompatible_inputs_rejected() {
        let a = mono(vec![1.0, 2.0]);
        let b2 = Signal::from_channels(10.0, vec![vec![1.0], vec![1.0]]).unwrap();
        assert!(dtw(&a, &b2).is_err());
        let empty = Signal::zeros(10.0, 1, 0).unwrap();
        assert!(dtw(&a, &empty).is_err());
    }

    #[test]
    fn windowed_dtw_respects_window() {
        let a = mono((0..8).map(|i| i as f64).collect());
        let b = mono((0..8).map(|i| i as f64).collect());
        // Sakoe-Chiba band of width 1.
        let window: RowWindow = (0..8usize)
            .map(|i| (i.saturating_sub(1), (i + 2).min(8)))
            .collect();
        let r = dtw_windowed(&a, &b, &window).unwrap();
        for &(i, j) in &r.path {
            assert!(j + 1 >= i && j <= i + 1, "({i},{j}) outside band");
        }
    }

    #[test]
    fn disconnected_window_is_an_error() {
        let a = mono(vec![1.0, 2.0, 3.0]);
        let b = mono(vec![1.0, 2.0, 3.0]);
        // Row 1 only allows column 0 while row 0 only allows column 2:
        // no monotone path.
        let window: RowWindow = vec![(2, 3), (0, 1), (2, 3)];
        assert!(dtw_windowed(&a, &b, &window).is_err());
        let bad_rows: RowWindow = vec![(0, 3)];
        assert!(dtw_windowed(&a, &b, &bad_rows).is_err());
        let empty_row: RowWindow = vec![(0, 3), (3, 3), (0, 3)];
        assert!(dtw_windowed(&a, &b, &empty_row).is_err());
    }
}
