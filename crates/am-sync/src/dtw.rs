//! Full Dynamic Time Warping (Sakoe & Chiba, 1978).
//!
//! `O(N·M)` time and memory; used directly on short signals and as the
//! base case / windowed refinement step of [`crate::fastdtw`]. The point
//! distance is the paper's correlation distance computed **across
//! channels** at each time index, which is why the paper applies DTW to
//! spectrograms (many channels per frame) and not to raw 1–6-channel
//! signals; for signals with fewer than 3 channels we fall back to the
//! mean absolute difference.

use crate::error::SyncError;
use am_dsp::simd;
use am_dsp::Signal;
use std::cell::RefCell;

/// Result of a DTW run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtwResult {
    /// Warp path: `(i, j)` pairs, monotone, from `(0,0)` to `(N-1,M-1)`.
    pub path: Vec<(usize, usize)>,
    /// Accumulated cost along the path.
    pub cost: f64,
}

/// Per-row search window: `(lo, hi)` — columns `lo..hi` are admissible.
pub type RowWindow = Vec<(usize, usize)>;

thread_local! {
    /// Borrowed frame buffers for [`frame_distance`], reused across
    /// calls: the reference oracle allocates nothing in steady state.
    static FRAME_BUF: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Distance between frame `i` of `a` and frame `j` of `b` across channels.
///
/// Reference implementation: the DP loop runs on the precomputed
/// [`FrameView`] equivalent. Both route through the same `am_dsp::simd`
/// kernels in the same order (gathered frame → mean → center + squared
/// norm → numerator dot), so they are bit-identical under **every**
/// dispatch backend — the FrameView property tests rely on this oracle
/// holding on the reassociated fast path too, not just the default
/// bit-stable one.
pub fn frame_distance(a: &Signal, i: usize, b: &Signal, j: usize) -> f64 {
    let c = a.channels();
    if c >= 3 {
        FRAME_BUF.with(|buf| {
            let (u, v) = &mut *buf.borrow_mut();
            u.clear();
            v.clear();
            u.extend((0..c).map(|ch| a.sample(i, ch)));
            v.extend((0..c).map(|ch| b.sample(j, ch)));
            let backend = simd::active().reduction;
            let mu = simd::sum_with(backend, u) / c as f64;
            let mv = simd::sum_with(backend, v) / c as f64;
            let sq_u = simd::center_and_sq_norm_with(backend, u, mu);
            let sq_v = simd::center_and_sq_norm_with(backend, v, mv);
            let num = simd::dot_with(backend, u, v);
            let denom = (sq_u * sq_v).sqrt();
            let r = if denom <= f64::EPSILON * c as f64 {
                0.0
            } else {
                (num / denom).clamp(-1.0, 1.0)
            };
            1.0 - r
        })
    } else {
        let mut acc = 0.0;
        for ch in 0..c {
            acc += (a.sample(i, ch) - b.sample(j, ch)).abs();
        }
        acc / c as f64
    }
}

/// Frame-major precomputation of one signal for the DTW inner loop.
///
/// `Signal` storage is channel-major, so reading one time frame across
/// channels is a strided walk; on top of that, [`frame_distance`] built two
/// `Vec`s and re-derived the frame means on **every** O(N·M) cell. A
/// `FrameView` transposes to frame-major once and, in correlation mode
/// (≥ 3 channels), pre-centers each frame and caches its squared norm —
/// the only per-cell work left is the numerator dot product.
///
/// Bit-identity with [`frame_distance`]: `stats::mean`, the centered
/// values, and the squared-norm accumulator are each computed with the
/// same values in the same order as the fused loop in
/// `metrics::pearson`, and the per-cell numerator follows the identical
/// channel order, so every intermediate f64 matches exactly.
#[derive(Debug, Default)]
pub struct FrameView {
    channels: usize,
    /// Frame-major samples; mean-centered per frame in correlation mode.
    frames: Vec<f64>,
    /// Per-frame `Σ centered²`; empty in MAE mode (< 3 channels).
    sq: Vec<f64>,
}

impl FrameView {
    /// Fills the view from a signal, reusing existing capacity.
    pub fn fill(&mut self, s: &Signal) {
        let c = s.channels();
        let n = s.len();
        self.channels = c;
        self.frames.clear();
        self.frames.resize(c * n, 0.0);
        for ch in 0..c {
            let data = s.channel(ch);
            for (i, &v) in data.iter().enumerate() {
                self.frames[i * c + ch] = v;
            }
        }
        self.sq.clear();
        if c >= 3 {
            self.sq.reserve(n);
            let backend = simd::active().reduction;
            for i in 0..n {
                let frame = &mut self.frames[i * c..(i + 1) * c];
                // Same kernels, in the same order, as `frame_distance`.
                let mu = simd::sum_with(backend, frame) / c as f64;
                self.sq
                    .push(simd::center_and_sq_norm_with(backend, frame, mu));
            }
        }
    }

    /// Fills the view with a single frame (`index`) of a signal — the
    /// shape [`OnlineDtw`](crate::online_dtw::OnlineDtw) consumes, where
    /// one observed frame is compared against every reference frame.
    pub fn fill_frame(&mut self, s: &Signal, index: usize) {
        let c = s.channels();
        self.channels = c;
        self.frames.clear();
        self.frames.reserve(c);
        for ch in 0..c {
            self.frames.push(s.sample(index, ch));
        }
        self.sq.clear();
        if c >= 3 {
            let backend = simd::active().reduction;
            let mu = simd::sum_with(backend, &self.frames) / c as f64;
            self.sq
                .push(simd::center_and_sq_norm_with(backend, &mut self.frames, mu));
        }
    }

    /// Distance between frame `i` of `self` and frame `j` of `other`;
    /// bit-identical to [`frame_distance`] on the source signals.
    ///
    /// # Panics
    ///
    /// Panics if either frame index is out of range.
    #[inline]
    pub fn distance(&self, i: usize, other: &FrameView, j: usize) -> f64 {
        let c = self.channels;
        let backend = simd::active().reduction;
        let u = &self.frames[i * c..(i + 1) * c];
        let v = &other.frames[j * c..(j + 1) * c];
        if c >= 3 {
            let num = simd::dot_with(backend, u, v);
            let denom = (self.sq[i] * other.sq[j]).sqrt();
            let r = if denom <= f64::EPSILON * c as f64 {
                0.0
            } else {
                (num / denom).clamp(-1.0, 1.0)
            };
            1.0 - r
        } else {
            simd::abs_diff_sum_with(backend, u, v) / c as f64
        }
    }

    /// One DP row of distances: `out[jj] = distance(i, other, lo + jj)`.
    /// `other`'s frames are frame-major and contiguous, so the row is a
    /// fixed frame dotted against a sliding contiguous window — the
    /// dispatch lookup and the per-frame invariants (`u`, `sq[i]`, the
    /// epsilon) are hoisted out of the loop.
    ///
    /// # Panics
    ///
    /// Panics if any touched frame index is out of range.
    pub fn distance_row(&self, i: usize, other: &FrameView, lo: usize, out: &mut [f64]) {
        let c = self.channels;
        let backend = simd::active().reduction;
        let u = &self.frames[i * c..(i + 1) * c];
        if c >= 3 {
            let sq_i = self.sq[i];
            let eps = f64::EPSILON * c as f64;
            for (jj, o) in out.iter_mut().enumerate() {
                let j = lo + jj;
                let v = &other.frames[j * c..(j + 1) * c];
                let num = simd::dot_with(backend, u, v);
                let denom = (sq_i * other.sq[j]).sqrt();
                let r = if denom <= eps {
                    0.0
                } else {
                    (num / denom).clamp(-1.0, 1.0)
                };
                *o = 1.0 - r;
            }
        } else {
            for (jj, o) in out.iter_mut().enumerate() {
                let j = lo + jj;
                let v = &other.frames[j * c..(j + 1) * c];
                *o = simd::abs_diff_sum_with(backend, u, v) / c as f64;
            }
        }
    }
}

/// Reusable workspace for [`dtw_with`] / [`dtw_windowed_with`]: the two
/// frame views plus the flat banded cost matrix. One scratch threaded
/// through a FastDTW recursion (or a grid worker) makes the kernels
/// allocation-free in steady state.
#[derive(Debug)]
pub struct DtwScratch {
    av: FrameView,
    bv: FrameView,
    /// Band cell costs, rows concatenated.
    band: Vec<f64>,
    /// Per-row start offset into `band`.
    row_off: Vec<usize>,
    /// Per-row first admissible column.
    row_lo: Vec<usize>,
    /// Per-row band width.
    row_len: Vec<usize>,
    /// Batched frame distances for the current row.
    dist: Vec<f64>,
    /// Batched `min(up, diag)` for the current row.
    mins: Vec<f64>,
}

impl Default for DtwScratch {
    fn default() -> Self {
        am_telemetry::count!("sync.scratch.dtw_allocs");
        DtwScratch {
            av: FrameView::default(),
            bv: FrameView::default(),
            band: Vec::new(),
            row_off: Vec::new(),
            row_lo: Vec::new(),
            row_len: Vec::new(),
            dist: Vec::new(),
            mins: Vec::new(),
        }
    }
}

impl DtwScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DtwScratch::default()
    }
}

/// Full DTW over all cells.
///
/// # Errors
///
/// Returns [`SyncError::Incompatible`] for mismatched channel counts and
/// [`SyncError::TooShort`] for empty inputs.
pub fn dtw(a: &Signal, b: &Signal) -> Result<DtwResult, SyncError> {
    dtw_with(a, b, &mut DtwScratch::default())
}

/// [`dtw`] on a caller-owned scratch workspace.
///
/// # Errors
///
/// Same as [`dtw`].
pub fn dtw_with(a: &Signal, b: &Signal, scratch: &mut DtwScratch) -> Result<DtwResult, SyncError> {
    let n = a.len();
    let window: RowWindow = (0..n).map(|_| (0, b.len())).collect();
    dtw_windowed_with(a, b, &window, scratch)
}

/// DTW restricted to a per-row column window (used by FastDTW).
///
/// Rows whose window is empty are illegal; the window must allow a
/// monotone path from `(0,0)` to `(N-1,M-1)`.
///
/// # Errors
///
/// Same as [`dtw`], plus [`SyncError::InvalidParameter`] if the window
/// disconnects the path.
pub fn dtw_windowed(a: &Signal, b: &Signal, window: &RowWindow) -> Result<DtwResult, SyncError> {
    dtw_windowed_with(a, b, window, &mut DtwScratch::default())
}

/// [`dtw_windowed`] on a caller-owned scratch workspace; bit-identical
/// results, no steady-state allocation beyond the returned path.
///
/// # Errors
///
/// Same as [`dtw_windowed`].
pub fn dtw_windowed_with(
    a: &Signal,
    b: &Signal,
    window: &RowWindow,
    scratch: &mut DtwScratch,
) -> Result<DtwResult, SyncError> {
    let _span = am_telemetry::span!("sync.dtw");
    if a.channels() != b.channels() {
        return Err(SyncError::Incompatible(format!(
            "channel counts differ: {} vs {}",
            a.channels(),
            b.channels()
        )));
    }
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Err(SyncError::TooShort { needed: 1, got: 0 });
    }
    if window.len() != n {
        return Err(SyncError::InvalidParameter(format!(
            "window has {} rows for {} frames",
            window.len(),
            n
        )));
    }
    // Lay out the flat band.
    scratch.row_off.clear();
    scratch.row_lo.clear();
    scratch.row_len.clear();
    let mut cells = 0usize;
    for (i, &(lo, hi)) in window.iter().enumerate() {
        let lo = lo.min(m);
        let hi = hi.min(m);
        if lo >= hi {
            return Err(SyncError::InvalidParameter(format!(
                "empty window at row {i}"
            )));
        }
        scratch.row_off.push(cells);
        scratch.row_lo.push(lo);
        scratch.row_len.push(hi - lo);
        cells += hi - lo;
    }
    scratch.av.fill(a);
    scratch.bv.fill(b);
    scratch.band.clear();
    scratch.band.resize(cells, f64::INFINITY);
    let (row_off, row_lo, row_len) = (&scratch.row_off, &scratch.row_lo, &scratch.row_len);
    let get = |band: &[f64], i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 {
            return if i == -1 && j == -1 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let (i, j) = (i as usize, j as usize);
        if i >= n {
            return f64::INFINITY;
        }
        let lo = row_lo[i];
        if j < lo || j >= lo + row_len[i] {
            return f64::INFINITY;
        }
        band[row_off[i] + j - lo]
    };
    // Row-batched DP: the expensive frame distances and the exact
    // elementwise `min(up, diag)` are computed for the whole row first
    // (vectorizable), leaving only the cheap serial left-neighbor scan.
    // `min` over non-NaN values is associative and commutative, so
    // `(up.min(diag)).min(left)` is bit-identical to the historical
    // `up.min(left).min(diag)`.
    for i in 0..n {
        let lo = row_lo[i];
        let off = row_off[i];
        let len = row_len[i];
        scratch.dist.clear();
        scratch.dist.resize(len, 0.0);
        scratch
            .av
            .distance_row(i, &scratch.bv, lo, &mut scratch.dist);
        scratch.mins.clear();
        scratch.mins.resize(len, f64::INFINITY);
        if i == 0 {
            // Virtual start cell: only (0,0) has a finite predecessor.
            if lo == 0 {
                scratch.mins[0] = 0.0;
            }
        } else {
            let plo = row_lo[i - 1];
            let plen = row_len[i - 1];
            let prev = &scratch.band[row_off[i - 1]..row_off[i - 1] + plen];
            // Columns where the up / diagonal predecessor falls inside
            // the previous row's band.
            let ustart = lo.max(plo);
            let uend = (lo + len).min(plo + plen);
            let dstart = lo.max(plo + 1);
            let dend = (lo + len).min(plo + plen + 1);
            // Up-only prefix (at most one column: `dstart <= ustart + 1`
            // by construction), both-overlap middle, diag-only suffix.
            if ustart < uend.min(dstart) {
                scratch.mins[ustart - lo] = prev[ustart - plo];
            }
            if dstart < uend {
                simd::min2_into(
                    &prev[dstart - plo..uend - plo],
                    &prev[dstart - 1 - plo..uend - 1 - plo],
                    &mut scratch.mins[dstart - lo..uend - lo],
                );
            }
            for j in dstart.max(uend)..dend {
                scratch.mins[j - lo] = prev[j - 1 - plo];
            }
        }
        let mut left = f64::INFINITY;
        for jj in 0..len {
            let cost = scratch.dist[jj] + scratch.mins[jj].min(left);
            scratch.band[off + jj] = cost;
            left = cost;
        }
    }
    let total = get(&scratch.band, n as isize - 1, m as isize - 1);
    if !total.is_finite() {
        return Err(SyncError::InvalidParameter(
            "search window disconnects the warp path".into(),
        ));
    }
    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n as isize - 1, m as isize - 1);
    path.push((i as usize, j as usize));
    while i > 0 || j > 0 {
        let diag = get(&scratch.band, i - 1, j - 1);
        let up = get(&scratch.band, i - 1, j);
        let left = get(&scratch.band, i, j - 1);
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
        path.push((i.max(0) as usize, j.max(0) as usize));
    }
    path.reverse();
    Ok(DtwResult { path, cost: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::hdisp_from_path;
    use proptest::prelude::*;

    fn mono(v: Vec<f64>) -> Signal {
        Signal::mono(10.0, v).unwrap()
    }

    /// Straightforward full-matrix DP on [`frame_distance`]: the pre-
    /// optimization semantics, kept as the oracle for the banded
    /// scratch-based kernel.
    fn reference_dtw(a: &Signal, b: &Signal) -> (Vec<(usize, usize)>, f64) {
        let (n, m) = (a.len(), b.len());
        let mut d = vec![vec![f64::INFINITY; m]; n];
        for i in 0..n {
            for j in 0..m {
                let up = if i > 0 { d[i - 1][j] } else { f64::INFINITY };
                let left = if j > 0 { d[i][j - 1] } else { f64::INFINITY };
                let diag = if i > 0 && j > 0 {
                    d[i - 1][j - 1]
                } else if i == 0 && j == 0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                d[i][j] = frame_distance(a, i, b, j) + up.min(left).min(diag);
            }
        }
        let mut path = Vec::new();
        let (mut i, mut j) = (n - 1, m - 1);
        path.push((i, j));
        while i > 0 || j > 0 {
            let diag = if i > 0 && j > 0 {
                d[i - 1][j - 1]
            } else {
                f64::INFINITY
            };
            let up = if i > 0 { d[i - 1][j] } else { f64::INFINITY };
            let left = if j > 0 { d[i][j - 1] } else { f64::INFINITY };
            if diag <= up && diag <= left {
                i -= 1;
                j -= 1;
            } else if up <= left {
                i -= 1;
            } else {
                j -= 1;
            }
            path.push((i, j));
        }
        path.reverse();
        (path, d[n - 1][m - 1])
    }

    /// Deterministic pseudo-random multi-channel signal.
    fn pseudo(len: usize, channels: usize, seed: u64) -> Signal {
        Signal::from_channels(
            10.0,
            (0..channels)
                .map(|c| {
                    (0..len)
                        .map(|i| {
                            let x = (i as u64)
                                .wrapping_mul(2654435761)
                                .wrapping_add(c as u64 * 97)
                                .wrapping_add(seed.wrapping_mul(131));
                            (x % 1000) as f64 / 250.0 - 2.0
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_signals_take_the_diagonal() {
        let a = mono(vec![0.0, 1.0, 2.0, 1.0, 0.0, -1.0]);
        let r = dtw(&a, &a).unwrap();
        assert!(r.cost.abs() < 1e-12);
        let expected: Vec<(usize, usize)> = (0..6).map(|i| (i, i)).collect();
        assert_eq!(r.path, expected);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = mono(vec![0.0, 1.0, 3.0, 2.0, 0.0]);
        let b = mono(vec![0.0, 0.5, 1.0, 3.0, 3.0, 2.0, 0.0]);
        let r = dtw(&a, &b).unwrap();
        assert_eq!(*r.path.first().unwrap(), (0, 0));
        assert_eq!(*r.path.last().unwrap(), (4, 6));
        for w in r.path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn warping_absorbs_a_time_stretch() {
        // b is a 2x time-stretched copy of a: DTW cost stays near zero and
        // h_disp grows roughly linearly.
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = dtw(&mono(a), &mono(b)).unwrap();
        // Cost accumulates over ~96 path steps; a small per-step residual
        // from discrete warping is expected.
        assert!(r.cost / (r.path.len() as f64) < 0.1, "cost {}", r.cost);
        let h = hdisp_from_path(&r.path, 32);
        assert!(h[31] > 20.0, "end displacement {}", h[31]);
    }

    #[test]
    fn multichannel_uses_correlation_across_channels() {
        // 4-channel frames; b's frames are scaled copies of a's: zero
        // correlation distance regardless of gain.
        let n = 10;
        let a = Signal::from_channels(
            10.0,
            (0..4)
                .map(|c| (0..n).map(|i| ((i + c) as f64).sin()).collect())
                .collect(),
        )
        .unwrap();
        let b = Signal::from_channels(
            10.0,
            (0..4)
                .map(|c| (0..n).map(|i| 3.0 * ((i + c) as f64).sin()).collect())
                .collect(),
        )
        .unwrap();
        let r = dtw(&a, &b).unwrap();
        assert!(r.cost < 1e-9, "gain-invariant cost, got {}", r.cost);
    }

    #[test]
    fn incompatible_inputs_rejected() {
        let a = mono(vec![1.0, 2.0]);
        let b2 = Signal::from_channels(10.0, vec![vec![1.0], vec![1.0]]).unwrap();
        assert!(dtw(&a, &b2).is_err());
        let empty = Signal::zeros(10.0, 1, 0).unwrap();
        assert!(dtw(&a, &empty).is_err());
    }

    #[test]
    fn windowed_dtw_respects_window() {
        let a = mono((0..8).map(|i| i as f64).collect());
        let b = mono((0..8).map(|i| i as f64).collect());
        // Sakoe-Chiba band of width 1.
        let window: RowWindow = (0..8usize)
            .map(|i| (i.saturating_sub(1), (i + 2).min(8)))
            .collect();
        let r = dtw_windowed(&a, &b, &window).unwrap();
        for &(i, j) in &r.path {
            assert!(j + 1 >= i && j <= i + 1, "({i},{j}) outside band");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_scratch_dtw_bit_identical_to_reference(
            n in 4usize..20,
            m in 4usize..20,
            channels in 1usize..5,
            seed in 0u64..1000,
        ) {
            let a = pseudo(n, channels, seed.wrapping_add(7));
            let b = pseudo(m, channels, seed.wrapping_add(13));
            let (ref_path, ref_cost) = reference_dtw(&a, &b);
            // Dirty scratch: pre-used on unrelated shapes, so the test
            // also proves reuse leaks no state between calls.
            let mut scratch = DtwScratch::new();
            dtw_with(
                &pseudo(9, channels, seed.wrapping_add(29)),
                &pseudo(11, channels, seed.wrapping_add(31)),
                &mut scratch,
            )
            .unwrap();
            let r = dtw_with(&a, &b, &mut scratch).unwrap();
            prop_assert_eq!(&r.path, &ref_path);
            prop_assert_eq!(r.cost.to_bits(), ref_cost.to_bits());
            // The precomputed frame view matches the reference point
            // distance bit for bit on every cell.
            let mut av = FrameView::default();
            let mut bv = FrameView::default();
            av.fill(&a);
            bv.fill(&b);
            for i in 0..n {
                for j in 0..m {
                    prop_assert_eq!(
                        av.distance(i, &bv, j).to_bits(),
                        frame_distance(&a, i, &b, j).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_window_is_an_error() {
        let a = mono(vec![1.0, 2.0, 3.0]);
        let b = mono(vec![1.0, 2.0, 3.0]);
        // Row 1 only allows column 0 while row 0 only allows column 2:
        // no monotone path.
        let window: RowWindow = vec![(2, 3), (0, 1), (2, 3)];
        assert!(dtw_windowed(&a, &b, &window).is_err());
        let bad_rows: RowWindow = vec![(0, 3)];
        assert!(dtw_windowed(&a, &b, &bad_rows).is_err());
        let empty_row: RowWindow = vec![(0, 3), (3, 3), (0, 3)];
        assert!(dtw_windowed(&a, &b, &empty_row).is_err());
    }
}
