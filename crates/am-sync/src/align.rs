//! The [`Alignment`] produced by a synchronizer and the [`Synchronizer`]
//! abstraction NSYNC is generic over.

use crate::error::SyncError;
use am_dsp::Signal;
use serde::{Deserialize, Serialize};

/// How the comparison units of an alignment map back onto the signals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlignmentKind {
    /// Window-based (DWM): unit `i` is the window
    /// `a[i·n_hop .. i·n_hop + n_win]` matched against
    /// `b{i; h_disp[i]}` (Eq 8).
    Windowed {
        /// Window width in samples.
        n_win: usize,
        /// Hop between windows in samples.
        n_hop: usize,
    },
    /// Point-based (DTW): the warp path `(i, j)` meaning `a[i] ↔ b[j]`.
    Pointwise {
        /// The warp path, monotone in both coordinates.
        path: Vec<(usize, usize)>,
    },
}

/// Output of dynamic synchronization: the horizontal-displacement array
/// plus its interpretation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alignment {
    /// `h_disp[i]`: displacement of `b` w.r.t. `a` at comparison unit `i`,
    /// in samples (fractional for DTW via Eq 5).
    pub h_disp: Vec<f64>,
    /// Mapping details for the comparator.
    pub kind: AlignmentKind,
}

impl Alignment {
    /// Horizontal distances `h_dist[i] = |h_disp[i]|` (§VI-B).
    pub fn h_dist(&self) -> Vec<f64> {
        self.h_disp.iter().map(|v| v.abs()).collect()
    }

    /// Number of comparison units.
    pub fn len(&self) -> usize {
        self.h_disp.len()
    }

    /// `true` when the alignment has no units.
    pub fn is_empty(&self) -> bool {
        self.h_disp.is_empty()
    }
}

/// A dynamic synchronizer (DWM or DTW). NSYNC is generic over this trait;
/// it is object-safe so IDS configs can store `Box<dyn Synchronizer>`.
pub trait Synchronizer {
    /// Aligns observed signal `a` against reference `b`, assuming both
    /// start at the same process moment.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] when shapes/rates are incompatible or the
    /// signals are shorter than the synchronizer's window configuration.
    fn synchronize(&self, a: &Signal, b: &Signal) -> Result<Alignment, SyncError>;

    /// [`synchronize`](Synchronizer::synchronize) running on a
    /// caller-owned [`SyncArena`](crate::SyncArena) instead of freshly
    /// allocated scratch — the worker-pinned path a scheduler uses to run
    /// many alignments with zero steady-state allocation. Must be
    /// bit-identical to `synchronize`. The default implementation ignores
    /// the arena, which is correct for synchronizers without scratch.
    ///
    /// # Errors
    ///
    /// Same as [`synchronize`](Synchronizer::synchronize).
    fn synchronize_with(
        &self,
        a: &Signal,
        b: &Signal,
        arena: &mut crate::SyncArena,
    ) -> Result<Alignment, SyncError> {
        let _ = arena;
        self.synchronize(a, b)
    }

    /// Human-readable name for reports ("DWM", "DTW(r=1)", ...).
    fn name(&self) -> String;
}

/// Converts a DTW warp path into `h_disp` per index of `a` (Eq 5):
/// `h_disp[i] = mean_k(j_k) - i` over all tuples `(i, j_k)`.
pub fn hdisp_from_path(path: &[(usize, usize)], a_len: usize) -> Vec<f64> {
    let mut sums = vec![0.0f64; a_len];
    let mut counts = vec![0u32; a_len];
    for &(i, j) in path {
        if i < a_len {
            sums[i] += j as f64;
            counts[i] += 1;
        }
    }
    (0..a_len)
        .map(|i| {
            if counts[i] > 0 {
                sums[i] / counts[i] as f64 - i as f64
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdisp_from_simple_path() {
        // Diagonal path: zero displacement everywhere.
        let path: Vec<(usize, usize)> = (0..5).map(|i| (i, i)).collect();
        assert_eq!(hdisp_from_path(&path, 5), vec![0.0; 5]);
    }

    #[test]
    fn hdisp_from_shifted_path() {
        let path: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 2)).collect();
        assert_eq!(hdisp_from_path(&path, 5), vec![2.0; 5]);
    }

    #[test]
    fn hdisp_averages_multiple_tuples_eq5() {
        // a[1] matches b[1] and b[3]: mean j = 2, disp = 1.
        let path = vec![(0, 0), (1, 1), (1, 3), (2, 3)];
        let h = hdisp_from_path(&path, 3);
        assert_eq!(h, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn missing_indices_default_to_zero() {
        let path = vec![(0, 0)];
        let h = hdisp_from_path(&path, 3);
        assert_eq!(h, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn alignment_helpers() {
        let al = Alignment {
            h_disp: vec![1.0, -2.0, 0.5],
            kind: AlignmentKind::Windowed { n_win: 8, n_hop: 4 },
        };
        assert_eq!(al.h_dist(), vec![1.0, 2.0, 0.5]);
        assert_eq!(al.len(), 3);
        assert!(!al.is_empty());
    }
}
