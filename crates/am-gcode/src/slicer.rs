//! A small slicer: turns the paper's gear model into a layered G-code
//! toolpath (perimeters + line/grid infill).
//!
//! The paper printed "a gear model with a diameter of 60 mm and a thickness
//! of 7.5 mm" sliced by Cura 4.4 (UM3) / MatterControl (RM3) at 0.2 mm
//! layer height. The IDSs never see the CAD file — they see G-code-induced
//! motion — so a slicer that emits the same structural features (layers,
//! perimeters, parameterized infill pattern/speed/scale) is a faithful
//! substitute. All five Table I attacks are expressible as config changes
//! or G-code transforms on this slicer's output.

use crate::error::GcodeError;
use crate::geometry::{gear_profile, Point2, Polygon};
use crate::model::{GCommand, GcodeProgram, MoveKind};
use serde::{Deserialize, Serialize};

/// Infill pattern (Table I's InfillGrid attack switches Lines → Grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InfillPattern {
    /// Parallel lines, alternating 45°/135° between layers (Cura default).
    Lines,
    /// Both 45° and 135° lines on every layer at doubled spacing.
    Grid,
}

/// A spherical-ish void carved out of the infill (the Void attack of
/// Table I / Sturm et al.): infill segments whose midpoint falls within
/// `radius` of `center` between `z_min` and `z_max` are removed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoidRegion {
    /// XY center of the void.
    pub center: Point2,
    /// XY radius (mm).
    pub radius: f64,
    /// First affected height (mm, inclusive).
    pub z_min: f64,
    /// Last affected height (mm, inclusive).
    pub z_max: f64,
}

/// Slicer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceConfig {
    /// Gear tooth count.
    pub gear_teeth: usize,
    /// Gear root radius (mm).
    pub gear_root_radius: f64,
    /// Gear tip radius (mm). The paper's gear: 30 mm.
    pub gear_tip_radius: f64,
    /// Gear center on the bed.
    pub center: Point2,
    /// Part height (mm). The paper's gear: 7.5 mm.
    pub height: f64,
    /// Layer height (mm). Benign default 0.2; the Layer0.3 attack sets 0.3.
    pub layer_height: f64,
    /// Number of perimeter loops per layer.
    pub perimeters: usize,
    /// Extrusion width (mm).
    pub extrusion_width: f64,
    /// Infill line spacing (mm) for [`InfillPattern::Lines`].
    pub infill_spacing: f64,
    /// Infill pattern.
    pub infill_pattern: InfillPattern,
    /// Perimeter print speed (mm/s).
    pub perimeter_speed: f64,
    /// Infill print speed (mm/s).
    pub infill_speed: f64,
    /// Travel speed (mm/s).
    pub travel_speed: f64,
    /// Global XY scale factor (the Scale0.95 attack sets 0.95).
    pub scale: f64,
    /// Feedrate scale factor applied to print moves (the Speed0.95 attack
    /// sets 0.95 — matching "printing speed is decreased by 5%").
    pub speed_factor: f64,
    /// Optional infill void (the Void attack).
    pub void_region: Option<VoidRegion>,
    /// Hotend temperature (deg C).
    pub hotend_temp: f64,
    /// Bed temperature (deg C).
    pub bed_temp: f64,
    /// Part-cooling fan duty in `[0,1]`, enabled from layer 1.
    pub fan_speed: f64,
    /// Filament diameter (mm): 2.85 for UM3, 1.75 for RM3.
    pub filament_diameter: f64,
    /// Maximum volumetric flow (mm³/s). Print feedrates are capped at
    /// `max_volumetric_rate / (layer_height · extrusion_width)` — the
    /// mechanism by which a layer-height change (the Layer0.3 attack)
    /// alters print *timing*, as real slicers do.
    pub max_volumetric_rate: f64,
}

impl SliceConfig {
    /// The paper's 60 mm gear at full scale (≈ hours of print time).
    pub fn paper_gear() -> Self {
        SliceConfig {
            gear_teeth: 24,
            gear_root_radius: 26.0,
            gear_tip_radius: 30.0,
            center: Point2::new(100.0, 100.0),
            height: 7.5,
            layer_height: 0.2,
            perimeters: 2,
            extrusion_width: 0.4,
            infill_spacing: 2.0,
            infill_pattern: InfillPattern::Lines,
            perimeter_speed: 40.0,
            infill_speed: 55.0,
            travel_speed: 150.0,
            scale: 1.0,
            speed_factor: 1.0,
            void_region: None,
            hotend_temp: 205.0,
            bed_temp: 60.0,
            fan_speed: 1.0,
            filament_diameter: 2.85,
            max_volumetric_rate: 5.0,
        }
    }

    /// A scaled-down gear for fast tests and the `small` experiment
    /// profile (~minutes of simulated print time).
    pub fn small_gear() -> Self {
        SliceConfig {
            gear_teeth: 10,
            gear_root_radius: 8.0,
            gear_tip_radius: 10.0,
            center: Point2::new(50.0, 50.0),
            height: 1.2,
            layer_height: 0.2,
            perimeters: 2,
            extrusion_width: 0.4,
            infill_spacing: 2.0,
            infill_pattern: InfillPattern::Lines,
            perimeter_speed: 40.0,
            infill_speed: 55.0,
            travel_speed: 150.0,
            scale: 1.0,
            speed_factor: 1.0,
            void_region: None,
            hotend_temp: 205.0,
            bed_temp: 60.0,
            fan_speed: 1.0,
            filament_diameter: 2.85,
            max_volumetric_rate: 5.0,
        }
    }

    /// The default void region for the Void attack: centred in the part,
    /// 35% of the tip radius wide, spanning the middle third of the height.
    pub fn default_void(&self) -> VoidRegion {
        VoidRegion {
            center: self.center,
            radius: self.gear_tip_radius * 0.35,
            z_min: self.height / 3.0,
            z_max: 2.0 * self.height / 3.0,
        }
    }

    /// Number of layers this config produces.
    pub fn layer_count(&self) -> usize {
        (self.height / self.layer_height).round().max(1.0) as usize
    }

    fn validate(&self) -> Result<(), GcodeError> {
        let positive = [
            ("gear_root_radius", self.gear_root_radius),
            ("gear_tip_radius", self.gear_tip_radius),
            ("height", self.height),
            ("layer_height", self.layer_height),
            ("extrusion_width", self.extrusion_width),
            ("infill_spacing", self.infill_spacing),
            ("perimeter_speed", self.perimeter_speed),
            ("infill_speed", self.infill_speed),
            ("travel_speed", self.travel_speed),
            ("scale", self.scale),
            ("speed_factor", self.speed_factor),
            ("filament_diameter", self.filament_diameter),
            ("max_volumetric_rate", self.max_volumetric_rate),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(GcodeError::InvalidParameter(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        if self.gear_teeth == 0 {
            return Err(GcodeError::InvalidParameter(
                "gear_teeth must be >= 1".into(),
            ));
        }
        if self.gear_tip_radius <= self.gear_root_radius {
            return Err(GcodeError::InvalidParameter(
                "gear_tip_radius must exceed gear_root_radius".into(),
            ));
        }
        Ok(())
    }
}

/// mm of filament per mm of extruded path.
fn extrusion_per_mm(cfg: &SliceConfig) -> f64 {
    let filament_area = std::f64::consts::PI / 4.0 * cfg.filament_diameter.powi(2);
    cfg.layer_height * cfg.extrusion_width / filament_area
}

/// Slices the gear described by `cfg` into a complete G-code program
/// (heat-up preamble, layered toolpath with `;LAYER:` markers, cool-down).
///
/// # Errors
///
/// Returns [`GcodeError::InvalidParameter`] for out-of-domain configs.
pub fn slice_gear(cfg: &SliceConfig) -> Result<GcodeProgram, GcodeError> {
    cfg.validate()?;
    let outline = gear_profile(
        cfg.center,
        cfg.gear_teeth,
        cfg.gear_root_radius,
        cfg.gear_tip_radius,
    );
    slice_outline(&outline, cfg)
}

/// Slices a square calibration part of the given side length, centred at
/// `cfg.center` (the gear parameters in `cfg` are ignored). Useful as a
/// second workload for cross-part experiments.
///
/// # Errors
///
/// Returns [`GcodeError::InvalidParameter`] for out-of-domain configs or a
/// non-positive `side`.
pub fn slice_cube(cfg: &SliceConfig, side: f64) -> Result<GcodeProgram, GcodeError> {
    if !(side.is_finite() && side > 0.0) {
        return Err(GcodeError::InvalidParameter(format!(
            "cube side must be positive, got {side}"
        )));
    }
    let h = side / 2.0;
    let outline = Polygon::new(vec![
        Point2::new(cfg.center.x - h, cfg.center.y - h),
        Point2::new(cfg.center.x + h, cfg.center.y - h),
        Point2::new(cfg.center.x + h, cfg.center.y + h),
        Point2::new(cfg.center.x - h, cfg.center.y + h),
    ]);
    slice_outline(&outline, cfg)
}

/// Slices an arbitrary simple-polygon outline with the given config.
///
/// # Errors
///
/// Returns [`GcodeError::InvalidParameter`] for out-of-domain configs or a
/// degenerate outline.
pub fn slice_outline(outline: &Polygon, cfg: &SliceConfig) -> Result<GcodeProgram, GcodeError> {
    cfg.validate()?;
    if outline.len() < 3 {
        return Err(GcodeError::InvalidParameter(
            "outline must have at least 3 vertices".into(),
        ));
    }
    let mut prog = GcodeProgram::new();
    let outline = outline.scaled_about(cfg.scale, cfg.center);

    // Preamble.
    prog.push(GCommand::Comment {
        text: "nsync-repro slicer".into(),
    });
    prog.push(GCommand::SetBedTemp {
        celsius: cfg.bed_temp,
        wait: false,
    });
    prog.push(GCommand::SetHotendTemp {
        celsius: cfg.hotend_temp,
        wait: false,
    });
    prog.push(GCommand::SetBedTemp {
        celsius: cfg.bed_temp,
        wait: true,
    });
    prog.push(GCommand::SetHotendTemp {
        celsius: cfg.hotend_temp,
        wait: true,
    });
    prog.push(GCommand::Home);
    prog.push(GCommand::SetPosition {
        x: None,
        y: None,
        z: None,
        e: Some(0.0),
    });

    let e_per_mm = extrusion_per_mm(cfg);
    let layers = cfg.layer_count();
    // Volumetric flow cap: thicker layers push more plastic per mm, so
    // the print speed drops to keep flow under the hotend's limit.
    let flow_cap_mm_s = cfg.max_volumetric_rate / (cfg.layer_height * cfg.extrusion_width);
    let per_f = cfg.perimeter_speed.min(flow_cap_mm_s) * 60.0 * cfg.speed_factor;
    let inf_f = cfg.infill_speed.min(flow_cap_mm_s) * 60.0 * cfg.speed_factor;
    let trav_f = cfg.travel_speed * 60.0; // travel speed untouched by Speed0.95 (Cura behaviour)
    let mut e = 0.0;
    let mut cursor: Option<Point2> = None;

    for layer in 0..layers {
        let z = cfg.layer_height * (layer + 1) as f64;
        prog.push(GCommand::LayerMarker { index: layer });
        prog.push(GCommand::Move {
            kind: MoveKind::Travel,
            x: None,
            y: None,
            z: Some(z),
            e: None,
            f: Some(trav_f),
        });
        if layer == 1 && cfg.fan_speed > 0.0 {
            prog.push(GCommand::FanOn {
                speed: cfg.fan_speed,
            });
        }

        // Perimeters, outermost first.
        for p in 0..cfg.perimeters {
            let inset = cfg.extrusion_width * (p as f64 + 0.5) * cfg.scale.max(0.01);
            let loop_poly = outline.inset_approx(inset);
            emit_loop(
                &mut prog,
                &loop_poly,
                per_f,
                trav_f,
                e_per_mm,
                &mut e,
                &mut cursor,
            );
        }

        // Infill region: inside all perimeters.
        let infill_region =
            outline.inset_approx(cfg.extrusion_width * (cfg.perimeters as f64 + 0.5));
        let segments = infill_segments(cfg, &infill_region, layer, z);
        emit_segments(
            &mut prog,
            &segments,
            inf_f,
            trav_f,
            e_per_mm,
            &mut e,
            &mut cursor,
        );
    }

    // Epilogue.
    prog.push(GCommand::FanOff);
    prog.push(GCommand::SetHotendTemp {
        celsius: 0.0,
        wait: false,
    });
    prog.push(GCommand::SetBedTemp {
        celsius: 0.0,
        wait: false,
    });
    prog.push(GCommand::Move {
        kind: MoveKind::Travel,
        x: None,
        y: None,
        z: Some(cfg.height * cfg.scale + 10.0),
        e: None,
        f: Some(trav_f),
    });
    prog.push(GCommand::Home);
    Ok(prog)
}

/// Computes the clipped infill segments for one layer, zigzag-ordered,
/// with the void region (if any) carved out.
fn infill_segments(
    cfg: &SliceConfig,
    region: &Polygon,
    layer: usize,
    z: f64,
) -> Vec<(Point2, Point2)> {
    let angles: Vec<f64> = match cfg.infill_pattern {
        InfillPattern::Lines => {
            if layer % 2 == 0 {
                vec![45f64.to_radians()]
            } else {
                vec![135f64.to_radians()]
            }
        }
        InfillPattern::Grid => vec![45f64.to_radians(), 135f64.to_radians()],
    };
    let spacing = match cfg.infill_pattern {
        InfillPattern::Lines => cfg.infill_spacing,
        InfillPattern::Grid => cfg.infill_spacing * 2.0,
    };
    let mut out = Vec::new();
    let Some((min, max)) = region.bbox() else {
        return out;
    };
    let diag = min.distance(max);
    let mid = Point2::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
    for angle in angles {
        let dir = Point2::new(angle.cos(), angle.sin());
        let normal = Point2::new(-dir.y, dir.x);
        let n_lines = (diag / spacing).ceil() as i64;
        let mut flip = false;
        for k in -n_lines..=n_lines {
            let offset = k as f64 * spacing;
            let origin = Point2::new(
                mid.x + normal.x * offset - dir.x * diag,
                mid.y + normal.y * offset - dir.y * diag,
            );
            let mut segs = region.clip_line(origin, dir);
            if let Some(v) = cfg.void_region {
                if z >= v.z_min && z <= v.z_max {
                    segs.retain(|(a, b)| {
                        let m = Point2::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
                        m.distance(v.center) > v.radius
                    });
                }
            }
            // Zigzag: reverse every other scanline to reduce travel.
            if flip {
                segs.reverse();
                for s in &mut segs {
                    std::mem::swap(&mut s.0, &mut s.1);
                }
            }
            flip = !flip;
            out.extend(segs);
        }
    }
    out
}

fn emit_loop(
    prog: &mut GcodeProgram,
    poly: &Polygon,
    print_f: f64,
    travel_f: f64,
    e_per_mm: f64,
    e: &mut f64,
    cursor: &mut Option<Point2>,
) {
    if poly.len() < 3 {
        return;
    }
    let first = poly.points[0];
    travel_to(prog, first, travel_f, cursor);
    for i in 1..=poly.len() {
        let p = poly.points[i % poly.len()];
        print_to(prog, p, print_f, e_per_mm, e, cursor);
    }
}

fn emit_segments(
    prog: &mut GcodeProgram,
    segments: &[(Point2, Point2)],
    print_f: f64,
    travel_f: f64,
    e_per_mm: f64,
    e: &mut f64,
    cursor: &mut Option<Point2>,
) {
    for &(a, b) in segments {
        travel_to(prog, a, travel_f, cursor);
        print_to(prog, b, print_f, e_per_mm, e, cursor);
    }
}

fn travel_to(prog: &mut GcodeProgram, p: Point2, f: f64, cursor: &mut Option<Point2>) {
    if let Some(c) = cursor {
        if c.distance(p) < 1e-9 {
            return;
        }
    }
    prog.push(GCommand::travel_move(round5(p.x), round5(p.y), Some(f)));
    *cursor = Some(p);
}

fn print_to(
    prog: &mut GcodeProgram,
    p: Point2,
    f: f64,
    e_per_mm: f64,
    e: &mut f64,
    cursor: &mut Option<Point2>,
) {
    let from = cursor.unwrap_or(p);
    *e += from.distance(p) * e_per_mm;
    prog.push(GCommand::print_move(
        round5(p.x),
        round5(p.y),
        round5(*e),
        Some(f),
    ));
    *cursor = Some(p);
}

fn round5(v: f64) -> f64 {
    (v * 1e5).round() / 1e5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::writer::write_program;

    #[test]
    fn small_gear_slices() {
        let cfg = SliceConfig::small_gear();
        let prog = slice_gear(&cfg).unwrap();
        assert_eq!(prog.layer_count(), 6);
        assert!(prog.motion_count() > 100, "got {}", prog.motion_count());
        assert!(prog.extruded_path_length() > 100.0);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let mut cfg = SliceConfig::small_gear();
        cfg.layer_height = 0.0;
        assert!(slice_gear(&cfg).is_err());
        let mut cfg = SliceConfig::small_gear();
        cfg.gear_teeth = 0;
        assert!(slice_gear(&cfg).is_err());
        let mut cfg = SliceConfig::small_gear();
        cfg.gear_tip_radius = cfg.gear_root_radius;
        assert!(slice_gear(&cfg).is_err());
        let mut cfg = SliceConfig::small_gear();
        cfg.speed_factor = f64::NAN;
        assert!(slice_gear(&cfg).is_err());
    }

    #[test]
    fn output_parses_back() {
        let prog = slice_gear(&SliceConfig::small_gear()).unwrap();
        let text = write_program(&prog);
        let back = parse_program(&text).unwrap();
        assert_eq!(back.layer_count(), prog.layer_count());
        assert_eq!(back.motion_count(), prog.motion_count());
    }

    #[test]
    fn layer_height_changes_layer_count() {
        let mut cfg = SliceConfig::small_gear();
        cfg.layer_height = 0.3;
        let prog = slice_gear(&cfg).unwrap();
        assert_eq!(prog.layer_count(), 4); // 1.2 / 0.3
    }

    #[test]
    fn grid_infill_produces_more_segments_per_layer() {
        let lines = slice_gear(&SliceConfig::small_gear()).unwrap();
        let mut cfg = SliceConfig::small_gear();
        cfg.infill_pattern = InfillPattern::Grid;
        let grid = slice_gear(&cfg).unwrap();
        // Structure differs even though both are valid prints.
        assert_ne!(lines.motion_count(), grid.motion_count());
    }

    #[test]
    fn void_removes_infill_in_middle_layers_only() {
        let cfg = SliceConfig::small_gear();
        let benign = slice_gear(&cfg).unwrap();
        let mut voided_cfg = cfg.clone();
        voided_cfg.void_region = Some(cfg.default_void());
        let voided = slice_gear(&voided_cfg).unwrap();
        assert!(voided.extruded_path_length() < benign.extruded_path_length());
        assert_eq!(voided.layer_count(), benign.layer_count());
    }

    #[test]
    fn scale_shrinks_path_length() {
        let cfg = SliceConfig::small_gear();
        let benign = slice_gear(&cfg).unwrap();
        let mut scaled_cfg = cfg.clone();
        scaled_cfg.scale = 0.95;
        let scaled = slice_gear(&scaled_cfg).unwrap();
        let ratio = scaled.extruded_path_length() / benign.extruded_path_length();
        assert!(ratio < 1.0, "ratio {ratio}");
        assert!(ratio > 0.85, "ratio {ratio}");
    }

    #[test]
    fn speed_factor_scales_print_feedrates_only() {
        let cfg = SliceConfig::small_gear();
        let mut slow_cfg = cfg.clone();
        slow_cfg.speed_factor = 0.95;
        let benign = slice_gear(&cfg).unwrap();
        let slow = slice_gear(&slow_cfg).unwrap();
        let max_f = |p: &GcodeProgram, extruding: bool| -> f64 {
            p.commands()
                .iter()
                .filter_map(|c| match c {
                    GCommand::Move { e, f: Some(f), .. } if e.is_some() == extruding => Some(*f),
                    _ => None,
                })
                .fold(0.0, f64::max)
        };
        let b_print = max_f(&benign, true);
        let s_print = max_f(&slow, true);
        assert!((s_print / b_print - 0.95).abs() < 1e-9);
        // Travel speed unchanged.
        assert_eq!(max_f(&benign, false), max_f(&slow, false));
    }

    #[test]
    fn preamble_heats_then_homes() {
        let prog = slice_gear(&SliceConfig::small_gear()).unwrap();
        let cmds = prog.commands();
        let home_idx = cmds
            .iter()
            .position(|c| matches!(c, GCommand::Home))
            .unwrap();
        let wait_idx = cmds
            .iter()
            .position(|c| matches!(c, GCommand::SetHotendTemp { wait: true, .. }))
            .unwrap();
        assert!(wait_idx < home_idx);
        // Ends with fan off + cool-down.
        assert!(cmds.iter().any(|c| matches!(c, GCommand::FanOff)));
    }

    #[test]
    fn extrusion_is_monotone() {
        let prog = slice_gear(&SliceConfig::small_gear()).unwrap();
        let mut last = 0.0;
        for c in prog.commands() {
            if let GCommand::Move { e: Some(e), .. } = c {
                assert!(*e >= last - 1e-9, "extrusion went backwards");
                last = *e;
            }
        }
        assert!(last > 0.0);
    }

    #[test]
    fn cube_slices_and_differs_from_gear() {
        let cfg = SliceConfig::small_gear();
        let cube = slice_cube(&cfg, 18.0).unwrap();
        let gear = slice_gear(&cfg).unwrap();
        assert_eq!(cube.layer_count(), gear.layer_count());
        assert!(cube.motion_count() > 50);
        assert_ne!(cube.extruded_path_length(), gear.extruded_path_length());
        assert!(slice_cube(&cfg, 0.0).is_err());
        assert!(slice_cube(&cfg, f64::NAN).is_err());
    }

    #[test]
    fn slice_outline_rejects_degenerate_polygons() {
        let cfg = SliceConfig::small_gear();
        let line = crate::geometry::Polygon::new(vec![
            crate::geometry::Point2::new(0.0, 0.0),
            crate::geometry::Point2::new(1.0, 0.0),
        ]);
        assert!(slice_outline(&line, &cfg).is_err());
    }
}
