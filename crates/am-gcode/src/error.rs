//! Error type for G-code parsing, slicing, and attack application.

use std::error::Error;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GcodeError {
    /// A G-code line could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A slicer or attack parameter was outside its legal domain.
    InvalidParameter(String),
    /// An attack could not be applied to the given program.
    AttackFailed(String),
}

impl fmt::Display for GcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcodeError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GcodeError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GcodeError::AttackFailed(msg) => write!(f, "attack failed: {msg}"),
        }
    }
}

impl Error for GcodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = GcodeError::Parse {
            line: 7,
            message: "bad word".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(GcodeError::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        assert!(GcodeError::AttackFailed("y".into())
            .to_string()
            .contains("y"));
    }
}
