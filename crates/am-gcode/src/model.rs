//! Typed G-code command model.
//!
//! Only the dialect the experiments need is modeled precisely; anything
//! else round-trips through [`GCommand::Other`].

use serde::{Deserialize, Serialize};

/// Movement class of a motion command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveKind {
    /// `G0`: travel (non-extruding) move.
    Travel,
    /// `G1`: printing (possibly extruding) move.
    Linear,
}

/// A single G-code command.
///
/// Coordinates are millimetres, feedrates millimetres **per minute** (the
/// G-code convention), temperatures degrees Celsius.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GCommand {
    /// `G0`/`G1` motion. Absent words mean "unchanged".
    Move {
        /// Travel vs linear.
        kind: MoveKind,
        /// Target X (mm).
        x: Option<f64>,
        /// Target Y (mm).
        y: Option<f64>,
        /// Target Z (mm).
        z: Option<f64>,
        /// Target extruder position (mm of filament).
        e: Option<f64>,
        /// Feedrate (mm/min); sticky across moves.
        f: Option<f64>,
    },
    /// `G4`: dwell for the given seconds.
    Dwell {
        /// Pause duration in seconds.
        seconds: f64,
    },
    /// `G28`: home all axes.
    Home,
    /// `G92`: reset the logical position of the given axes.
    SetPosition {
        /// New logical X, if given.
        x: Option<f64>,
        /// New logical Y, if given.
        y: Option<f64>,
        /// New logical Z, if given.
        z: Option<f64>,
        /// New logical E, if given.
        e: Option<f64>,
    },
    /// `M104` (set) / `M109` (set and wait): hotend temperature.
    SetHotendTemp {
        /// Target temperature (deg C).
        celsius: f64,
        /// `true` for M109 (block until reached).
        wait: bool,
    },
    /// `M140` (set) / `M190` (set and wait): bed temperature.
    SetBedTemp {
        /// Target temperature (deg C).
        celsius: f64,
        /// `true` for M190.
        wait: bool,
    },
    /// `M106`: part-cooling fan on at `speed` in `[0, 1]`.
    FanOn {
        /// Fan duty in `[0, 1]` (G-code S0-255 is normalized).
        speed: f64,
    },
    /// `M107`: fan off.
    FanOff,
    /// A `;LAYER:<i>` comment — the slicer's layer marker. The printer
    /// simulator uses these as ground-truth layer-change moments (the paper
    /// obtains them from a dedicated accelerometer or Z-motor currents).
    LayerMarker {
        /// Zero-based layer index.
        index: usize,
    },
    /// Any other comment (no semantic effect).
    Comment {
        /// Comment text without the leading `;`.
        text: String,
    },
    /// Unrecognized but well-formed command, preserved verbatim.
    Other {
        /// Raw line text.
        raw: String,
    },
}

impl GCommand {
    /// Convenience constructor for a `G1` print move in XY.
    pub fn print_move(x: f64, y: f64, e: f64, f: Option<f64>) -> Self {
        GCommand::Move {
            kind: MoveKind::Linear,
            x: Some(x),
            y: Some(y),
            z: None,
            e: Some(e),
            f,
        }
    }

    /// Convenience constructor for a `G0` travel move in XY.
    pub fn travel_move(x: f64, y: f64, f: Option<f64>) -> Self {
        GCommand::Move {
            kind: MoveKind::Travel,
            x: Some(x),
            y: Some(y),
            z: None,
            e: None,
            f,
        }
    }

    /// `true` for `G0`/`G1`.
    pub fn is_motion(&self) -> bool {
        matches!(self, GCommand::Move { .. })
    }

    /// `true` for a motion command that extrudes (has an `E` word).
    pub fn is_extruding(&self) -> bool {
        matches!(self, GCommand::Move { e: Some(_), .. })
    }
}

/// A parsed or generated G-code program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GcodeProgram {
    commands: Vec<GCommand>,
}

impl GcodeProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        GcodeProgram::default()
    }

    /// Wraps a command list.
    pub fn from_commands(commands: Vec<GCommand>) -> Self {
        GcodeProgram { commands }
    }

    /// Borrowed command list.
    pub fn commands(&self) -> &[GCommand] {
        &self.commands
    }

    /// Mutable command list (used by pure-G-code attacks).
    pub fn commands_mut(&mut self) -> &mut Vec<GCommand> {
        &mut self.commands
    }

    /// Appends a command.
    pub fn push(&mut self, cmd: GCommand) {
        self.commands.push(cmd);
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` if the program has no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of `;LAYER:` markers.
    pub fn layer_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, GCommand::LayerMarker { .. }))
            .count()
    }

    /// Number of motion commands.
    pub fn motion_count(&self) -> usize {
        self.commands.iter().filter(|c| c.is_motion()).count()
    }

    /// Total XY path length in millimetres of extruding moves, assuming
    /// absolute coordinates starting from the first positioned point.
    /// Useful as a cheap structural signature in tests.
    pub fn extruded_path_length(&self) -> f64 {
        let mut total = 0.0;
        let mut pos: Option<(f64, f64)> = None;
        for cmd in &self.commands {
            if let GCommand::Move { x, y, e, .. } = cmd {
                let nx = x.unwrap_or(pos.map_or(0.0, |p| p.0));
                let ny = y.unwrap_or(pos.map_or(0.0, |p| p.1));
                if let Some((px, py)) = pos {
                    if e.is_some() {
                        total += ((nx - px).powi(2) + (ny - py).powi(2)).sqrt();
                    }
                }
                pos = Some((nx, ny));
            }
        }
        total
    }
}

impl FromIterator<GCommand> for GcodeProgram {
    fn from_iter<T: IntoIterator<Item = GCommand>>(iter: T) -> Self {
        GcodeProgram {
            commands: iter.into_iter().collect(),
        }
    }
}

impl Extend<GCommand> for GcodeProgram {
    fn extend<T: IntoIterator<Item = GCommand>>(&mut self, iter: T) {
        self.commands.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let p = GCommand::print_move(1.0, 2.0, 0.5, Some(1200.0));
        assert!(p.is_motion());
        assert!(p.is_extruding());
        let t = GCommand::travel_move(1.0, 2.0, None);
        assert!(t.is_motion());
        assert!(!t.is_extruding());
        assert!(!GCommand::Home.is_motion());
    }

    #[test]
    fn program_counts() {
        let mut prog = GcodeProgram::new();
        assert!(prog.is_empty());
        prog.push(GCommand::LayerMarker { index: 0 });
        prog.push(GCommand::travel_move(0.0, 0.0, None));
        prog.push(GCommand::print_move(3.0, 4.0, 0.1, None));
        prog.push(GCommand::LayerMarker { index: 1 });
        assert_eq!(prog.len(), 4);
        assert_eq!(prog.layer_count(), 2);
        assert_eq!(prog.motion_count(), 2);
    }

    #[test]
    fn extruded_path_length_is_euclidean() {
        let prog: GcodeProgram = vec![
            GCommand::travel_move(0.0, 0.0, None),
            GCommand::print_move(3.0, 4.0, 0.1, None), // 5 mm
            GCommand::travel_move(10.0, 10.0, None),   // not counted
            GCommand::print_move(10.0, 13.0, 0.2, None), // 3 mm
        ]
        .into_iter()
        .collect();
        assert!((prog.extruded_path_length() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn extend_and_collect() {
        let mut prog = GcodeProgram::new();
        prog.extend([GCommand::Home, GCommand::FanOff]);
        assert_eq!(prog.len(), 2);
    }
}
