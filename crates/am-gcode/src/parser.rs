//! G-code text parser.
//!
//! Parses the dialect emitted by Cura / MatterSlice (and by our own
//! [`crate::slicer`]): word-per-axis commands, `;` comments, `;LAYER:n`
//! markers. Unknown commands are preserved as [`GCommand::Other`] so that
//! arbitrary files survive a parse → write round trip.

use crate::error::GcodeError;
use crate::model::{GCommand, GcodeProgram, MoveKind};
use std::collections::HashMap;

/// Parses a full G-code file.
///
/// # Errors
///
/// Returns [`GcodeError::Parse`] with a 1-based line number on malformed
/// numeric words.
pub fn parse_program(text: &str) -> Result<GcodeProgram, GcodeError> {
    let mut prog = GcodeProgram::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(cmd) = parse_line(line, i + 1)? {
            prog.push(cmd);
        }
    }
    Ok(prog)
}

/// Parses one line; `None` for blank lines.
///
/// # Errors
///
/// Returns [`GcodeError::Parse`] on malformed numeric words.
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<GCommand>, GcodeError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    // Comment-only line?
    if let Some(comment) = trimmed.strip_prefix(';') {
        let comment = comment.trim();
        if let Some(rest) = comment.strip_prefix("LAYER:") {
            if let Ok(index) = rest.trim().parse::<usize>() {
                return Ok(Some(GCommand::LayerMarker { index }));
            }
        }
        return Ok(Some(GCommand::Comment {
            text: comment.to_string(),
        }));
    }
    // Strip trailing comment.
    let code = match trimmed.split_once(';') {
        Some((head, _)) => head.trim(),
        None => trimmed,
    };
    if code.is_empty() {
        return Ok(None);
    }
    let words = parse_words(code, line_no)?;
    let Some((&letter, &number)) = words.first_word() else {
        return Ok(Some(GCommand::Other {
            raw: code.to_string(),
        }));
    };
    let cmd = match (letter, number as i64) {
        ('G', 0) | ('G', 1) => GCommand::Move {
            kind: if number as i64 == 0 {
                MoveKind::Travel
            } else {
                MoveKind::Linear
            },
            x: words.get('X'),
            y: words.get('Y'),
            z: words.get('Z'),
            e: words.get('E'),
            f: words.get('F'),
        },
        ('G', 4) => {
            // P = milliseconds, S = seconds.
            let seconds = words
                .get('S')
                .or_else(|| words.get('P').map(|ms| ms / 1000.0))
                .unwrap_or(0.0);
            GCommand::Dwell { seconds }
        }
        ('G', 28) => GCommand::Home,
        ('G', 92) => GCommand::SetPosition {
            x: words.get('X'),
            y: words.get('Y'),
            z: words.get('Z'),
            e: words.get('E'),
        },
        ('M', 104) | ('M', 109) => GCommand::SetHotendTemp {
            celsius: words.get('S').unwrap_or(0.0),
            wait: number as i64 == 109,
        },
        ('M', 140) | ('M', 190) => GCommand::SetBedTemp {
            celsius: words.get('S').unwrap_or(0.0),
            wait: number as i64 == 190,
        },
        ('M', 106) => GCommand::FanOn {
            speed: (words.get('S').unwrap_or(255.0) / 255.0).clamp(0.0, 1.0),
        },
        ('M', 107) => GCommand::FanOff,
        _ => GCommand::Other {
            raw: code.to_string(),
        },
    };
    Ok(Some(cmd))
}

struct Words {
    first: Option<(char, f64)>,
    map: HashMap<char, f64>,
}

impl Words {
    fn first_word(&self) -> Option<(&char, &f64)> {
        self.first.as_ref().map(|(c, v)| (c, v))
    }
    fn get(&self, letter: char) -> Option<f64> {
        self.map.get(&letter).copied()
    }
}

fn parse_words(code: &str, line_no: usize) -> Result<Words, GcodeError> {
    let mut first = None;
    let mut map = HashMap::new();
    for token in code.split_whitespace() {
        let mut chars = token.chars();
        let Some(letter) = chars.next() else { continue };
        let letter = letter.to_ascii_uppercase();
        if !letter.is_ascii_alphabetic() {
            return Err(GcodeError::Parse {
                line: line_no,
                message: format!("expected a word letter, got {token:?}"),
            });
        }
        let rest: &str = chars.as_str();
        let value: f64 = if rest.is_empty() {
            0.0
        } else {
            rest.parse().map_err(|_| GcodeError::Parse {
                line: line_no,
                message: format!("bad number in word {token:?}"),
            })?
        };
        if first.is_none() {
            first = Some((letter, value));
        } else {
            map.insert(letter, value);
        }
    }
    Ok(Words { first, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_program;

    #[test]
    fn parses_moves() {
        let cmd = parse_line("G1 X10.5 Y-2 E0.33 F1500", 1).unwrap().unwrap();
        assert_eq!(
            cmd,
            GCommand::Move {
                kind: MoveKind::Linear,
                x: Some(10.5),
                y: Some(-2.0),
                z: None,
                e: Some(0.33),
                f: Some(1500.0),
            }
        );
        let travel = parse_line("G0 Z0.2", 1).unwrap().unwrap();
        assert!(matches!(
            travel,
            GCommand::Move {
                kind: MoveKind::Travel,
                z: Some(z),
                ..
            } if z == 0.2
        ));
    }

    #[test]
    fn parses_temps_and_fan() {
        assert_eq!(
            parse_line("M109 S210", 1).unwrap().unwrap(),
            GCommand::SetHotendTemp {
                celsius: 210.0,
                wait: true
            }
        );
        assert_eq!(
            parse_line("M140 S60", 1).unwrap().unwrap(),
            GCommand::SetBedTemp {
                celsius: 60.0,
                wait: false
            }
        );
        assert_eq!(
            parse_line("M106 S127.5", 1).unwrap().unwrap(),
            GCommand::FanOn { speed: 0.5 }
        );
        assert_eq!(parse_line("M107", 1).unwrap().unwrap(), GCommand::FanOff);
    }

    #[test]
    fn parses_dwell_both_forms() {
        assert_eq!(
            parse_line("G4 P500", 1).unwrap().unwrap(),
            GCommand::Dwell { seconds: 0.5 }
        );
        assert_eq!(
            parse_line("G4 S2", 1).unwrap().unwrap(),
            GCommand::Dwell { seconds: 2.0 }
        );
    }

    #[test]
    fn parses_layer_markers_and_comments() {
        assert_eq!(
            parse_line(";LAYER:12", 1).unwrap().unwrap(),
            GCommand::LayerMarker { index: 12 }
        );
        assert_eq!(
            parse_line("; hello world", 1).unwrap().unwrap(),
            GCommand::Comment {
                text: "hello world".into()
            }
        );
        // Malformed layer marker degrades to a plain comment.
        assert!(matches!(
            parse_line(";LAYER:x", 1).unwrap().unwrap(),
            GCommand::Comment { .. }
        ));
    }

    #[test]
    fn trailing_comments_stripped() {
        let cmd = parse_line("G28 ; home all", 1).unwrap().unwrap();
        assert_eq!(cmd, GCommand::Home);
    }

    #[test]
    fn blank_and_unknown_lines() {
        assert!(parse_line("", 1).unwrap().is_none());
        assert!(parse_line("   ", 1).unwrap().is_none());
        let other = parse_line("M862.3 P1", 1).unwrap().unwrap();
        assert!(matches!(other, GCommand::Other { .. }));
    }

    #[test]
    fn bad_number_is_an_error_with_line_no() {
        let err = parse_line("G1 Xabc", 42).unwrap_err();
        assert!(matches!(err, GcodeError::Parse { line: 42, .. }));
    }

    #[test]
    fn full_program_roundtrip() {
        let text = "\
M140 S60\nM190 S60\nM104 S210\nM109 S210\nG28\n;LAYER:0\nG0 X10 Y10 F9000\nG1 X20 Y10 E1.0 F1200\nM106 S255\n;LAYER:1\nG1 X20 Y20 E2.0\nM107\n";
        let prog = parse_program(text).unwrap();
        assert_eq!(prog.layer_count(), 2);
        assert_eq!(prog.motion_count(), 3);
        // Round trip: write then re-parse gives the same model.
        let text2 = write_program(&prog);
        let prog2 = parse_program(&text2).unwrap();
        assert_eq!(prog, prog2);
    }

    #[test]
    fn parse_error_reports_correct_line() {
        let text = "G28\nG1 X1\nG1 Xbad\n";
        let err = parse_program(text).unwrap_err();
        assert!(matches!(err, GcodeError::Parse { line: 3, .. }));
    }
}
