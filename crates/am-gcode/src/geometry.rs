//! 2-D geometry for the slicer: the gear profile, polygon predicates, and
//! infill clipping.
//!
//! This is deliberately a *slicer's* geometry kit, not a general
//! computational-geometry library: the shapes involved are simple closed
//! polygons (the gear outline), and the operations are point-in-polygon,
//! segment clipping against the outline, and approximate insets.

use serde::{Deserialize, Serialize};

/// A 2-D point in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// X coordinate (mm).
    pub x: f64,
    /// Y coordinate (mm).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A simple closed polygon (implicitly closed: last vertex connects to the
/// first).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    /// Vertices in order (either winding).
    pub points: Vec<Point2>,
}

impl Polygon {
    /// Wraps a vertex list.
    pub fn new(points: Vec<Point2>) -> Self {
        Polygon { points }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Signed area via the shoelace formula (positive for counter-clockwise
    /// winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.points.len();
        if n < 2 {
            return 0.0;
        }
        (0..n)
            .map(|i| self.points[i].distance(self.points[(i + 1) % n]))
            .sum()
    }

    /// Vertex centroid (arithmetic mean of the vertices).
    pub fn centroid(&self) -> Point2 {
        if self.points.is_empty() {
            return Point2::default();
        }
        let n = self.points.len() as f64;
        Point2::new(
            self.points.iter().map(|p| p.x).sum::<f64>() / n,
            self.points.iter().map(|p| p.y).sum::<f64>() / n,
        )
    }

    /// Axis-aligned bounding box `(min, max)`; `None` when empty.
    pub fn bbox(&self) -> Option<(Point2, Point2)> {
        let first = *self.points.first()?;
        let mut min = first;
        let mut max = first;
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }

    /// Even-odd point-in-polygon test. Points exactly on an edge may fall
    /// on either side (acceptable for infill clipping).
    pub fn contains(&self, p: Point2) -> bool {
        let n = self.points.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[j];
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Uniform scale about a fixed point.
    pub fn scaled_about(&self, factor: f64, center: Point2) -> Polygon {
        Polygon::new(
            self.points
                .iter()
                .map(|p| {
                    Point2::new(
                        center.x + (p.x - center.x) * factor,
                        center.y + (p.y - center.y) * factor,
                    )
                })
                .collect(),
        )
    }

    /// Approximate inward inset by `distance` mm, implemented as a scale
    /// toward the centroid. Exact offsets need a full polygon-offset
    /// algorithm; for the gear (a star-shaped polygon around its centroid)
    /// this approximation keeps perimeters strictly inside the outline,
    /// which is all the toolpath needs.
    pub fn inset_approx(&self, distance: f64) -> Polygon {
        let c = self.centroid();
        let mean_r = if self.points.is_empty() {
            1.0
        } else {
            self.points.iter().map(|p| p.distance(c)).sum::<f64>() / self.points.len() as f64
        };
        if mean_r <= distance {
            return Polygon::new(vec![c]);
        }
        self.scaled_about(1.0 - distance / mean_r, c)
    }

    /// Clips an infinite line (given by a point and a unit direction) to the
    /// polygon interior, returning the inside segments as point pairs.
    ///
    /// Uses even-odd pairing of the sorted edge intersections.
    pub fn clip_line(&self, origin: Point2, dir: Point2) -> Vec<(Point2, Point2)> {
        let n = self.points.len();
        if n < 3 {
            return Vec::new();
        }
        // Collect parametric intersections t where origin + t*dir crosses an
        // edge.
        let mut ts: Vec<f64> = Vec::new();
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            let ex = b.x - a.x;
            let ey = b.y - a.y;
            let denom = dir.x * ey - dir.y * ex;
            if denom.abs() < 1e-12 {
                continue; // parallel
            }
            let dx = a.x - origin.x;
            let dy = a.y - origin.y;
            let t = (dx * ey - dy * ex) / denom;
            let u = (dir.x * dy - dir.y * dx) / -denom;
            if (0.0..1.0).contains(&u) {
                ts.push(t);
            }
        }
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = Vec::new();
        for pair in ts.chunks_exact(2) {
            let (t0, t1) = (pair[0], pair[1]);
            let mid = (t0 + t1) / 2.0;
            let mid_pt = Point2::new(origin.x + mid * dir.x, origin.y + mid * dir.y);
            if self.contains(mid_pt) {
                out.push((
                    Point2::new(origin.x + t0 * dir.x, origin.y + t0 * dir.y),
                    Point2::new(origin.x + t1 * dir.x, origin.y + t1 * dir.y),
                ));
            }
        }
        out
    }
}

/// Generates the paper's gear outline: `teeth` trapezoidal teeth between a
/// root circle of `root_radius` and a tip circle of `tip_radius`, centred at
/// `center`.
///
/// # Panics
///
/// Panics if `teeth == 0` or radii are non-positive or inverted — these are
/// programmer errors in experiment configs.
pub fn gear_profile(center: Point2, teeth: usize, root_radius: f64, tip_radius: f64) -> Polygon {
    assert!(teeth > 0, "gear must have at least one tooth");
    assert!(
        root_radius > 0.0 && tip_radius > root_radius,
        "need 0 < root_radius < tip_radius"
    );
    let mut pts = Vec::with_capacity(teeth * 4);
    let pitch = std::f64::consts::TAU / teeth as f64;
    // Each tooth occupies half the pitch; flanks get 10% each.
    for k in 0..teeth {
        let base = k as f64 * pitch;
        let angles = [
            (base, root_radius),
            (base + 0.15 * pitch, tip_radius),
            (base + 0.45 * pitch, tip_radius),
            (base + 0.60 * pitch, root_radius),
        ];
        for (ang, r) in angles {
            pts.push(Point2::new(
                center.x + r * ang.cos(),
                center.y + r * ang.sin(),
            ));
        }
    }
    Polygon::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn square_properties() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!((sq.perimeter() - 4.0).abs() < 1e-12);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
        let (min, max) = sq.bbox().unwrap();
        assert_eq!((min.x, min.y, max.x, max.y), (0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn contains_works() {
        let sq = unit_square();
        assert!(sq.contains(Point2::new(0.5, 0.5)));
        assert!(!sq.contains(Point2::new(1.5, 0.5)));
        assert!(!sq.contains(Point2::new(-0.1, 0.5)));
        // Degenerate polygons contain nothing.
        assert!(!Polygon::new(vec![Point2::new(0.0, 0.0)]).contains(Point2::new(0.0, 0.0)));
    }

    #[test]
    fn scaled_about_center_shrinks_area_quadratically() {
        let sq = unit_square();
        let half = sq.scaled_about(0.5, sq.centroid());
        assert!((half.area() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inset_stays_inside() {
        let sq = unit_square();
        let inner = sq.inset_approx(0.1);
        for p in &inner.points {
            assert!(sq.contains(p.mid_nudge()), "{p:?} escaped");
        }
        // Inset by more than the mean radius collapses to the centroid.
        let collapsed = sq.inset_approx(10.0);
        assert_eq!(collapsed.len(), 1);
    }

    impl Point2 {
        /// Nudges a point a hair toward the unit square's center so that
        /// exact-on-edge points test as inside.
        fn mid_nudge(self) -> Point2 {
            Point2::new(
                self.x + (0.5 - self.x) * 1e-9,
                self.y + (0.5 - self.y) * 1e-9,
            )
        }
    }

    #[test]
    fn clip_horizontal_line_through_square() {
        let sq = unit_square();
        let segs = sq.clip_line(Point2::new(-5.0, 0.5), Point2::new(1.0, 0.0));
        assert_eq!(segs.len(), 1);
        let (a, b) = segs[0];
        assert!((a.x - 0.0).abs() < 1e-9 && (b.x - 1.0).abs() < 1e-9);
        assert!((a.y - 0.5).abs() < 1e-9 && (b.y - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clip_missing_line_yields_nothing() {
        let sq = unit_square();
        let segs = sq.clip_line(Point2::new(-5.0, 2.0), Point2::new(1.0, 0.0));
        assert!(segs.is_empty());
    }

    #[test]
    fn clip_concave_shape_yields_two_segments() {
        // A "U" shape: line through the middle crosses 4 edges -> 2 segments.
        let u = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(3.0, 2.0),
            Point2::new(2.0, 2.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ]);
        let segs = u.clip_line(Point2::new(-5.0, 1.5), Point2::new(1.0, 0.0));
        assert_eq!(segs.len(), 2, "{segs:?}");
    }

    #[test]
    fn gear_profile_shape() {
        let g = gear_profile(Point2::new(0.0, 0.0), 12, 25.0, 30.0);
        assert_eq!(g.len(), 48);
        // All vertices between root and tip radii.
        for p in &g.points {
            let r = p.distance(Point2::new(0.0, 0.0));
            assert!(r > 24.9 && r < 30.1);
        }
        // Area between root circle and tip circle areas.
        let a = g.area();
        assert!(a > std::f64::consts::PI * 25.0 * 25.0 * 0.9);
        assert!(a < std::f64::consts::PI * 30.0 * 30.0);
        // Center is inside.
        assert!(g.contains(Point2::new(0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "tooth")]
    fn gear_zero_teeth_panics() {
        let _ = gear_profile(Point2::default(), 0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "root_radius")]
    fn gear_bad_radii_panic() {
        let _ = gear_profile(Point2::default(), 8, 5.0, 3.0);
    }

    proptest! {
        #[test]
        fn prop_clip_segments_lie_inside(
            y in 0.01f64..0.99,
            angle in 0.0f64..std::f64::consts::PI,
        ) {
            let g = gear_profile(Point2::new(0.0, 0.0), 10, 20.0, 25.0);
            let dir = Point2::new(angle.cos(), angle.sin());
            let origin = Point2::new(-40.0 * dir.x + y, -40.0 * dir.y + y);
            for (a, b) in g.clip_line(origin, dir) {
                let mid = Point2::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
                prop_assert!(g.contains(mid));
            }
        }

        #[test]
        fn prop_scaling_scales_area(f in 0.1f64..2.0) {
            let g = gear_profile(Point2::new(3.0, -2.0), 8, 10.0, 12.0);
            let s = g.scaled_about(f, g.centroid());
            prop_assert!((s.area() - g.area() * f * f).abs() < 1e-6 * g.area());
        }
    }
}
