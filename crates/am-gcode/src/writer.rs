//! G-code text writer: inverse of [`crate::parser`].

use crate::model::{GCommand, GcodeProgram, MoveKind};
use std::fmt::Write as _;

/// Serializes one command to its canonical text form (no trailing newline).
pub fn write_command(cmd: &GCommand) -> String {
    let mut s = String::new();
    match cmd {
        GCommand::Move {
            kind,
            x,
            y,
            z,
            e,
            f,
        } => {
            s.push_str(match kind {
                MoveKind::Travel => "G0",
                MoveKind::Linear => "G1",
            });
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
            push_word(&mut s, 'F', *f);
        }
        GCommand::Dwell { seconds } => {
            let _ = write!(s, "G4 S{}", fmt_num(*seconds));
        }
        GCommand::Home => s.push_str("G28"),
        GCommand::SetPosition { x, y, z, e } => {
            s.push_str("G92");
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
        }
        GCommand::SetHotendTemp { celsius, wait } => {
            let _ = write!(
                s,
                "{} S{}",
                if *wait { "M109" } else { "M104" },
                fmt_num(*celsius)
            );
        }
        GCommand::SetBedTemp { celsius, wait } => {
            let _ = write!(
                s,
                "{} S{}",
                if *wait { "M190" } else { "M140" },
                fmt_num(*celsius)
            );
        }
        GCommand::FanOn { speed } => {
            let _ = write!(s, "M106 S{}", fmt_num((speed * 255.0).clamp(0.0, 255.0)));
        }
        GCommand::FanOff => s.push_str("M107"),
        GCommand::LayerMarker { index } => {
            let _ = write!(s, ";LAYER:{index}");
        }
        GCommand::Comment { text } => {
            let _ = write!(s, "; {text}");
        }
        GCommand::Other { raw } => s.push_str(raw),
    }
    s
}

fn push_word(s: &mut String, letter: char, value: Option<f64>) {
    if let Some(v) = value {
        let _ = write!(s, " {letter}{}", fmt_num(v));
    }
}

/// Formats a number with up to 5 decimal places, trimming trailing zeros —
/// enough precision to round-trip micron-scale coordinates.
fn fmt_num(v: f64) -> String {
    let mut out = format!("{v:.5}");
    while out.contains('.') && (out.ends_with('0') || out.ends_with('.')) {
        out.pop();
    }
    if out.is_empty() || out == "-" {
        out = "0".into();
    }
    out
}

/// Serializes a whole program, one command per line with a trailing newline.
pub fn write_program(prog: &GcodeProgram) -> String {
    let mut out = String::new();
    for cmd in prog.commands() {
        out.push_str(&write_command(cmd));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use proptest::prelude::*;

    #[test]
    fn writes_moves_compactly() {
        let cmd = GCommand::print_move(1.5, 2.0, 0.125, Some(1200.0));
        assert_eq!(write_command(&cmd), "G1 X1.5 Y2 E0.125 F1200");
        let t = GCommand::travel_move(0.0, -3.25, None);
        assert_eq!(write_command(&t), "G0 X0 Y-3.25");
    }

    #[test]
    fn writes_misc_commands() {
        assert_eq!(write_command(&GCommand::Home), "G28");
        assert_eq!(
            write_command(&GCommand::SetHotendTemp {
                celsius: 210.0,
                wait: true
            }),
            "M109 S210"
        );
        assert_eq!(write_command(&GCommand::FanOn { speed: 1.0 }), "M106 S255");
        assert_eq!(
            write_command(&GCommand::LayerMarker { index: 3 }),
            ";LAYER:3"
        );
        assert_eq!(write_command(&GCommand::Dwell { seconds: 0.5 }), "G4 S0.5");
    }

    #[test]
    fn fmt_num_trims() {
        assert_eq!(fmt_num(1.0), "1");
        assert_eq!(fmt_num(1.50), "1.5");
        assert_eq!(fmt_num(-0.00001), "-0.00001");
        assert_eq!(fmt_num(0.0), "0");
    }

    proptest! {
        #[test]
        fn prop_move_roundtrip(
            x in -200.0f64..200.0,
            y in -200.0f64..200.0,
            e in 0.0f64..100.0,
            f in 100.0f64..10000.0,
        ) {
            // Quantize to the writer's precision.
            let q = |v: f64| (v * 1e5).round() / 1e5;
            let cmd = GCommand::Move {
                kind: crate::model::MoveKind::Linear,
                x: Some(q(x)), y: Some(q(y)), z: None, e: Some(q(e)), f: Some(q(f)),
            };
            let prog = GcodeProgram::from_commands(vec![cmd.clone()]);
            let text = write_program(&prog);
            let back = parse_program(&text).unwrap();
            prop_assert_eq!(back.commands()[0].clone(), cmd);
        }
    }
}
