//! G-code substrate for the NSYNC reproduction.
//!
//! FDM printers are programmed in G-code (§II-A of the paper). This crate
//! provides everything the experiment pipeline needs on the G-code side:
//!
//! - [`model`]: a typed command model ([`model::GCommand`]) and program
//!   container ([`model::GcodeProgram`]),
//! - [`parser`] / [`writer`]: text ⇄ model round-tripping,
//! - [`geometry`]: the 2-D geometry needed by the slicer (gear profile,
//!   polygon clipping, approximate insets),
//! - [`slicer`]: a small slicer that turns the paper's gear model into a
//!   layered toolpath (perimeters + line/grid infill),
//! - [`attacks`]: the five malicious manipulations of Table I
//!   (Void, InfillGrid, Speed0.95, Layer0.3, Scale0.95).
//!
//! # Example
//!
//! ```
//! use am_gcode::slicer::{slice_gear, SliceConfig};
//! use am_gcode::attacks::Attack;
//!
//! # fn main() -> Result<(), am_gcode::GcodeError> {
//! let config = SliceConfig::small_gear();
//! let benign = slice_gear(&config)?;
//! let malicious = Attack::SpeedScale(0.95).apply(&benign, &config)?;
//! assert_eq!(benign.layer_count(), malicious.layer_count());
//! # Ok(())
//! # }
//! ```

pub mod attacks;
pub mod error;
pub mod geometry;
pub mod model;
pub mod parser;
pub mod slicer;
pub mod writer;

pub use error::GcodeError;
pub use model::{GCommand, GcodeProgram};
