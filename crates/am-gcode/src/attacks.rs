//! The five malicious printing processes of Table I.
//!
//! | Attack     | Paper description                     | Mechanism here |
//! |------------|---------------------------------------|----------------|
//! | Void       | "A void is inserted." [Sturm et al.]  | re-slice with a [`crate::slicer::VoidRegion`] |
//! | InfillGrid | "Infill pattern is changed to grid."  | re-slice with [`InfillPattern::Grid`] |
//! | Speed0.95  | "Printing speed is decreased by 5%."  | pure G-code transform: scale print-move `F` words |
//! | Layer0.3   | "Layer height is changed to 0.3 mm."  | re-slice with 0.3 mm layers |
//! | Scale0.95  | "The object is shrunk by 5%."         | re-slice with XY scale 0.95 |
//!
//! Speed scaling is also available as a *firmware* attack in `am-printer`
//! (the printer misbehaves despite benign G-code, per the threat model).

use crate::error::GcodeError;
use crate::model::{GCommand, GcodeProgram};
use crate::slicer::{slice_gear, InfillPattern, SliceConfig};
use serde::{Deserialize, Serialize};

/// One of the Table I attacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Attack {
    /// Insert a void into the part's infill.
    Void,
    /// Change the infill pattern to grid.
    InfillGrid,
    /// Scale printing feedrates by the given factor (paper: 0.95).
    SpeedScale(f64),
    /// Re-slice at the given layer height (paper: 0.3 mm).
    LayerHeight(f64),
    /// Shrink the object by the given XY factor (paper: 0.95).
    Scale(f64),
}

impl Attack {
    /// The paper's five attacks with their Table I parameters.
    pub fn table1() -> [Attack; 5] {
        [
            Attack::Void,
            Attack::InfillGrid,
            Attack::SpeedScale(0.95),
            Attack::LayerHeight(0.3),
            Attack::Scale(0.95),
        ]
    }

    /// Short identifier matching Table I's "Process" column.
    pub fn name(&self) -> String {
        match self {
            Attack::Void => "Void".into(),
            Attack::InfillGrid => "InfillGrid".into(),
            Attack::SpeedScale(f) => format!("Speed{f:.2}"),
            Attack::LayerHeight(h) => format!("Layer{h}"),
            Attack::Scale(f) => format!("Scale{f:.2}"),
        }
    }

    /// Applies the attack to a benign program.
    ///
    /// Re-slicing attacks need the original [`SliceConfig`]; the pure
    /// G-code attack ([`Attack::SpeedScale`]) transforms `benign` directly,
    /// exactly as an attacker intercepting the file would.
    ///
    /// # Errors
    ///
    /// Returns [`GcodeError::InvalidParameter`] for out-of-domain factors
    /// and propagates slicer errors.
    pub fn apply(
        &self,
        benign: &GcodeProgram,
        config: &SliceConfig,
    ) -> Result<GcodeProgram, GcodeError> {
        match *self {
            Attack::Void => {
                let mut cfg = config.clone();
                cfg.void_region = Some(config.default_void());
                slice_gear(&cfg)
            }
            Attack::InfillGrid => {
                let mut cfg = config.clone();
                cfg.infill_pattern = InfillPattern::Grid;
                slice_gear(&cfg)
            }
            Attack::SpeedScale(factor) => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(GcodeError::InvalidParameter(format!(
                        "speed factor must be positive, got {factor}"
                    )));
                }
                let mut out = benign.clone();
                for cmd in out.commands_mut() {
                    if let GCommand::Move {
                        e: Some(_),
                        f: Some(f),
                        ..
                    } = cmd
                    {
                        *f *= factor;
                    }
                }
                Ok(out)
            }
            Attack::LayerHeight(h) => {
                if !(h.is_finite() && h > 0.0) {
                    return Err(GcodeError::InvalidParameter(format!(
                        "layer height must be positive, got {h}"
                    )));
                }
                let mut cfg = config.clone();
                cfg.layer_height = h;
                slice_gear(&cfg)
            }
            Attack::Scale(s) => {
                if !(s.is_finite() && s > 0.0) {
                    return Err(GcodeError::InvalidParameter(format!(
                        "scale must be positive, got {s}"
                    )));
                }
                let mut cfg = config.clone();
                cfg.scale = s;
                slice_gear(&cfg)
            }
        }
    }
}

impl std::fmt::Display for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign() -> (GcodeProgram, SliceConfig) {
        let cfg = SliceConfig::small_gear();
        (slice_gear(&cfg).unwrap(), cfg)
    }

    #[test]
    fn table1_names() {
        let names: Vec<String> = Attack::table1().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Void", "InfillGrid", "Speed0.95", "Layer0.3", "Scale0.95"]
        );
    }

    #[test]
    fn void_reduces_extrusion_same_layers() {
        let (b, cfg) = benign();
        let m = Attack::Void.apply(&b, &cfg).unwrap();
        assert!(m.extruded_path_length() < b.extruded_path_length());
        assert_eq!(m.layer_count(), b.layer_count());
    }

    #[test]
    fn infill_grid_changes_structure() {
        let (b, cfg) = benign();
        let m = Attack::InfillGrid.apply(&b, &cfg).unwrap();
        assert_ne!(m.motion_count(), b.motion_count());
        assert_eq!(m.layer_count(), b.layer_count());
    }

    #[test]
    fn speed_scale_only_touches_feedrates() {
        let (b, cfg) = benign();
        let m = Attack::SpeedScale(0.95).apply(&b, &cfg).unwrap();
        assert_eq!(m.len(), b.len());
        assert_eq!(m.layer_count(), b.layer_count());
        // Path identical; only F words of extruding moves change.
        assert!((m.extruded_path_length() - b.extruded_path_length()).abs() < 1e-9);
        let mut changed = 0;
        for (a, bb) in b.commands().iter().zip(m.commands().iter()) {
            match (a, bb) {
                (
                    GCommand::Move {
                        e: Some(_),
                        f: Some(f1),
                        ..
                    },
                    GCommand::Move {
                        e: Some(_),
                        f: Some(f2),
                        ..
                    },
                ) => {
                    assert!((f2 / f1 - 0.95).abs() < 1e-9);
                    changed += 1;
                }
                _ => assert_eq!(a, bb),
            }
        }
        assert!(changed > 0);
    }

    #[test]
    fn layer_height_attack_changes_layer_count() {
        let (b, cfg) = benign();
        let m = Attack::LayerHeight(0.3).apply(&b, &cfg).unwrap();
        assert!(m.layer_count() < b.layer_count());
    }

    #[test]
    fn scale_attack_shrinks() {
        let (b, cfg) = benign();
        let m = Attack::Scale(0.95).apply(&b, &cfg).unwrap();
        assert!(m.extruded_path_length() < b.extruded_path_length());
    }

    #[test]
    fn invalid_factors_rejected() {
        let (b, cfg) = benign();
        assert!(Attack::SpeedScale(0.0).apply(&b, &cfg).is_err());
        assert!(Attack::LayerHeight(-1.0).apply(&b, &cfg).is_err());
        assert!(Attack::Scale(f64::NAN).apply(&b, &cfg).is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Attack::SpeedScale(0.95).to_string(), "Speed0.95");
    }
}
