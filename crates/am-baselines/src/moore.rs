//! Moore's IDS \[18\]: point-by-point comparison without any DSYNC.
//!
//! "This IDS essentially compares `a[n]` and `b[n]` without DSYNC to obtain
//! `v_dist[n]` ... where the distance metric is the Mean Absolute Error."
//! Since the original targets motor currents the paper could not access,
//! it (and we) apply the scheme to whatever side channel is available,
//! with NSYNC's OCC discriminator supplying the threshold (r = 0).
//!
//! Because nothing compensates for time noise, `v_dist` blows up on
//! *benign* runs as the signals drift out of alignment (Fig 2) — the
//! learned threshold therefore ends up so high that true attacks slip
//! under it. That failure mode is the paper's motivation, and this
//! implementation reproduces it.

use crate::error::BaselineError;
use crate::run::{BaselineDetector, RunData, Verdict};
use am_dsp::filter::trailing_min;
use am_dsp::Signal;

/// Spike-suppression window, matching NSYNC's discriminator default.
const FILTER_WINDOW: usize = 3;

/// Trained Moore detector.
#[derive(Debug, Clone)]
pub struct MooreIds {
    reference: Signal,
    threshold: f64,
    /// Comparison granularity: distances are computed per block of this
    /// many samples (1 = literal point-by-point; larger blocks are an
    /// optimization that preserves behaviour on slow channels).
    block: usize,
}

/// Point-by-point (block-averaged) MAE trace between two unaligned
/// signals, truncated to the shorter length.
fn mae_trace(a: &Signal, b: &Signal, block: usize) -> Vec<f64> {
    let n = a.len().min(b.len());
    let c = a.channels().min(b.channels());
    let blocks = n / block;
    let mut out = Vec::with_capacity(blocks);
    for bi in 0..blocks {
        let start = bi * block;
        let end = start + block;
        let mut acc = 0.0;
        for ch in 0..c {
            let ca = &a.channel(ch)[start..end];
            let cb = &b.channel(ch)[start..end];
            for (x, y) in ca.iter().zip(cb.iter()) {
                acc += (x - y).abs();
            }
        }
        out.push(acc / (block * c) as f64);
    }
    out
}

impl MooreIds {
    /// Trains on benign runs: the threshold is the max filtered MAE seen
    /// across training, with OCC margin `r`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] for empty training sets.
    pub fn train(reference: &RunData, training: &[RunData], r: f64) -> Result<Self, BaselineError> {
        Self::train_with_block(reference, training, r, 1)
    }

    /// Like [`MooreIds::train`] with an explicit comparison block size.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] for empty training sets
    /// or a zero block.
    pub fn train_with_block(
        reference: &RunData,
        training: &[RunData],
        r: f64,
        block: usize,
    ) -> Result<Self, BaselineError> {
        if training.is_empty() {
            return Err(BaselineError::InvalidTraining("no benign runs".into()));
        }
        if block == 0 {
            return Err(BaselineError::InvalidTraining("block must be >= 1".into()));
        }
        let mut maxima = Vec::with_capacity(training.len());
        for run in training {
            let trace = mae_trace(&run.signal, &reference.signal, block);
            let filtered = trailing_min(&trace, FILTER_WINDOW)?;
            maxima.push(filtered.iter().cloned().fold(0.0, f64::max));
        }
        let max = maxima.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = maxima.iter().cloned().fold(f64::INFINITY, f64::min);
        Ok(MooreIds {
            reference: reference.signal.clone(),
            threshold: max + r * (max - min),
            block,
        })
    }

    /// The learned threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl BaselineDetector for MooreIds {
    fn name(&self) -> String {
        "Moore".into()
    }

    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError> {
        let trace = mae_trace(&observed.signal, &self.reference, self.block);
        let filtered = trailing_min(&trace, FILTER_WINDOW)?;
        let fired = filtered.iter().any(|&v| v > self.threshold);
        Ok(Verdict::simple(fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(signal: Signal) -> RunData {
        RunData::new(signal, vec![0.0])
    }

    fn wave(fs: f64, n: usize, shift: f64, gain: f64) -> Signal {
        Signal::from_fn(fs, 1, n, |t, f| {
            f[0] = gain * ((1.1 * (t + shift)).sin() + 0.4 * (3.7 * (t + shift)).cos())
        })
        .unwrap()
    }

    #[test]
    fn aligned_identical_runs_pass() {
        let reference = run(wave(20.0, 1000, 0.0, 1.0));
        let training: Vec<RunData> = (0..3).map(|_| reference.clone()).collect();
        let ids = MooreIds::train(&reference, &training, 0.0).unwrap();
        let v = ids.detect(&reference).unwrap();
        assert!(!v.intrusion);
        assert_eq!(ids.name(), "Moore");
    }

    #[test]
    fn gross_content_change_detected_when_aligned() {
        let reference = run(wave(20.0, 1000, 0.0, 1.0));
        let training: Vec<RunData> = (0..3).map(|_| reference.clone()).collect();
        let ids = MooreIds::train(&reference, &training, 0.0).unwrap();
        let attack = run(wave(20.0, 1000, 0.0, 3.0)); // big amplitude change
        assert!(ids.detect(&attack).unwrap().intrusion);
    }

    #[test]
    fn time_noise_destroys_the_threshold() {
        // The paper's failure mode: training runs with small time shifts
        // inflate the threshold so much that a real attack hides under it.
        let reference = run(wave(20.0, 1000, 0.0, 1.0));
        let training: Vec<RunData> = (1..=3)
            .map(|i| run(wave(20.0, 1000, 0.3 * i as f64, 1.0)))
            .collect();
        let ids = MooreIds::train(&reference, &training, 0.0).unwrap();
        // A subtle attack: same toolpath, 15% amplitude change (e.g. a
        // firmware flow tweak). Easily visible when aligned, invisible
        // against a threshold inflated by misalignment.
        let attack = run(wave(20.0, 1000, 0.0, 1.15));
        let v = ids.detect(&attack).unwrap();
        // Threshold inflated by misalignment -> attack NOT detected.
        assert!(!v.intrusion, "threshold {}", ids.threshold());
    }

    #[test]
    fn training_validation() {
        let reference = run(wave(20.0, 100, 0.0, 1.0));
        assert!(MooreIds::train(&reference, &[], 0.0).is_err());
        assert!(
            MooreIds::train_with_block(&reference, std::slice::from_ref(&reference), 0.0, 0)
                .is_err()
        );
    }

    #[test]
    fn block_averaging_matches_pointwise_scale() {
        let a = wave(20.0, 1000, 0.0, 1.0);
        let b = wave(20.0, 1000, 0.1, 1.0);
        let p1 = mae_trace(&a, &b, 1);
        let p10 = mae_trace(&a, &b, 10);
        let mean1: f64 = p1.iter().sum::<f64>() / p1.len() as f64;
        let mean10: f64 = p10.iter().sum::<f64>() / p10.len() as f64;
        assert!((mean1 - mean10).abs() < 1e-9);
    }
}
