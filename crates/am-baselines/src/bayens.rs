//! Bayens' IDS \[4\]: Dejavu-style audio window fingerprinting.
//!
//! "This IDS compares side-channel signals window by window (90 s or
//! 120 s for the window size). This IDS first checks if the windows are
//! in sequence. If not, an intrusion is declared. It then checks the
//! scores for each window. If the score of any window is below a
//! pre-defined threshold, an intrusion is declared." Thresholds come from
//! NSYNC's OCC with r = 0 ("there are no details on how to obtain the
//! thresholds for a new printer"); audio only.
//!
//! Our retrieval engine: each observed window is matched against every
//! reference window by channel-averaged Pearson correlation (a stand-in
//! for Shazam-style constellation hashing that preserves the retrieval
//! semantics — find the best-matching reference window and a confidence
//! score).

use crate::error::BaselineError;
use crate::run::{BaselineDetector, RunData, Verdict};
use am_dsp::metrics::pearson;
use am_dsp::Signal;

/// Trained Bayens detector.
#[derive(Debug, Clone)]
pub struct BayensIds {
    reference_windows: Vec<Signal>,
    window_len: usize,
    score_threshold: f64,
}

fn split_windows(signal: &Signal, window_len: usize) -> Vec<Signal> {
    let count = signal.len() / window_len;
    (0..count)
        .map(|i| {
            signal
                .slice(i * window_len..(i + 1) * window_len)
                .expect("window bounds checked")
        })
        .collect()
}

fn window_score(a: &Signal, b: &Signal) -> f64 {
    let c = a.channels().min(b.channels());
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for ch in 0..c {
        acc += pearson(&a.channel(ch)[..n], &b.channel(ch)[..n]);
    }
    acc / c as f64
}

impl BayensIds {
    /// Trains the score threshold over benign runs (OCC margin `r`; the
    /// paper uses 0 because TPRs are already low).
    ///
    /// `window_seconds` is the retrieval window (the paper evaluates 90 s
    /// and 120 s; scaled experiments use proportionally smaller windows).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] when training is empty
    /// or the reference is shorter than one window.
    pub fn train(
        reference: &RunData,
        training: &[RunData],
        window_seconds: f64,
        r: f64,
    ) -> Result<Self, BaselineError> {
        if training.is_empty() {
            return Err(BaselineError::InvalidTraining("no benign runs".into()));
        }
        let window_len = (window_seconds * reference.signal.fs()).round() as usize;
        if window_len == 0 || reference.signal.len() < window_len {
            return Err(BaselineError::InvalidTraining(format!(
                "reference shorter than one {window_seconds} s window"
            )));
        }
        let reference_windows = split_windows(&reference.signal, window_len);
        // Learn the minimum best-match score seen across benign runs.
        let mut minima = Vec::with_capacity(training.len());
        for run in training {
            let mut min_score = f64::INFINITY;
            for w in split_windows(&run.signal, window_len) {
                let (_, score) = best_match(&w, &reference_windows);
                min_score = min_score.min(score);
            }
            if min_score.is_finite() {
                minima.push(min_score);
            }
        }
        if minima.is_empty() {
            return Err(BaselineError::InvalidTraining(
                "no training run contained a full window".into(),
            ));
        }
        let min = minima.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = minima.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Threshold below which a score is suspicious: OCC on the *low*
        // side (scores are similarities, higher is better).
        let score_threshold = min - r * (max - min);
        Ok(BayensIds {
            reference_windows,
            window_len,
            score_threshold,
        })
    }

    /// The learned minimum-acceptable retrieval score.
    pub fn score_threshold(&self) -> f64 {
        self.score_threshold
    }

    /// Runs the two sub-modules, returning `(sequence_fired,
    /// threshold_fired)`.
    pub fn sub_modules(&self, observed: &RunData) -> (bool, bool) {
        let mut sequence_fired = false;
        let mut threshold_fired = false;
        for (i, w) in split_windows(&observed.signal, self.window_len)
            .iter()
            .enumerate()
        {
            let (best, score) = best_match(w, &self.reference_windows);
            if best != i {
                sequence_fired = true;
            }
            if score < self.score_threshold {
                threshold_fired = true;
            }
        }
        (sequence_fired, threshold_fired)
    }
}

fn best_match(window: &Signal, references: &[Signal]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, r) in references.iter().enumerate() {
        let s = window_score(window, r);
        if s > best.1 {
            best = (i, s);
        }
    }
    best
}

impl BaselineDetector for BayensIds {
    fn name(&self) -> String {
        "Bayens".into()
    }

    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError> {
        let (sequence, threshold) = self.sub_modules(observed);
        Ok(Verdict {
            intrusion: sequence || threshold,
            sub_modules: vec![
                ("sequence".into(), sequence),
                ("threshold".into(), threshold),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process with distinct content per 10-second phase.
    fn phased(fs: f64, phases: usize, shift: f64) -> RunData {
        let n = (10.0 * fs) as usize * phases;
        let sig = Signal::from_fn(fs, 2, n, |t, f| {
            let phase = ((t / 10.0) as usize).min(phases - 1);
            let freq = 1.0 + phase as f64 * 0.7;
            f[0] = (freq * (t + shift) * std::f64::consts::TAU * 0.2).sin();
            f[1] = 0.8 * f[0];
        })
        .unwrap();
        RunData::new(sig, vec![0.0])
    }

    #[test]
    fn benign_windows_match_in_sequence() {
        let reference = phased(20.0, 6, 0.0);
        let training: Vec<RunData> = (1..=3).map(|i| phased(20.0, 6, 1e-3 * i as f64)).collect();
        let ids = BayensIds::train(&reference, &training, 10.0, 0.0).unwrap();
        let v = ids.detect(&phased(20.0, 6, 2e-3)).unwrap();
        assert!(!v.intrusion, "{v:?}");
    }

    #[test]
    fn reordered_content_fires_sequence() {
        let reference = phased(20.0, 6, 0.0);
        let training = vec![reference.clone()];
        let ids = BayensIds::train(&reference, &training, 10.0, 0.0).unwrap();
        // Build an observed run whose phases are swapped.
        let fs = 20.0;
        let n = (10.0 * fs) as usize * 6;
        let swapped = Signal::from_fn(fs, 2, n, |t, f| {
            let phase = ((t / 10.0) as usize).min(5);
            let order = [1usize, 0, 3, 2, 5, 4][phase];
            let freq = 1.0 + order as f64 * 0.7;
            f[0] = (freq * t * std::f64::consts::TAU * 0.2).sin();
            f[1] = 0.8 * f[0];
        })
        .unwrap();
        let v = ids.detect(&RunData::new(swapped, vec![0.0])).unwrap();
        assert_eq!(v.sub_module("sequence"), Some(true));
        assert!(v.intrusion);
    }

    #[test]
    fn alien_content_fires_threshold() {
        let reference = phased(20.0, 6, 0.0);
        let training: Vec<RunData> = (1..=3).map(|i| phased(20.0, 6, 1e-3 * i as f64)).collect();
        let ids = BayensIds::train(&reference, &training, 10.0, 0.0).unwrap();
        let noise = Signal::from_fn(20.0, 2, (10.0 * 20.0) as usize * 6, |t, f| {
            f[0] = ((t * 7919.0).sin() * 43758.5453).fract() - 0.5;
            f[1] = ((t * 104729.0).sin() * 23421.631).fract() - 0.5;
        })
        .unwrap();
        let v = ids.detect(&RunData::new(noise, vec![0.0])).unwrap();
        assert_eq!(v.sub_module("threshold"), Some(true), "{v:?}");
    }

    #[test]
    fn validation() {
        let r = phased(20.0, 2, 0.0);
        assert!(BayensIds::train(&r, &[], 10.0, 0.0).is_err());
        assert!(BayensIds::train(&r, std::slice::from_ref(&r), 1000.0, 0.0).is_err());
        let ids = BayensIds::train(&r, std::slice::from_ref(&r), 10.0, 0.0).unwrap();
        assert_eq!(ids.name(), "Bayens");
        assert!(ids.score_threshold().is_finite());
    }
}
