//! Shared input/output types for the baseline IDSs.

use crate::error::BaselineError;
use am_dsp::Signal;
use serde::{Deserialize, Serialize};

/// One captured printing process as the baselines consume it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunData {
    /// The side-channel signal (raw or spectrogram — the experiment
    /// decides which transformation to apply before handing it over).
    pub signal: Signal,
    /// Ground-truth layer-change times in seconds **relative to the
    /// signal's start**. The paper's coarse-DSYNC baselines obtain these
    /// from a bed accelerometer (Gao) or Z-motor currents (Gatlin); the
    /// simulator provides them exactly.
    pub layer_times: Vec<f64>,
}

impl RunData {
    /// Wraps a signal with its layer ground truth.
    pub fn new(signal: Signal, layer_times: Vec<f64>) -> Self {
        RunData {
            signal,
            layer_times,
        }
    }

    /// Sample index of layer `k`'s start, clamped into the signal.
    pub fn layer_start_index(&self, k: usize) -> usize {
        self.layer_times
            .get(k)
            .map(|&t| self.signal.index_at(t))
            .unwrap_or(self.signal.len().saturating_sub(1))
    }
}

/// A baseline's decision, with per-sub-module outcomes for the tables
/// that report them (Tables VI and VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// `true` if the IDS declares an intrusion.
    pub intrusion: bool,
    /// Named sub-module outcomes (`true` = that sub-module alone fired).
    pub sub_modules: Vec<(String, bool)>,
}

impl Verdict {
    /// A verdict with no sub-modules.
    pub fn simple(intrusion: bool) -> Self {
        Verdict {
            intrusion,
            sub_modules: Vec::new(),
        }
    }

    /// Looks up a sub-module outcome by name.
    pub fn sub_module(&self, name: &str) -> Option<bool> {
        self.sub_modules
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Common interface of the trained baseline detectors.
pub trait BaselineDetector {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Classifies one observed run.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] when the run cannot be processed.
    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_index_lookup() {
        let sig = Signal::mono(10.0, vec![0.0; 100]).unwrap();
        let run = RunData::new(sig, vec![0.0, 2.0, 5.0]);
        assert_eq!(run.layer_start_index(0), 0);
        assert_eq!(run.layer_start_index(1), 20);
        assert_eq!(run.layer_start_index(99), 99);
    }

    #[test]
    fn verdict_lookup() {
        let v = Verdict {
            intrusion: true,
            sub_modules: vec![("seq".into(), true), ("thr".into(), false)],
        };
        assert_eq!(v.sub_module("seq"), Some(true));
        assert_eq!(v.sub_module("thr"), Some(false));
        assert_eq!(v.sub_module("nope"), None);
        assert!(!Verdict::simple(false).intrusion);
    }
}
