//! Gatlin's IDS \[13\]: layer-change timing + per-layer fingerprints.
//!
//! Two sub-modules (Table VII's "Time" and "Match" columns):
//!
//! - **Time**: "an intrusion is declared if the layer changing moments
//!   differ from the expected values by pre-determined thresholds" —
//!   we compare each layer-change time against the reference's and learn
//!   the tolerance from benign runs (OCC, r = 0);
//! - **Match**: "instead of comparing power side-channel signals directly,
//!   the new IDS first extracts fingerprints ... for each layer and then
//!   compares the fingerprints", declaring an intrusion when "the number
//!   of fingerprint mismatches exceeds pre-determined thresholds". Our
//!   fingerprint is the layer's mean magnitude spectrum; mismatch =
//!   correlation distance above a learned per-layer tolerance.
//!
//! Layer moments come from ground truth (the original derives them from
//! Z-motor currents, which our simulator does not expose as a channel;
//! the paper itself "obtained the layer changing moments manually").

use crate::error::BaselineError;
use crate::run::{BaselineDetector, RunData, Verdict};
use am_dsp::fft::real_dft_magnitude;
use am_dsp::metrics::correlation_distance;
use am_dsp::Signal;

/// Fingerprint spectrum length (samples per layer are averaged over
/// chunks of this size).
const FP_CHUNK: usize = 256;

/// Trained Gatlin detector.
#[derive(Debug, Clone)]
pub struct GatlinIds {
    reference_layer_times: Vec<f64>,
    reference_fingerprints: Vec<Vec<f64>>,
    time_tolerance: f64,
    fp_tolerance: f64,
    mismatch_tolerance: usize,
}

/// Mean magnitude spectrum of one layer's samples, averaged over
/// fixed-size chunks and across channels.
fn layer_fingerprint(signal: &Signal, start: usize, end: usize) -> Vec<f64> {
    let end = end.min(signal.len());
    let bins = FP_CHUNK / 2 + 1;
    let mut acc = vec![0.0f64; bins];
    let mut count = 0usize;
    for c in 0..signal.channels() {
        let ch = &signal.channel(c)[start..end];
        for chunk in ch.chunks_exact(FP_CHUNK) {
            let mag = real_dft_magnitude(chunk);
            for (a, m) in acc.iter_mut().zip(mag.iter()) {
                *a += m;
            }
            count += 1;
        }
    }
    if count > 0 {
        for a in &mut acc {
            *a /= count as f64;
        }
    }
    acc
}

fn fingerprints_of(run: &RunData) -> Vec<Vec<f64>> {
    let layers = run.layer_times.len();
    (0..layers)
        .map(|k| {
            let start = run.layer_start_index(k);
            let end = if k + 1 < layers {
                run.layer_start_index(k + 1)
            } else {
                run.signal.len()
            };
            layer_fingerprint(&run.signal, start, end)
        })
        .collect()
}

impl GatlinIds {
    /// Trains both sub-modules from benign runs (OCC with margin `r`).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] for empty training sets
    /// or missing layer ground truth.
    pub fn train(reference: &RunData, training: &[RunData], r: f64) -> Result<Self, BaselineError> {
        if training.is_empty() {
            return Err(BaselineError::InvalidTraining("no benign runs".into()));
        }
        if reference.layer_times.is_empty() {
            return Err(BaselineError::InvalidTraining(
                "reference lacks layer ground truth".into(),
            ));
        }
        let ref_fps = fingerprints_of(reference);
        let mut time_maxima = Vec::new();
        let mut fp_maxima = Vec::new();
        let mut mismatch_counts = Vec::new();
        for run in training {
            // Time deviations.
            let dev = run
                .layer_times
                .iter()
                .zip(reference.layer_times.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            time_maxima.push(dev);
            // Fingerprint distances.
            let fps = fingerprints_of(run);
            let mut max_d = 0.0f64;
            for (f, rf) in fps.iter().zip(ref_fps.iter()) {
                max_d = max_d.max(correlation_distance(f, rf));
            }
            fp_maxima.push(max_d);
            mismatch_counts.push(0usize); // at training tolerance, 0 by construction
        }
        let occ = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            max + r * (max - min)
        };
        Ok(GatlinIds {
            reference_layer_times: reference.layer_times.clone(),
            reference_fingerprints: ref_fps,
            time_tolerance: occ(&time_maxima),
            fp_tolerance: occ(&fp_maxima),
            mismatch_tolerance: mismatch_counts.into_iter().max().unwrap_or(0),
        })
    }

    /// Runs the two sub-modules, returning `(time_fired, match_fired)`.
    pub fn sub_modules(&self, observed: &RunData) -> (bool, bool) {
        // Time: layer count change or any layer moment outside tolerance.
        let time_fired = observed.layer_times.len() != self.reference_layer_times.len()
            || observed
                .layer_times
                .iter()
                .zip(self.reference_layer_times.iter())
                .any(|(a, b)| (a - b).abs() > self.time_tolerance);
        // Match: count fingerprint mismatches.
        let fps = fingerprints_of(observed);
        let mismatches = fps
            .iter()
            .zip(self.reference_fingerprints.iter())
            .filter(|(f, rf)| correlation_distance(f, rf) > self.fp_tolerance)
            .count();
        let match_fired = mismatches > self.mismatch_tolerance;
        (time_fired, match_fired)
    }
}

impl BaselineDetector for GatlinIds {
    fn name(&self) -> String {
        "Gatlin".into()
    }

    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError> {
        let (time_fired, match_fired) = self.sub_modules(observed);
        Ok(Verdict {
            intrusion: time_fired || match_fired,
            sub_modules: vec![("time".into(), time_fired), ("match".into(), match_fired)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layered(fs: f64, layers: usize, layer_secs: f64, jitter: f64, tone: f64) -> RunData {
        layered_seeded(fs, layers, layer_secs, jitter, tone, 0)
    }

    /// `seed` adds small per-run amplitude noise so fingerprint distances
    /// span a realistic non-zero range during training.
    fn layered_seeded(
        fs: f64,
        layers: usize,
        layer_secs: f64,
        jitter: f64,
        tone: f64,
        seed: u64,
    ) -> RunData {
        let mut times = Vec::new();
        let mut samples = Vec::new();
        let mut acc = 0.0;
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64 - 0.5
        };
        for k in 0..layers {
            times.push(acc);
            let secs = layer_secs + jitter * ((k * 7919 % 13) as f64 / 13.0 - 0.5);
            let n = (secs * fs) as usize;
            for i in 0..n {
                let t = i as f64 / fs;
                samples.push(
                    (tone * (k % 3 + 1) as f64 * t * std::f64::consts::TAU).sin() + 0.05 * noise(),
                );
            }
            acc += secs;
        }
        RunData::new(Signal::mono(fs, samples).unwrap(), times)
    }

    #[test]
    fn benign_within_tolerances() {
        let reference = layered(200.0, 4, 8.0, 0.0, 5.0);
        let training: Vec<RunData> = [(0.1, 1u64), (0.2, 2), (0.3, 3)]
            .iter()
            .map(|&(j, s)| layered_seeded(200.0, 4, 8.0, j, 5.0, s))
            .collect();
        let ids = GatlinIds::train(&reference, &training, 0.5).unwrap();
        let benign = layered_seeded(200.0, 4, 8.0, 0.15, 5.0, 4);
        let v = ids.detect(&benign).unwrap();
        assert!(!v.intrusion, "{v:?}");
    }

    #[test]
    fn timing_attack_fires_time_submodule() {
        let reference = layered(200.0, 4, 8.0, 0.0, 5.0);
        let training: Vec<RunData> = (1..=3).map(|_| layered(200.0, 4, 8.0, 0.05, 5.0)).collect();
        let ids = GatlinIds::train(&reference, &training, 0.0).unwrap();
        // 10% slower print: layer moments drift by ~0.8 s per layer.
        let attack = layered(200.0, 4, 8.8, 0.0, 5.0);
        let v = ids.detect(&attack).unwrap();
        assert!(v.intrusion);
        assert_eq!(v.sub_module("time"), Some(true));
    }

    #[test]
    fn content_attack_fires_match_submodule() {
        let reference = layered(200.0, 4, 8.0, 0.0, 5.0);
        let training: Vec<RunData> = (1..=3).map(|_| layered(200.0, 4, 8.0, 0.01, 5.0)).collect();
        let ids = GatlinIds::train(&reference, &training, 0.0).unwrap();
        // Same timing, different spectral content per layer.
        let attack = layered(200.0, 4, 8.0, 0.01, 9.0);
        let v = ids.detect(&attack).unwrap();
        assert_eq!(v.sub_module("match"), Some(true), "{v:?}");
    }

    #[test]
    fn layer_count_change_is_a_time_violation() {
        let reference = layered(200.0, 4, 8.0, 0.0, 5.0);
        let training = vec![reference.clone()];
        let ids = GatlinIds::train(&reference, &training, 0.0).unwrap();
        // Layer0.3-style attack: fewer, taller layers.
        let attack = layered(200.0, 3, 10.7, 0.0, 5.0);
        let v = ids.detect(&attack).unwrap();
        assert_eq!(v.sub_module("time"), Some(true));
    }

    #[test]
    fn validation() {
        let r = layered(200.0, 3, 4.0, 0.0, 5.0);
        assert!(GatlinIds::train(&r, &[], 0.0).is_err());
        let no_layers = RunData::new(Signal::mono(200.0, vec![0.0; 100]).unwrap(), vec![]);
        assert!(GatlinIds::train(&no_layers, std::slice::from_ref(&r), 0.0).is_err());
    }
}
