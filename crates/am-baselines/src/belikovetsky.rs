//! Belikovetsky's IDS \[5\]: PCA-compressed spectrogram + cosine
//! similarity with a fixed magic-number rule.
//!
//! "This IDS applies PCA to compress the number of channels of the
//! spectrogram of the observed signal down to three ... a and b are then
//! compared point by point without DSYNC using the cosine distance
//! metric. A window of five seconds is used to calculate the moving
//! average ... If the average distances of four consecutive windows drop
//! below 0.63, then an intrusion is detected."
//!
//! Note the hard-coded 0.63: the paper criticizes magic-number thresholds
//! precisely because they don't transfer across printers/sensors — our
//! reproduction keeps the original rule (with the constant configurable
//! for ablations). The detector expects **spectrogram** inputs, audio
//! only, exactly as in the original.

use crate::error::BaselineError;
use crate::run::{BaselineDetector, RunData, Verdict};
use am_dsp::filter::moving_average;
use am_dsp::metrics::cosine_distance;
use am_dsp::pca::Pca;
use am_dsp::Signal;

/// Trained Belikovetsky detector.
#[derive(Debug)]
pub struct BelikovetskyIds {
    pca: Pca,
    reference_compressed: Signal,
    /// Similarity floor (the paper's 0.63).
    pub similarity_floor: f64,
    /// Consecutive below-floor evaluations needed (the paper's 4).
    pub consecutive: usize,
    /// Moving-average window in seconds (the paper's 5).
    pub average_seconds: f64,
}

impl BelikovetskyIds {
    /// Fits the PCA on the reference spectrogram and stores the original
    /// rule's constants.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] when the reference has
    /// fewer than 3 channels or 2 samples.
    pub fn train(reference: &RunData) -> Result<Self, BaselineError> {
        if reference.signal.channels() < 3 {
            return Err(BaselineError::InvalidTraining(
                "belikovetsky needs a spectrogram with >= 3 channels".into(),
            ));
        }
        let pca = Pca::fit(&reference.signal, 3).map_err(BaselineError::from)?;
        let reference_compressed = pca.transform(&reference.signal)?;
        Ok(BelikovetskyIds {
            pca,
            reference_compressed,
            similarity_floor: 0.63,
            consecutive: 4,
            average_seconds: 5.0,
        })
    }

    /// The per-point cosine **similarity** trace (1 − cosine distance)
    /// after PCA compression, moving-averaged.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidRun`] for channel mismatches.
    pub fn similarity_trace(&self, observed: &RunData) -> Result<Vec<f64>, BaselineError> {
        let compressed = self
            .pca
            .transform(&observed.signal)
            .map_err(|e| BaselineError::InvalidRun(e.to_string()))?;
        let n = compressed.len().min(self.reference_compressed.len());
        let sims: Vec<f64> = (0..n)
            .map(|i| {
                let u: Vec<f64> = (0..3).map(|c| compressed.sample(i, c)).collect();
                let v: Vec<f64> = (0..3)
                    .map(|c| self.reference_compressed.sample(i, c))
                    .collect();
                1.0 - cosine_distance(&u, &v)
            })
            .collect();
        let window = ((self.average_seconds * observed.signal.fs()).round() as usize).max(1);
        Ok(moving_average(&sims, window)?)
    }
}

impl BaselineDetector for BelikovetskyIds {
    fn name(&self) -> String {
        "Belikovetsky".into()
    }

    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError> {
        let trace = self.similarity_trace(observed)?;
        // Evaluate at 1-average-window strides: "four consecutive windows".
        let stride = ((self.average_seconds * observed.signal.fs()).round() as usize).max(1);
        let mut below = 0usize;
        let mut fired = false;
        let mut i = stride.saturating_sub(1);
        while i < trace.len() {
            if trace[i] < self.similarity_floor {
                below += 1;
                if below >= self.consecutive {
                    fired = true;
                    break;
                }
            } else {
                below = 0;
            }
            i += stride;
        }
        Ok(Verdict::simple(fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake "spectrogram": 8 channels with structured, time-varying
    /// content.
    fn spectro(fs: f64, secs: f64, flavor: f64) -> RunData {
        let n = (fs * secs) as usize;
        let sig = Signal::from_fn(fs, 8, n, |t, f| {
            for (c, v) in f.iter_mut().enumerate() {
                *v = ((0.2 + 0.13 * c as f64) * flavor * t).sin() + 0.1 * (c as f64);
            }
        })
        .unwrap();
        RunData::new(sig, vec![0.0])
    }

    #[test]
    fn identical_process_stays_similar() {
        let reference = spectro(4.0, 120.0, 1.0);
        let ids = BelikovetskyIds::train(&reference).unwrap();
        let v = ids.detect(&reference).unwrap();
        assert!(!v.intrusion);
        let trace = ids.similarity_trace(&reference).unwrap();
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!(mean > 0.95, "self-similarity {mean}");
    }

    #[test]
    fn different_process_dips_below_floor() {
        let reference = spectro(4.0, 120.0, 1.0);
        let ids = BelikovetskyIds::train(&reference).unwrap();
        let attack = spectro(4.0, 120.0, 3.7);
        let v = ids.detect(&attack).unwrap();
        assert!(v.intrusion);
    }

    #[test]
    fn needs_enough_channels() {
        let thin = RunData::new(
            Signal::from_channels(4.0, vec![vec![0.0; 100], vec![0.0; 100]]).unwrap(),
            vec![0.0],
        );
        assert!(BelikovetskyIds::train(&thin).is_err());
    }

    #[test]
    fn channel_mismatch_rejected_at_detect() {
        let reference = spectro(4.0, 60.0, 1.0);
        let ids = BelikovetskyIds::train(&reference).unwrap();
        let wrong = RunData::new(
            Signal::from_channels(4.0, vec![vec![0.0; 100]; 5]).unwrap(),
            vec![0.0],
        );
        assert!(ids.detect(&wrong).is_err());
        assert_eq!(ids.name(), "Belikovetsky");
    }
}
