//! Gao's IDS \[12\]: Moore-style comparison with **coarse** (layer-level)
//! re-synchronization.
//!
//! "This IDS is similar to the Moore's IDS except two aspects. First, a
//! and b are synchronized at moments when a layer change happens. Second,
//! there is no discriminator" — so the paper (and we) attach NSYNC's OCC
//! discriminator with r = 0. Layer-change moments come from ground truth
//! (the original uses a dedicated bed accelerometer).
//!
//! Re-aligning at each layer bounds the drift to what accumulates within
//! one layer — better than Moore, still blind to intra-layer time noise.

use crate::error::BaselineError;
use crate::run::{BaselineDetector, RunData, Verdict};
use am_dsp::filter::trailing_min;

const FILTER_WINDOW: usize = 3;

/// Trained Gao detector.
#[derive(Debug, Clone)]
pub struct GaoIds {
    reference: RunData,
    threshold: f64,
    block: usize,
}

/// Layer-aligned MAE trace: for each layer `k`, compare the observed
/// samples of layer `k` against the reference samples of layer `k`,
/// starting both at their own layer-change moment.
fn layer_mae_trace(observed: &RunData, reference: &RunData, block: usize) -> Vec<f64> {
    let layers = observed.layer_times.len().min(reference.layer_times.len());
    let mut out = Vec::new();
    let c = observed.signal.channels().min(reference.signal.channels());
    for k in 0..layers {
        let ao = observed.layer_start_index(k);
        let ar = reference.layer_start_index(k);
        let eo = if k + 1 < layers {
            observed.layer_start_index(k + 1)
        } else {
            observed.signal.len()
        };
        let er = if k + 1 < layers {
            reference.layer_start_index(k + 1)
        } else {
            reference.signal.len()
        };
        let n = (eo - ao).min(er - ar);
        let blocks = n / block;
        for bi in 0..blocks {
            let start = bi * block;
            let mut acc = 0.0;
            for ch in 0..c {
                let co = &observed.signal.channel(ch)[ao + start..ao + start + block];
                let cr = &reference.signal.channel(ch)[ar + start..ar + start + block];
                for (x, y) in co.iter().zip(cr.iter()) {
                    acc += (x - y).abs();
                }
            }
            out.push(acc / (block * c) as f64);
        }
    }
    out
}

impl GaoIds {
    /// Trains with OCC margin `r` (the paper uses 0 here).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidTraining`] for empty training sets
    /// or runs without layer ground truth.
    pub fn train(reference: &RunData, training: &[RunData], r: f64) -> Result<Self, BaselineError> {
        Self::train_with_block(reference, training, r, 1)
    }

    /// Like [`GaoIds::train`] with an explicit comparison block size.
    ///
    /// # Errors
    ///
    /// Same as [`GaoIds::train`], plus zero `block`.
    pub fn train_with_block(
        reference: &RunData,
        training: &[RunData],
        r: f64,
        block: usize,
    ) -> Result<Self, BaselineError> {
        if training.is_empty() {
            return Err(BaselineError::InvalidTraining("no benign runs".into()));
        }
        if block == 0 {
            return Err(BaselineError::InvalidTraining("block must be >= 1".into()));
        }
        if reference.layer_times.is_empty() {
            return Err(BaselineError::InvalidTraining(
                "reference lacks layer ground truth".into(),
            ));
        }
        let mut maxima = Vec::with_capacity(training.len());
        for t in training {
            let trace = layer_mae_trace(t, reference, block);
            let filtered = trailing_min(&trace, FILTER_WINDOW)?;
            maxima.push(filtered.iter().cloned().fold(0.0, f64::max));
        }
        let max = maxima.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = maxima.iter().cloned().fold(f64::INFINITY, f64::min);
        Ok(GaoIds {
            reference: reference.clone(),
            threshold: max + r * (max - min),
            block,
        })
    }

    /// The learned threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl BaselineDetector for GaoIds {
    fn name(&self) -> String {
        "Gao".into()
    }

    fn detect(&self, observed: &RunData) -> Result<Verdict, BaselineError> {
        let trace = layer_mae_trace(observed, &self.reference, self.block);
        let filtered = trailing_min(&trace, FILTER_WINDOW)?;
        Ok(Verdict::simple(
            filtered.iter().any(|&v| v > self.threshold),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dsp::Signal;

    /// Builds a run whose layers each contain a distinctive tone; layer
    /// boundaries drift by `drift` seconds per layer.
    fn layered_run(
        fs: f64,
        layers: usize,
        layer_secs: f64,
        drift: f64,
        freq_scale: f64,
    ) -> RunData {
        let mut times = Vec::new();
        let mut samples = Vec::new();
        let mut t_acc = 0.0;
        for k in 0..layers {
            times.push(t_acc);
            let secs = layer_secs + drift * (k as f64 + 1.0);
            let n = (secs * fs) as usize;
            for i in 0..n {
                let t = i as f64 / fs;
                samples.push(((k + 1) as f64 * freq_scale * t).sin());
            }
            t_acc += secs;
        }
        RunData::new(Signal::mono(fs, samples).unwrap(), times)
    }

    #[test]
    fn layer_alignment_absorbs_interlayer_drift() {
        // Observed drifts 0.2 s per layer; Gao re-aligns at each layer,
        // so the MAE within each layer stays small at the layer start.
        let reference = layered_run(50.0, 5, 4.0, 0.0, 2.0);
        let training: Vec<RunData> = (1..=3)
            .map(|i| layered_run(50.0, 5, 4.0, 0.02 * i as f64, 2.0))
            .collect();
        let ids = GaoIds::train(&reference, &training, 0.0).unwrap();
        let benign = layered_run(50.0, 5, 4.0, 0.03, 2.0);
        assert!(!ids.detect(&benign).unwrap().intrusion);
    }

    #[test]
    fn content_change_detected() {
        let reference = layered_run(50.0, 5, 4.0, 0.0, 2.0);
        let training: Vec<RunData> = (1..=3)
            .map(|i| layered_run(50.0, 5, 4.0, 0.005 * i as f64, 2.0))
            .collect();
        let ids = GaoIds::train(&reference, &training, 0.0).unwrap();
        // Different per-layer content.
        let attack = layered_run(50.0, 5, 4.0, 0.0, 3.5);
        assert!(ids.detect(&attack).unwrap().intrusion);
    }

    #[test]
    fn validation() {
        let r = layered_run(50.0, 3, 2.0, 0.0, 2.0);
        assert!(GaoIds::train(&r, &[], 0.0).is_err());
        let no_layers = RunData::new(Signal::mono(50.0, vec![0.0; 100]).unwrap(), vec![]);
        assert!(GaoIds::train(&no_layers, std::slice::from_ref(&r), 0.0).is_err());
        assert!(GaoIds::train_with_block(&r, std::slice::from_ref(&r), 0.0, 0).is_err());
        assert_eq!(
            GaoIds::train(&r, std::slice::from_ref(&r), 0.0)
                .unwrap()
                .name(),
            "Gao"
        );
    }
}
