//! Error type for the baseline IDSs.

use am_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Errors from baseline IDS training or detection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Training input was empty or inconsistent.
    InvalidTraining(String),
    /// The observed run is unusable (too short, wrong shape).
    InvalidRun(String),
    /// An underlying DSP operation failed.
    Dsp(DspError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidTraining(m) => write!(f, "invalid training: {m}"),
            BaselineError::InvalidRun(m) => write!(f, "invalid run: {m}"),
            BaselineError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for BaselineError {
    fn from(e: DspError) -> Self {
        BaselineError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: BaselineError = DspError::NoChannels.into();
        assert!(e.to_string().contains("dsp"));
        assert!(BaselineError::InvalidRun("x".into())
            .to_string()
            .contains("x"));
    }
}
