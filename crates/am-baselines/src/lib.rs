//! The five prior IDSs the paper evaluates against NSYNC (§III,
//! §VIII-C/D).
//!
//! | IDS | DSYNC level | Mechanism |
//! |---|---|---|
//! | [`moore`] | none | point-by-point MAE against the reference |
//! | [`bayens`] | none | Dejavu-style window fingerprinting (sequence + threshold sub-modules), audio only |
//! | [`belikovetsky`] | none | PCA-compressed spectrogram + cosine similarity + fixed 0.63 rule, audio only |
//! | [`gao`] | coarse (layer) | Moore-style comparison re-aligned at every layer change |
//! | [`gatlin`] | coarse (layer) | layer-change timing + per-layer spectral fingerprints |
//!
//! None of these is aware of fine-grained time noise — which is the
//! paper's point. Where the original work lacks an automatic decision
//! module or published thresholds (Gao, Moore, Bayens), the paper plugs in
//! NSYNC's OCC scheme with `r = 0`; we do the same.

pub mod bayens;
pub mod belikovetsky;
pub mod error;
pub mod gao;
pub mod gatlin;
pub mod moore;
pub mod run;

pub use error::BaselineError;
pub use run::{BaselineDetector, RunData, Verdict};
