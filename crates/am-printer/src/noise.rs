//! The time-noise model (§I, §II-A).
//!
//! The paper attributes time noise to "frame drops in data acquisition
//! systems, mechanical and thermal delays in devices, and task scheduling
//! in operating systems". We model each mechanism explicitly so
//! experiments can ablate them:
//!
//! - **duration jitter** (mechanical/thermal delay): every move's duration
//!   is multiplied by `1 + N(0, duration_jitter_sigma)`,
//! - **random gaps** (task scheduling / queueing): with probability
//!   `gap_probability`, an exponentially distributed pause of mean
//!   `gap_mean_s` is inserted between moves,
//! - **clock skew** (crystal tolerance / long-term drift): a per-run
//!   constant rate multiplier `1 + N(0, clock_skew_sigma)`,
//! - frame drops live in the DAQ model (`am-sensors`), where they
//!   physically occur.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Time-noise configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeNoise {
    /// Std-dev of the per-move fractional duration jitter.
    pub duration_jitter_sigma: f64,
    /// Probability of a scheduling gap after any move.
    pub gap_probability: f64,
    /// Mean gap duration in seconds (exponential).
    pub gap_mean_s: f64,
    /// Std-dev of the per-run clock-rate multiplier.
    pub clock_skew_sigma: f64,
}

impl TimeNoise {
    /// No noise at all: repeated runs are bit-identical in time. Used for
    /// reference signals generated "by simulation" (§IV) and for tests.
    pub fn disabled() -> Self {
        TimeNoise {
            duration_jitter_sigma: 0.0,
            gap_probability: 0.0,
            gap_mean_s: 0.0,
            clock_skew_sigma: 0.0,
        }
    }

    /// Realistic desktop-printer noise. Steppers execute deterministic
    /// step counts, so per-move duration jitter is tiny (0.2%); the
    /// dominant time-noise mechanisms are queue/scheduling gaps and clock
    /// skew, which accumulate to the seconds-scale end misalignment of
    /// Fig 1 over a multi-minute print without decorrelating the signal
    /// *within* a comparison window.
    pub fn default_printer() -> Self {
        TimeNoise {
            duration_jitter_sigma: 0.002,
            gap_probability: 0.02,
            gap_mean_s: 0.05,
            clock_skew_sigma: 0.002,
        }
    }

    /// `true` if every mechanism is switched off.
    pub fn is_disabled(&self) -> bool {
        self.duration_jitter_sigma == 0.0
            && self.gap_probability == 0.0
            && self.clock_skew_sigma == 0.0
    }

    /// Samples the multiplicative duration factor for one move (>= 0.1 to
    /// keep durations positive under extreme draws).
    pub fn sample_duration_factor<R: Rng>(&self, rng: &mut R) -> f64 {
        (1.0 + self.duration_jitter_sigma * gaussian(rng)).max(0.1)
    }

    /// Samples the gap after a move: usually 0, occasionally exponential.
    pub fn sample_gap<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.gap_probability > 0.0 && rng.gen::<f64>() < self.gap_probability {
            exponential(rng, self.gap_mean_s)
        } else {
            0.0
        }
    }

    /// Samples the per-run clock-rate multiplier.
    pub fn sample_clock_rate<R: Rng>(&self, rng: &mut R) -> f64 {
        (1.0 + self.clock_skew_sigma * gaussian(rng)).max(0.5)
    }
}

/// Standard normal via Box–Muller (the offline crate set has no
/// `rand_distr`).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Exponential with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen::<f64>().max(1e-300);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_noise_is_identity() {
        let n = TimeNoise::disabled();
        assert!(n.is_disabled());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(n.sample_duration_factor(&mut rng), 1.0);
            assert_eq!(n.sample_gap(&mut rng), 0.0);
            assert_eq!(n.sample_clock_rate(&mut rng), 1.0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert_eq!(exponential(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn duration_factor_stays_positive() {
        let noise = TimeNoise {
            duration_jitter_sigma: 5.0, // absurdly large
            ..TimeNoise::default_printer()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(noise.sample_duration_factor(&mut rng) >= 0.1);
        }
    }

    #[test]
    fn gap_frequency_matches_probability() {
        let noise = TimeNoise::default_printer();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let gaps = (0..n).filter(|_| noise.sample_gap(&mut rng) > 0.0).count();
        let rate = gaps as f64 / n as f64;
        assert!((rate - noise.gap_probability).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn reproducible_under_same_seed() {
        let noise = TimeNoise::default_printer();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                noise.sample_duration_factor(&mut a),
                noise.sample_duration_factor(&mut b)
            );
        }
    }
}
