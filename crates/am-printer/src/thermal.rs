//! First-order heater dynamics with bang-bang control.
//!
//! `dT/dt = heat_rate · duty − (T − ambient)/tau`
//!
//! The hotend/bed temperatures and heater duty cycles drive the TMP and
//! PWR side channels. The paper finds both are *weakly* correlated with
//! printer motion (they are dominated by the thermal control loop, not the
//! toolpath) and drops them after §VIII-B — our model reproduces exactly
//! that property: duty cycling depends on the setpoint schedule, only
//! faintly on motion.

use serde::{Deserialize, Serialize};

/// Parameters of one heater + thermal mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient temperature (deg C).
    pub ambient: f64,
    /// Cooling time constant (s).
    pub tau: f64,
    /// Heating rate at full duty (deg C / s).
    pub heat_rate: f64,
    /// Bang-bang hysteresis half-width (deg C).
    pub hysteresis: f64,
}

impl ThermalParams {
    /// Hotend-like: fast heating, fast cooling.
    pub fn hotend() -> Self {
        ThermalParams {
            ambient: 25.0,
            tau: 60.0,
            heat_rate: 15.0,
            hysteresis: 2.0,
        }
    }

    /// Bed-like: slower but still experiment-friendly.
    pub fn bed() -> Self {
        ThermalParams {
            ambient: 25.0,
            tau: 180.0,
            heat_rate: 6.0,
            hysteresis: 1.0,
        }
    }
}

/// Simulated heater state advanced by explicit Euler steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeaterState {
    /// Current temperature (deg C).
    pub temperature: f64,
    /// Current duty (0 or 1 for bang-bang).
    pub duty: f64,
    heating: bool,
}

impl HeaterState {
    /// Starts at ambient, heater off.
    pub fn new(params: &ThermalParams) -> Self {
        HeaterState {
            temperature: params.ambient,
            duty: 0.0,
            heating: false,
        }
    }

    /// Advances the state by `dt` seconds toward `setpoint` (deg C;
    /// `0` disables the heater entirely).
    pub fn step(&mut self, params: &ThermalParams, setpoint: f64, dt: f64) {
        if setpoint <= params.ambient {
            self.heating = false;
        } else if self.temperature < setpoint - params.hysteresis {
            self.heating = true;
        } else if self.temperature > setpoint + params.hysteresis {
            self.heating = false;
        }
        self.duty = if self.heating { 1.0 } else { 0.0 };
        let d_temp =
            params.heat_rate * self.duty - (self.temperature - params.ambient) / params.tau;
        self.temperature += d_temp * dt;
    }

    /// Time to reach `setpoint - hysteresis` from the current temperature
    /// at full duty (used by the firmware for `M109`/`M190` waits).
    /// Returns 0 when already at or above target.
    pub fn time_to_reach(&self, params: &ThermalParams, setpoint: f64) -> f64 {
        let target = setpoint - params.hysteresis;
        if self.temperature >= target {
            return 0.0;
        }
        // Solve the linear ODE at duty 1: T(t) = T_inf + (T0 - T_inf) e^{-t/tau},
        // with T_inf = ambient + heat_rate * tau.
        let t_inf = params.ambient + params.heat_rate * params.tau;
        if t_inf <= target {
            // Cannot reach: report the asymptotic 5-tau horizon.
            return 5.0 * params.tau;
        }
        let ratio = (t_inf - self.temperature) / (t_inf - target);
        params.tau * ratio.ln().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heats_to_setpoint_and_regulates() {
        let p = ThermalParams::hotend();
        let mut h = HeaterState::new(&p);
        let dt = 0.05;
        let mut t = 0.0;
        while t < 120.0 {
            h.step(&p, 205.0, dt);
            t += dt;
        }
        assert!((h.temperature - 205.0).abs() < 2.0 * p.hysteresis + 1.0);
        // Regulating: duty toggles over a window.
        let mut duties = std::collections::HashSet::new();
        for _ in 0..2000 {
            h.step(&p, 205.0, dt);
            duties.insert(h.duty as i64);
        }
        assert_eq!(duties.len(), 2, "bang-bang should toggle");
    }

    #[test]
    fn cools_when_disabled() {
        let p = ThermalParams::hotend();
        let mut h = HeaterState::new(&p);
        for _ in 0..4000 {
            h.step(&p, 205.0, 0.05);
        }
        let hot = h.temperature;
        for _ in 0..4000 {
            h.step(&p, 0.0, 0.05);
        }
        assert!(h.temperature < hot);
        assert_eq!(h.duty, 0.0);
    }

    #[test]
    fn time_to_reach_estimates_match_simulation() {
        let p = ThermalParams::hotend();
        let h = HeaterState::new(&p);
        let estimate = h.time_to_reach(&p, 205.0);
        // Simulate with bang-bang (always on below target).
        let mut sim = HeaterState::new(&p);
        let dt = 0.01;
        let mut t = 0.0;
        while sim.temperature < 205.0 - p.hysteresis && t < 1000.0 {
            sim.step(&p, 205.0, dt);
            t += dt;
        }
        assert!((estimate - t).abs() < 0.5, "estimate {estimate}, sim {t}");
    }

    #[test]
    fn time_to_reach_zero_when_hot() {
        let p = ThermalParams::hotend();
        let mut h = HeaterState::new(&p);
        h.temperature = 220.0;
        assert_eq!(h.time_to_reach(&p, 205.0), 0.0);
    }

    #[test]
    fn unreachable_setpoint_capped() {
        let p = ThermalParams::hotend();
        let h = HeaterState::new(&p);
        let t_inf = p.ambient + p.heat_rate * p.tau;
        let t = h.time_to_reach(&p, t_inf + 100.0);
        assert_eq!(t, 5.0 * p.tau);
    }
}
