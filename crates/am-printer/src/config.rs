//! Machine profiles for the two evaluation printers.

use crate::attack::FirmwareAttack;
use crate::thermal::ThermalParams;
use am_motion::{Kinematics, MachineLimits, Vec3};
use serde::{Deserialize, Serialize};

/// The two printers of §VIII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrinterModel {
    /// Ultimaker 3 — Cartesian, "the most popular desktop 3D printer".
    Um3,
    /// SeeMeCNC Rostock Max V3 — "a popular Delta printer".
    Rm3,
}

impl PrinterModel {
    /// Both evaluation printers.
    pub fn both() -> [PrinterModel; 2] {
        [PrinterModel::Um3, PrinterModel::Rm3]
    }

    /// Table-style short name ("UM3" / "RM3").
    pub fn short_name(&self) -> &'static str {
        match self {
            PrinterModel::Um3 => "UM3",
            PrinterModel::Rm3 => "RM3",
        }
    }

    /// The default config for this model.
    pub fn config(&self) -> PrinterConfig {
        match self {
            PrinterModel::Um3 => PrinterConfig::ultimaker3(),
            PrinterModel::Rm3 => PrinterConfig::rostock_max_v3(),
        }
    }
}

impl std::fmt::Display for PrinterModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Full machine profile consumed by the firmware simulator and the sensor
/// models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrinterConfig {
    /// Which physical printer this profile models.
    pub model: PrinterModel,
    /// Kinematic arrangement.
    pub kinematics: Kinematics,
    /// Planner limits.
    pub limits: MachineLimits,
    /// Position after `G28`.
    pub home_position: Vec3,
    /// Homing feedrate (mm/s).
    pub homing_speed: f64,
    /// Full steps per mm on the motion joints (sets stepper tone
    /// frequencies in the audio side channel).
    pub steps_per_mm: [f64; 3],
    /// Extruder steps per mm.
    pub e_steps_per_mm: f64,
    /// Hotend thermal parameters.
    pub hotend: ThermalParams,
    /// Bed thermal parameters.
    pub bed: ThermalParams,
    /// Optional firmware attack: the printer misbehaves even on benign
    /// G-code (threat model, Fig 3).
    pub firmware_attack: Option<FirmwareAttack>,
}

impl PrinterConfig {
    /// Ultimaker 3 profile.
    pub fn ultimaker3() -> Self {
        PrinterConfig {
            model: PrinterModel::Um3,
            kinematics: Kinematics::Cartesian,
            limits: MachineLimits::ultimaker3(),
            home_position: Vec3::new(0.0, 0.0, 2.0),
            homing_speed: 50.0,
            steps_per_mm: [80.0, 80.0, 400.0],
            e_steps_per_mm: 369.0,
            hotend: ThermalParams::hotend(),
            bed: ThermalParams::bed(),
            firmware_attack: None,
        }
    }

    /// Rostock Max V3 profile.
    pub fn rostock_max_v3() -> Self {
        PrinterConfig {
            model: PrinterModel::Rm3,
            kinematics: Kinematics::rostock_delta(),
            limits: MachineLimits::rostock_max_v3(),
            // Delta machines home to the top of the towers; the effector
            // homes above the bed centre.
            home_position: Vec3::new(0.0, 0.0, 150.0),
            homing_speed: 80.0,
            steps_per_mm: [80.0, 80.0, 80.0],
            e_steps_per_mm: 92.0,
            hotend: ThermalParams::hotend(),
            bed: ThermalParams::bed(),
            firmware_attack: None,
        }
    }

    /// A generic CoreXY machine (not one of the paper's printers; useful
    /// for checking that NSYNC generalizes across kinematics). Reports as
    /// a UM3-class machine for bed-placement purposes.
    pub fn corexy_generic() -> Self {
        PrinterConfig {
            model: PrinterModel::Um3,
            kinematics: Kinematics::CoreXy,
            limits: MachineLimits {
                max_velocity: 250.0,
                acceleration: 4000.0,
                junction_deviation: 0.06,
                min_junction_speed: 1.0,
            },
            home_position: Vec3::new(0.0, 0.0, 2.0),
            homing_speed: 70.0,
            steps_per_mm: [80.0, 80.0, 400.0],
            e_steps_per_mm: 400.0,
            hotend: ThermalParams::hotend(),
            bed: ThermalParams::bed(),
            firmware_attack: None,
        }
    }

    /// Returns a copy with a firmware attack installed.
    pub fn with_firmware_attack(mut self, attack: FirmwareAttack) -> Self {
        self.firmware_attack = Some(attack);
        self
    }

    /// Where the slicer should place the part so it is reachable. The UM3
    /// bed origin is a corner; the Delta's is the centre.
    pub fn bed_center(&self) -> Vec3 {
        match self.model {
            PrinterModel::Um3 => Vec3::new(100.0, 100.0, 0.0),
            PrinterModel::Rm3 => Vec3::new(0.0, 0.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names() {
        assert_eq!(PrinterModel::Um3.to_string(), "UM3");
        assert_eq!(PrinterModel::Rm3.to_string(), "RM3");
        assert_eq!(PrinterModel::both().len(), 2);
    }

    #[test]
    fn configs_are_valid() {
        for m in PrinterModel::both() {
            let c = m.config();
            assert!(c.limits.is_valid());
            assert!(c.homing_speed > 0.0);
            assert!(c.steps_per_mm.iter().all(|&s| s > 0.0));
            assert_eq!(c.model, m);
            assert!(c.firmware_attack.is_none());
        }
    }

    #[test]
    fn delta_home_is_reachable() {
        let c = PrinterConfig::rostock_max_v3();
        assert!(c.kinematics.joint_positions(c.home_position).is_ok());
    }

    #[test]
    fn with_firmware_attack_installs() {
        let c = PrinterConfig::ultimaker3().with_firmware_attack(FirmwareAttack::SpeedScale(0.95));
        assert!(c.firmware_attack.is_some());
    }
}
