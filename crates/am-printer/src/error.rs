//! Error type for the printer simulator.

use std::error::Error;
use std::fmt;

/// Errors from G-code execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrinterError {
    /// A move targeted a position outside the machine's envelope.
    Unreachable {
        /// Offending target (x, y, z) in mm.
        target: (f64, f64, f64),
    },
    /// A command needed a feedrate but none was ever set.
    MissingFeedrate {
        /// Index of the command in the program.
        command_index: usize,
    },
    /// A configuration value was out of domain.
    InvalidConfig(String),
}

impl fmt::Display for PrinterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrinterError::Unreachable { target } => write!(
                f,
                "target ({}, {}, {}) is outside the work envelope",
                target.0, target.1, target.2
            ),
            PrinterError::MissingFeedrate { command_index } => {
                write!(
                    f,
                    "move at command {command_index} has no feedrate in effect"
                )
            }
            PrinterError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl Error for PrinterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            PrinterError::Unreachable {
                target: (1.0, 2.0, 3.0),
            },
            PrinterError::MissingFeedrate { command_index: 5 },
            PrinterError::InvalidConfig("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
