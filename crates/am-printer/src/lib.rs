//! FDM printer simulator: executes G-code into a sampleable physical
//! trajectory, with **time noise**.
//!
//! The paper's founding observation (§I, Fig 1) is that AM systems are
//! asynchronous: "when executed multiple times, the duration for the same
//! instruction can vary slightly \[and\] there can be random gaps between
//! instructions". This crate is where that behaviour lives:
//!
//! - [`config`]: machine profiles for the two evaluation printers
//!   (Ultimaker 3 — Cartesian; SeeMeCNC Rostock Max V3 — Delta),
//! - [`noise`]: the [`noise::TimeNoise`] model (per-move duration jitter,
//!   random inter-move gaps, per-run clock skew) — each mechanism maps to
//!   one of the paper's named causes (mechanical/thermal delays, task
//!   scheduling, frame drops — the last is modelled in `am-sensors`' DAQ),
//! - [`thermal`]: first-order heater dynamics with bang-bang control
//!   (heating time and duty cycle feed the TMP and PWR side channels),
//! - [`firmware`]: the G-code interpreter/executor producing a
//!   [`trajectory::PrintTrajectory`],
//! - [`trajectory`]: dense sampling of tool position / velocity /
//!   acceleration, joint velocities, temperatures, heater duty, and fan
//!   state at any time `t`,
//! - [`attack`]: firmware-level attacks (the printer misbehaves despite
//!   benign G-code — the second half of the paper's threat model).
//!
//! # Example
//!
//! ```
//! use am_gcode::slicer::{slice_gear, SliceConfig};
//! use am_printer::{config::PrinterConfig, firmware::execute_program, noise::TimeNoise};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gcode = slice_gear(&SliceConfig::small_gear())?;
//! let printer = PrinterConfig::ultimaker3();
//! let run_a = execute_program(&gcode, &printer, &TimeNoise::default_printer(), 1)?;
//! let run_b = execute_program(&gcode, &printer, &TimeNoise::default_printer(), 2)?;
//! // Same G-code, different random seed: time noise makes durations differ.
//! assert_ne!(run_a.duration(), run_b.duration());
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod config;
pub mod error;
pub mod firmware;
pub mod noise;
pub mod thermal;
pub mod trajectory;

pub use attack::FirmwareAttack;
pub use config::{PrinterConfig, PrinterModel};
pub use error::PrinterError;
pub use firmware::execute_program;
pub use noise::TimeNoise;
pub use trajectory::{PrintTrajectory, PrinterSample};
