//! The firmware simulator: interprets G-code, plans motion, and executes
//! the plan on a noisy wall clock.
//!
//! Execution pipeline:
//!
//! 1. **Interpret** the program into ops (move chunks, heater waits, fan
//!    changes, dwells, layer markers), applying any installed
//!    [`FirmwareAttack`],
//! 2. **Plan** each chunk of consecutive moves with the look-ahead planner
//!    (`am-motion`) — this fixes the *nominal* timing,
//! 3. **Execute** on the wall clock, where time noise enters: every
//!    segment's duration is stretched by the jitter factor and the per-run
//!    clock rate, and random scheduling gaps are inserted between moves,
//! 4. **Thermal pass**: heaters are re-simulated at a fine step over the
//!    final timeline to produce temperature/duty traces for TMP and PWR.

use crate::attack::FirmwareAttack;
use crate::config::PrinterConfig;
use crate::error::PrinterError;
use crate::noise::TimeNoise;
use crate::thermal::HeaterState;
use crate::trajectory::{PrintTrajectory, TimedSegment};
use am_gcode::model::{GCommand, GcodeProgram};
use am_motion::{plan_moves, PlannerMove, Vec3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thermal simulation step (s).
const THERMAL_DT: f64 = 0.02;

/// Executes a G-code program on the given printer with the given time
/// noise; `seed` makes the run reproducible.
///
/// # Errors
///
/// - [`PrinterError::Unreachable`] if a move exits the work envelope,
/// - [`PrinterError::MissingFeedrate`] if a move arrives before any `F`
///   word.
pub fn execute_program(
    program: &GcodeProgram,
    config: &PrinterConfig,
    noise: &TimeNoise,
    seed: u64,
) -> Result<PrintTrajectory, PrinterError> {
    let ops = interpret(program, config)?;
    execute_ops(&ops, config, noise, seed)
}

#[derive(Debug, Clone)]
enum Op {
    Moves(Vec<PlannerMove>),
    /// Wait until the hotend (`true`) or bed (`false`) reaches its
    /// setpoint.
    WaitForTemp {
        hotend: bool,
    },
    SetHotend(f64),
    SetBed(f64),
    SetFan(f64),
    Dwell(f64),
    LayerMark,
}

/// The interpret-stage knobs a [`FirmwareAttack`] turns. All defaults are
/// the identity, so an uncompromised firmware is byte-identical to the
/// pre-attack code path.
struct InterpretAttack {
    speed_scale: f64,
    xy_scale: f64,
    temp_offset: f64,
    bed_offset: f64,
    /// Drop the motion of every `n`-th layer.
    layer_skip: Option<usize>,
}

impl InterpretAttack {
    fn from_config(config: &PrinterConfig) -> Self {
        let mut knobs = InterpretAttack {
            speed_scale: 1.0,
            xy_scale: 1.0,
            temp_offset: 0.0,
            bed_offset: 0.0,
            layer_skip: None,
        };
        match config.firmware_attack {
            Some(FirmwareAttack::SpeedScale(f)) => knobs.speed_scale = f,
            Some(FirmwareAttack::ScaleXy(f)) => knobs.xy_scale = f,
            Some(FirmwareAttack::TempOffset(d)) => knobs.temp_offset = d,
            Some(FirmwareAttack::BedTempOffset(d)) => knobs.bed_offset = d,
            Some(FirmwareAttack::LayerSkip(n)) => knobs.layer_skip = Some(n.max(2)),
            // Timing skew acts on the wall clock in `execute_ops`.
            Some(FirmwareAttack::TimingSkew(_)) | None => {}
        }
        knobs
    }
}

fn interpret(program: &GcodeProgram, config: &PrinterConfig) -> Result<Vec<Op>, PrinterError> {
    let mut ops: Vec<Op> = Vec::new();
    let mut pending: Vec<PlannerMove> = Vec::new();
    let mut pos = config.home_position;
    let mut feedrate: Option<f64> = None; // mm/s
    let mut e_logical = 0.0; // what G-code thinks E is
    let bed_center = config.bed_center();
    let InterpretAttack {
        speed_scale,
        xy_scale,
        temp_offset,
        bed_offset,
        layer_skip,
    } = InterpretAttack::from_config(config);
    // Current layer index (0 before the first marker) and whether its
    // motion is being dropped by a LayerSkip attack.
    let mut layer = 0usize;
    let mut skipping = false;

    let flush = |pending: &mut Vec<PlannerMove>, ops: &mut Vec<Op>| {
        if !pending.is_empty() {
            ops.push(Op::Moves(std::mem::take(pending)));
        }
    };

    for (i, cmd) in program.commands().iter().enumerate() {
        match cmd {
            GCommand::Move { x, y, z, e, f, .. } => {
                if let Some(f_mm_min) = f {
                    feedrate = Some(f_mm_min / 60.0);
                }
                let mut target =
                    Vec3::new(x.unwrap_or(pos.x), y.unwrap_or(pos.y), z.unwrap_or(pos.z));
                if xy_scale != 1.0 {
                    target.x = bed_center.x + (target.x - bed_center.x) * xy_scale;
                    target.y = bed_center.y + (target.y - bed_center.y) * xy_scale;
                }
                let e_delta = e.map(|en| en - e_logical).unwrap_or(0.0);
                if let Some(en) = e {
                    e_logical = *en;
                }
                if (target - pos).norm() < 1e-9 {
                    pos = target;
                    continue;
                }
                let base_feed =
                    feedrate.ok_or(PrinterError::MissingFeedrate { command_index: i })?;
                if skipping {
                    // LayerSkip: the firmware swallows this layer's motion
                    // but keeps tracking the logical position.
                    pos = target;
                    continue;
                }
                let extruding = e.is_some() && e_delta > 0.0;
                let feed = if extruding {
                    base_feed * speed_scale
                } else {
                    base_feed
                };
                config.kinematics.joint_positions(target).map_err(|_| {
                    PrinterError::Unreachable {
                        target: (target.x, target.y, target.z),
                    }
                })?;
                pending.push(PlannerMove {
                    target,
                    e_delta: e_delta.max(0.0),
                    feedrate: feed,
                    travel: !extruding,
                });
                pos = target;
            }
            GCommand::Home => {
                // Homing is a deterministic travel move to the home pose.
                let base_feed = config.homing_speed;
                if (config.home_position - pos).norm() > 1e-9 {
                    pending.push(PlannerMove {
                        target: config.home_position,
                        e_delta: 0.0,
                        feedrate: base_feed,
                        travel: true,
                    });
                    pos = config.home_position;
                }
                flush(&mut pending, &mut ops);
            }
            GCommand::Dwell { seconds } => {
                flush(&mut pending, &mut ops);
                ops.push(Op::Dwell(*seconds));
            }
            GCommand::SetPosition { e: Some(en), .. } => {
                // Only E resets matter for our programs (G92 E0).
                e_logical = *en;
            }
            GCommand::SetPosition { e: None, .. } => {}
            GCommand::SetHotendTemp { celsius, wait } => {
                flush(&mut pending, &mut ops);
                let target = if *celsius > 0.0 {
                    celsius + temp_offset
                } else {
                    *celsius
                };
                ops.push(Op::SetHotend(target));
                if *wait {
                    ops.push(Op::WaitForTemp { hotend: true });
                }
            }
            GCommand::SetBedTemp { celsius, wait } => {
                flush(&mut pending, &mut ops);
                let target = if *celsius > 0.0 {
                    celsius + bed_offset
                } else {
                    *celsius
                };
                ops.push(Op::SetBed(target));
                if *wait {
                    ops.push(Op::WaitForTemp { hotend: false });
                }
            }
            GCommand::FanOn { speed } => {
                flush(&mut pending, &mut ops);
                ops.push(Op::SetFan(*speed));
            }
            GCommand::FanOff => {
                flush(&mut pending, &mut ops);
                ops.push(Op::SetFan(0.0));
            }
            GCommand::LayerMarker { .. } => {
                // Layer markers do not disturb the motion queue; they are
                // bookkeeping only.
                layer += 1;
                if let Some(n) = layer_skip {
                    skipping = layer % n == 0;
                }
                ops.push(Op::LayerMark);
            }
            GCommand::Comment { .. } | GCommand::Other { .. } => {}
            _ => {}
        }
    }
    flush(&mut pending, &mut ops);
    Ok(ops)
}

fn execute_ops(
    ops: &[Op],
    config: &PrinterConfig,
    noise: &TimeNoise,
    seed: u64,
) -> Result<PrintTrajectory, PrinterError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock_rate = noise.sample_clock_rate(&mut rng);
    if let Some(FirmwareAttack::TimingSkew(f)) = config.firmware_attack {
        // A compromised step clock multiplies every executed duration on
        // top of the run's natural crystal skew; the nominal plan (and
        // the RNG stream) is untouched.
        clock_rate *= f.max(0.01);
    }

    let mut t = 0.0f64;
    let mut events: Vec<TimedSegment> = Vec::new();
    let mut layer_times: Vec<f64> = Vec::new();
    let mut fan_schedule: Vec<(f64, f64)> = Vec::new();
    let mut hotend_sets: Vec<(f64, f64)> = Vec::new();
    let mut bed_sets: Vec<(f64, f64)> = Vec::new();

    // Coarse heater state used only for wait-duration estimation; the
    // authoritative traces come from the fine re-simulation below.
    let mut hotend_est = HeaterState::new(&config.hotend);
    let mut bed_est = HeaterState::new(&config.bed);
    let mut hotend_set = 0.0;
    let mut bed_set = 0.0;
    let mut print_start: Option<f64> = None;
    // Pending layer marks attach to the start of the *next* motion chunk
    // (the marker precedes the layer's first move in the file).
    let mut pending_layer_marks = 0usize;

    let advance_estimates = |dt: f64,
                             hotend_est: &mut HeaterState,
                             bed_est: &mut HeaterState,
                             hotend_set: f64,
                             bed_set: f64| {
        let steps = (dt / 0.25).ceil().max(1.0) as usize;
        let step = dt / steps as f64;
        for _ in 0..steps {
            hotend_est.step(&config.hotend, hotend_set, step);
            bed_est.step(&config.bed, bed_set, step);
        }
    };

    let mut last_pos = config.home_position;
    for op in ops {
        match op {
            Op::Moves(moves) => {
                let segments = plan_moves(last_pos, moves, &config.limits);
                if let Some(last) = segments.last() {
                    last_pos = last.to;
                }
                let chunk_start = t;
                for seg in segments {
                    let nominal = seg.duration();
                    let factor = noise.sample_duration_factor(&mut rng);
                    let duration = nominal * factor * clock_rate;
                    events.push(TimedSegment {
                        t_start: t,
                        duration,
                        nominal_duration: nominal,
                        segment: seg,
                    });
                    t += duration;
                    t += noise.sample_gap(&mut rng);
                }
                if t > chunk_start {
                    if print_start.is_none() {
                        print_start = Some(chunk_start);
                    }
                    for _ in 0..pending_layer_marks {
                        layer_times.push(chunk_start);
                    }
                    pending_layer_marks = 0;
                    advance_estimates(
                        t - chunk_start,
                        &mut hotend_est,
                        &mut bed_est,
                        hotend_set,
                        bed_set,
                    );
                }
            }
            Op::WaitForTemp { hotend } => {
                let wait = if *hotend {
                    hotend_est.time_to_reach(&config.hotend, hotend_set)
                } else {
                    bed_est.time_to_reach(&config.bed, bed_set)
                };
                advance_estimates(wait, &mut hotend_est, &mut bed_est, hotend_set, bed_set);
                t += wait;
            }
            Op::SetHotend(temp) => {
                hotend_set = *temp;
                hotend_sets.push((t, *temp));
            }
            Op::SetBed(temp) => {
                bed_set = *temp;
                bed_sets.push((t, *temp));
            }
            Op::SetFan(duty) => fan_schedule.push((t, *duty)),
            Op::Dwell(seconds) => {
                advance_estimates(*seconds, &mut hotend_est, &mut bed_est, hotend_set, bed_set);
                t += seconds;
            }
            Op::LayerMark => pending_layer_marks += 1,
        }
    }
    for _ in 0..pending_layer_marks {
        layer_times.push(t);
    }
    let duration = t + 1.0; // a second of tail so sensors capture spin-down

    // Fine thermal re-simulation over the final timeline.
    let n = (duration / THERMAL_DT).ceil() as usize + 1;
    let mut hotend_temp = Vec::with_capacity(n);
    let mut hotend_duty = Vec::with_capacity(n);
    let mut bed_temp = Vec::with_capacity(n);
    let mut bed_duty = Vec::with_capacity(n);
    let mut hotend_state = HeaterState::new(&config.hotend);
    let mut bed_state = HeaterState::new(&config.bed);
    let mut h_idx = 0usize;
    let mut b_idx = 0usize;
    let mut h_set = 0.0;
    let mut b_set = 0.0;
    for i in 0..n {
        let now = i as f64 * THERMAL_DT;
        while h_idx < hotend_sets.len() && hotend_sets[h_idx].0 <= now {
            h_set = hotend_sets[h_idx].1;
            h_idx += 1;
        }
        while b_idx < bed_sets.len() && bed_sets[b_idx].0 <= now {
            b_set = bed_sets[b_idx].1;
            b_idx += 1;
        }
        hotend_state.step(&config.hotend, h_set, THERMAL_DT);
        bed_state.step(&config.bed, b_set, THERMAL_DT);
        hotend_temp.push(hotend_state.temperature);
        hotend_duty.push(hotend_state.duty);
        bed_temp.push(bed_state.temperature);
        bed_duty.push(bed_state.duty);
    }

    Ok(PrintTrajectory {
        events,
        duration,
        layer_times,
        print_start: print_start.unwrap_or(0.0),
        kinematics: config.kinematics,
        home_position: config.home_position,
        thermal_dt: THERMAL_DT,
        hotend_temp,
        hotend_duty,
        bed_temp,
        bed_duty,
        fan_schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_gcode::slicer::{slice_gear, SliceConfig};

    fn small_program_for(config: &PrinterConfig) -> GcodeProgram {
        let mut cfg = SliceConfig::small_gear();
        cfg.center = am_gcode::geometry::Point2::new(config.bed_center().x, config.bed_center().y);
        slice_gear(&cfg).unwrap()
    }

    #[test]
    fn executes_small_gear_on_both_printers() {
        for model in crate::config::PrinterModel::both() {
            let config = model.config();
            let prog = small_program_for(&config);
            let traj = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
            assert!(traj.duration() > 10.0, "{model}: {}", traj.duration());
            assert_eq!(traj.layer_times().len(), 6, "{model}");
            assert!(!traj.events().is_empty());
            assert!(traj.print_start() > 0.0, "heat-up should precede motion");
        }
    }

    #[test]
    fn noiseless_runs_are_identical() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let a = execute_program(&prog, &config, &TimeNoise::disabled(), 1).unwrap();
        let b = execute_program(&prog, &config, &TimeNoise::disabled(), 2).unwrap();
        assert_eq!(a.duration(), b.duration());
        assert_eq!(a.layer_times(), b.layer_times());
    }

    #[test]
    fn time_noise_shifts_durations_but_not_nominal_plan() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let noise = TimeNoise::default_printer();
        let a = execute_program(&prog, &config, &noise, 1).unwrap();
        let b = execute_program(&prog, &config, &noise, 2).unwrap();
        assert_ne!(a.duration(), b.duration());
        // The nominal plan is identical — only the wall clock differs.
        assert!((a.nominal_motion_duration() - b.nominal_motion_duration()).abs() < 1e-9);
        // Fig 1's effect: end misalignment grows to a noticeable fraction
        // of a second or more.
        assert!((a.duration() - b.duration()).abs() > 0.05);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let noise = TimeNoise::default_printer();
        let a = execute_program(&prog, &config, &noise, 7).unwrap();
        let b = execute_program(&prog, &config, &noise, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn layer_times_are_monotone_and_within_run() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let traj = execute_program(&prog, &config, &TimeNoise::default_printer(), 3).unwrap();
        let lt = traj.layer_times();
        for w in lt.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(*lt.last().unwrap() <= traj.duration());
        assert!(lt[0] >= traj.print_start());
    }

    #[test]
    fn missing_feedrate_is_an_error() {
        let prog = am_gcode::parser::parse_program("G1 X10 Y10\n").unwrap();
        let err = execute_program(
            &prog,
            &PrinterConfig::ultimaker3(),
            &TimeNoise::disabled(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, PrinterError::MissingFeedrate { .. }));
    }

    #[test]
    fn unreachable_delta_target_is_an_error() {
        let prog = am_gcode::parser::parse_program("G1 X500 Y0 F3000\n").unwrap();
        let err = execute_program(
            &prog,
            &PrinterConfig::rostock_max_v3(),
            &TimeNoise::disabled(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, PrinterError::Unreachable { .. }));
    }

    #[test]
    fn firmware_speed_attack_lengthens_print() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::SpeedScale(0.8));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        assert!(attacked.duration() > benign.duration() * 1.02);
    }

    #[test]
    fn firmware_scale_attack_shrinks_motion() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::ScaleXy(0.9));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        let len =
            |t: &PrintTrajectory| -> f64 { t.events().iter().map(|e| e.segment.length()).sum() };
        assert!(len(&attacked) < len(&benign));
    }

    #[test]
    fn fan_schedule_recorded() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let traj = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        // Fan turns on at layer 1 and off at the end.
        assert!(traj.fan_duty_at(traj.duration()) == 0.0);
        let mid_layers = traj.layer_times()[3];
        assert!(traj.fan_duty_at(mid_layers) > 0.9);
    }

    #[test]
    fn hotend_heats_before_motion() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let traj = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let at_start = traj.sample(traj.print_start());
        assert!(
            at_start.hotend_temp > 195.0,
            "hotend only at {} by motion start",
            at_start.hotend_temp
        );
    }

    #[test]
    fn firmware_timing_skew_stretches_wall_clock_only() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::TimingSkew(1.05));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        // Wall clock stretches; the nominal plan is byte-identical.
        assert!(attacked.duration() > benign.duration() * 1.01);
        assert!(
            (attacked.nominal_motion_duration() - benign.nominal_motion_duration()).abs() < 1e-12
        );
        assert_eq!(attacked.events().len(), benign.events().len());
    }

    #[test]
    fn firmware_layer_skip_drops_motion() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::LayerSkip(2));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        // Half the layers vanish from the toolpath; markers survive.
        assert!(attacked.events().len() < benign.events().len());
        assert_eq!(attacked.layer_times().len(), benign.layer_times().len());
        assert!(attacked.duration() < benign.duration());
    }

    #[test]
    fn firmware_bed_offset_attack_shifts_bed_trace() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::BedTempOffset(15.0));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        let t = benign.print_start() + 20.0;
        let benign_bed = benign.sample(t).bed_temp;
        let attacked_bed = attacked.sample(attacked.print_start() + 20.0).bed_temp;
        assert!(
            attacked_bed - benign_bed > 8.0,
            "benign bed {benign_bed:.1} C vs attacked {attacked_bed:.1} C"
        );
    }

    #[test]
    fn firmware_temp_offset_attack_shifts_hotend() {
        let config = PrinterConfig::ultimaker3();
        let prog = small_program_for(&config);
        let benign = execute_program(&prog, &config, &TimeNoise::disabled(), 0).unwrap();
        let attacked_cfg = config.with_firmware_attack(FirmwareAttack::TempOffset(-20.0));
        let attacked = execute_program(&prog, &attacked_cfg, &TimeNoise::disabled(), 0).unwrap();
        // Sample mid-print: the attacked hotend regulates ~20 C lower.
        let t = benign.print_start() + 20.0;
        let benign_temp = benign.sample(t).hotend_temp;
        let attacked_temp = attacked.sample(attacked.print_start() + 20.0).hotend_temp;
        assert!(
            benign_temp - attacked_temp > 15.0,
            "benign {benign_temp:.1} C vs attacked {attacked_temp:.1} C"
        );
    }
}
