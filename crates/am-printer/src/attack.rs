//! Firmware-level attacks (threat model, Fig 3).
//!
//! The paper's attacker can modify "the G-code instructions to be sent to
//! the printer **or the firmware of the printer**. By modifying the
//! firmware, the printer behaves maliciously despite being sent benign
//! G-code." G-code attacks live in `am_gcode::attacks`; this module
//! implements the firmware half, applied inside the simulator.

use serde::{Deserialize, Serialize};

/// A malicious firmware modification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FirmwareAttack {
    /// Scale all printing feedrates by this factor (a stealthy
    /// under-extrusion-free slowdown; cf. the Speed0.95 G-code attack).
    SpeedScale(f64),
    /// Scale all XY coordinates about the bed centre by this factor
    /// (firmware-level shrink; cf. Scale0.95).
    ScaleXy(f64),
    /// Offset the hotend setpoint by this many deg C (weakens layer
    /// bonding without touching motion).
    TempOffset(f64),
    /// Offset the bed setpoint by this many deg C (warp-inducing thermal
    /// drift; visible mainly through the power side channel, since the
    /// bed heater dominates AC draw).
    BedTempOffset(f64),
    /// Multiply the firmware's step clock by this factor: every executed
    /// segment stretches (or compresses) in wall time while the nominal
    /// motion plan — and the G-code — stays untouched. Models a
    /// compromised firmware that skews its timer reload values.
    TimingSkew(f64),
    /// Silently drop the motion of every `n`-th layer (n >= 2): the head
    /// never traces those layers, weakening the part, while layer
    /// markers and the rest of the program execute as usual.
    LayerSkip(usize),
}

impl FirmwareAttack {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            FirmwareAttack::SpeedScale(f) => format!("FwSpeed{f:.2}"),
            FirmwareAttack::ScaleXy(f) => format!("FwScale{f:.2}"),
            FirmwareAttack::TempOffset(d) => format!("FwTemp{d:+.0}"),
            FirmwareAttack::BedTempOffset(d) => format!("FwBed{d:+.0}"),
            FirmwareAttack::TimingSkew(f) => format!("FwClock{f:.2}"),
            FirmwareAttack::LayerSkip(n) => format!("FwSkip{n}"),
        }
    }
}

impl std::fmt::Display for FirmwareAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(FirmwareAttack::SpeedScale(0.95).name(), "FwSpeed0.95");
        assert_eq!(FirmwareAttack::ScaleXy(0.95).name(), "FwScale0.95");
        assert_eq!(FirmwareAttack::TempOffset(-10.0).name(), "FwTemp-10");
        assert_eq!(FirmwareAttack::BedTempOffset(15.0).name(), "FwBed+15");
        assert_eq!(FirmwareAttack::TimingSkew(1.05).name(), "FwClock1.05");
        assert_eq!(FirmwareAttack::LayerSkip(3).name(), "FwSkip3");
    }
}
