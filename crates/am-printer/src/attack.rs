//! Firmware-level attacks (threat model, Fig 3).
//!
//! The paper's attacker can modify "the G-code instructions to be sent to
//! the printer **or the firmware of the printer**. By modifying the
//! firmware, the printer behaves maliciously despite being sent benign
//! G-code." G-code attacks live in `am_gcode::attacks`; this module
//! implements the firmware half, applied inside the simulator.

use serde::{Deserialize, Serialize};

/// A malicious firmware modification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FirmwareAttack {
    /// Scale all printing feedrates by this factor (a stealthy
    /// under-extrusion-free slowdown; cf. the Speed0.95 G-code attack).
    SpeedScale(f64),
    /// Scale all XY coordinates about the bed centre by this factor
    /// (firmware-level shrink; cf. Scale0.95).
    ScaleXy(f64),
    /// Offset the hotend setpoint by this many deg C (weakens layer
    /// bonding without touching motion).
    TempOffset(f64),
}

impl FirmwareAttack {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            FirmwareAttack::SpeedScale(f) => format!("FwSpeed{f:.2}"),
            FirmwareAttack::ScaleXy(f) => format!("FwScale{f:.2}"),
            FirmwareAttack::TempOffset(d) => format!("FwTemp{d:+.0}"),
        }
    }
}

impl std::fmt::Display for FirmwareAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(FirmwareAttack::SpeedScale(0.95).name(), "FwSpeed0.95");
        assert_eq!(FirmwareAttack::ScaleXy(0.95).name(), "FwScale0.95");
        assert_eq!(FirmwareAttack::TempOffset(-10.0).name(), "FwTemp-10");
    }
}
