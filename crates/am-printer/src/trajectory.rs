//! The executed print as a dense, sampleable physical trajectory.

use am_motion::{Kinematics, Segment, Vec3};
use serde::{Deserialize, Serialize};

/// One planned segment placed on the wall clock with its (noisy) duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedSegment {
    /// Wall time at which the segment starts (s).
    pub t_start: f64,
    /// Actual (noise-stretched) duration (s).
    pub duration: f64,
    /// Nominal duration from the planner (s).
    pub nominal_duration: f64,
    /// The underlying planned segment.
    pub segment: Segment,
}

/// Instantaneous physical state of the printer, consumed by the sensor
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrinterSample {
    /// Sample time (s).
    pub t: f64,
    /// Tool position (mm).
    pub position: Vec3,
    /// Tool velocity (mm/s).
    pub velocity: Vec3,
    /// Tool acceleration (mm/s²).
    pub acceleration: Vec3,
    /// Joint (axis motor / tower carriage) velocities (mm/s).
    pub joint_velocities: [f64; 3],
    /// Extruder feed rate (mm of filament / s).
    pub extrusion_rate: f64,
    /// Hotend temperature (deg C).
    pub hotend_temp: f64,
    /// Bed temperature (deg C).
    pub bed_temp: f64,
    /// Hotend heater duty (0/1).
    pub hotend_duty: f64,
    /// Bed heater duty (0/1).
    pub bed_duty: f64,
    /// Part-cooling fan duty in `[0,1]`.
    pub fan_duty: f64,
    /// `true` while a motion segment is executing.
    pub moving: bool,
}

/// A fully executed print: motion events on the wall clock plus thermal /
/// fan timelines and layer ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrintTrajectory {
    pub(crate) events: Vec<TimedSegment>,
    pub(crate) duration: f64,
    pub(crate) layer_times: Vec<f64>,
    pub(crate) print_start: f64,
    pub(crate) kinematics: Kinematics,
    pub(crate) home_position: Vec3,
    pub(crate) thermal_dt: f64,
    pub(crate) hotend_temp: Vec<f64>,
    pub(crate) hotend_duty: Vec<f64>,
    pub(crate) bed_temp: Vec<f64>,
    pub(crate) bed_duty: Vec<f64>,
    /// Step function: `(time, duty)` sorted by time.
    pub(crate) fan_schedule: Vec<(f64, f64)>,
}

impl PrintTrajectory {
    /// Total wall-clock duration of the run (s).
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Wall time at which motion begins (after heat-up); signals are
    /// aligned at this moment, mirroring the paper's "aligned at the
    /// beginning" assumption.
    pub fn print_start(&self) -> f64 {
        self.print_start
    }

    /// Ground-truth layer-change times (s). The paper's baselines obtain
    /// these from a bed accelerometer (Gao) or Z-motor currents (Gatlin);
    /// the simulator knows them exactly.
    pub fn layer_times(&self) -> &[f64] {
        &self.layer_times
    }

    /// The motion events, sorted by start time.
    pub fn events(&self) -> &[TimedSegment] {
        &self.events
    }

    /// Sum of nominal (noise-free) motion durations — handy for comparing
    /// against the noisy wall clock in experiments.
    pub fn nominal_motion_duration(&self) -> f64 {
        self.events.iter().map(|e| e.nominal_duration).sum()
    }

    /// Samples the full printer state at time `t` (clamped into the run).
    pub fn sample(&self, t: f64) -> PrinterSample {
        let idx = match self
            .events
            .binary_search_by(|e| e.t_start.partial_cmp(&t).unwrap())
        {
            Ok(i) => i as isize,
            Err(i) => i as isize - 1,
        };
        self.sample_at_index(t, idx)
    }

    /// Sequential sampler: call with non-decreasing `t` for O(1) access.
    pub fn cursor(&self) -> TrajectoryCursor<'_> {
        TrajectoryCursor {
            traj: self,
            idx: -1,
        }
    }

    fn sample_at_index(&self, t: f64, idx: isize) -> PrinterSample {
        let (motion, moving) = if idx < 0 {
            (idle_state(self.home_position), false)
        } else {
            let ev = &self.events[idx as usize];
            let local = t - ev.t_start;
            if local < ev.duration {
                // Map noisy local time back to nominal profile time.
                let nominal_t = if ev.duration > 0.0 {
                    local / ev.duration * ev.nominal_duration
                } else {
                    0.0
                };
                // Velocities/accelerations scale inversely with the local
                // time stretch (a move taking 1% longer runs ~1% slower).
                let stretch = if ev.duration > 0.0 {
                    ev.nominal_duration / ev.duration
                } else {
                    1.0
                };
                let st = ev.segment.state_at(nominal_t);
                (
                    am_motion::MotionState {
                        position: st.position,
                        velocity: st.velocity * stretch,
                        acceleration: st.acceleration * (stretch * stretch),
                        extrusion_rate: st.extrusion_rate * stretch,
                    },
                    true,
                )
            } else {
                (idle_state(ev.segment.to), false)
            }
        };
        let joints = self
            .kinematics
            .joint_velocities(motion.position, motion.velocity)
            .unwrap_or([0.0; 3]);
        let (hotend_temp, hotend_duty) =
            sample_timeline(&self.hotend_temp, &self.hotend_duty, self.thermal_dt, t);
        let (bed_temp, bed_duty) =
            sample_timeline(&self.bed_temp, &self.bed_duty, self.thermal_dt, t);
        PrinterSample {
            t,
            position: motion.position,
            velocity: motion.velocity,
            acceleration: motion.acceleration,
            joint_velocities: joints,
            extrusion_rate: motion.extrusion_rate,
            hotend_temp,
            bed_temp,
            hotend_duty,
            bed_duty,
            fan_duty: self.fan_duty_at(t),
            moving,
        }
    }

    /// Fan duty at time `t` (step function).
    pub fn fan_duty_at(&self, t: f64) -> f64 {
        let mut duty = 0.0;
        for &(time, d) in &self.fan_schedule {
            if time <= t {
                duty = d;
            } else {
                break;
            }
        }
        duty
    }
}

fn idle_state(position: Vec3) -> am_motion::MotionState {
    am_motion::MotionState {
        position,
        velocity: Vec3::ZERO,
        acceleration: Vec3::ZERO,
        extrusion_rate: 0.0,
    }
}

fn sample_timeline(temps: &[f64], duties: &[f64], dt: f64, t: f64) -> (f64, f64) {
    if temps.is_empty() {
        return (0.0, 0.0);
    }
    let i = ((t / dt) as usize).min(temps.len() - 1);
    (temps[i], duties[i])
}

/// Sequential O(1) sampler over a trajectory (see
/// [`PrintTrajectory::cursor`]).
#[derive(Debug)]
pub struct TrajectoryCursor<'a> {
    traj: &'a PrintTrajectory,
    idx: isize,
}

impl TrajectoryCursor<'_> {
    /// Samples at `t`; `t` must be non-decreasing across calls.
    pub fn sample(&mut self, t: f64) -> PrinterSample {
        let events = &self.traj.events;
        while (self.idx + 1) < events.len() as isize && events[(self.idx + 1) as usize].t_start <= t
        {
            self.idx += 1;
        }
        self.traj.sample_at_index(t, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_motion::profile::TrapezoidProfile;

    fn tiny_trajectory() -> PrintTrajectory {
        let seg = Segment {
            from: Vec3::ZERO,
            to: Vec3::new(10.0, 0.0, 0.0),
            e_from: 0.0,
            e_to: 1.0,
            travel: false,
            profile: TrapezoidProfile::plan(10.0, 0.0, 10.0, 0.0, 1000.0),
        };
        let nominal = seg.duration();
        PrintTrajectory {
            events: vec![TimedSegment {
                t_start: 1.0,
                duration: nominal * 1.1, // 10% stretched
                nominal_duration: nominal,
                segment: seg,
            }],
            duration: 3.0,
            layer_times: vec![1.0],
            print_start: 1.0,
            kinematics: Kinematics::Cartesian,
            home_position: Vec3::new(-5.0, 0.0, 0.0),
            thermal_dt: 0.5,
            hotend_temp: vec![25.0, 100.0, 200.0, 205.0, 205.0, 205.0],
            hotend_duty: vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0],
            bed_temp: vec![25.0; 6],
            bed_duty: vec![0.0; 6],
            fan_schedule: vec![(2.0, 1.0)],
        }
    }

    #[test]
    fn before_first_event_is_idle_at_home() {
        let tr = tiny_trajectory();
        let s = tr.sample(0.5);
        assert!(!s.moving);
        assert_eq!(s.position, Vec3::new(-5.0, 0.0, 0.0));
        assert_eq!(s.velocity, Vec3::ZERO);
    }

    #[test]
    fn inside_event_is_moving_with_stretch_corrected_velocity() {
        let tr = tiny_trajectory();
        let ev = &tr.events[0];
        let mid = ev.t_start + ev.duration / 2.0;
        let s = tr.sample(mid);
        assert!(s.moving);
        // Nominal cruise is 10 mm/s; stretched 10% slower.
        assert!((s.velocity.norm() - 10.0 / 1.1).abs() < 0.5);
        assert!(s.position.x > 0.0 && s.position.x < 10.0);
        // Cartesian joints mirror the tool.
        assert!((s.joint_velocities[0] - s.velocity.x).abs() < 1e-6);
    }

    #[test]
    fn after_event_idles_at_end() {
        let tr = tiny_trajectory();
        let s = tr.sample(2.9);
        assert!(!s.moving);
        assert_eq!(s.position, Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(s.extrusion_rate, 0.0);
    }

    #[test]
    fn thermal_and_fan_sampling() {
        let tr = tiny_trajectory();
        assert_eq!(tr.sample(0.0).hotend_temp, 25.0);
        assert_eq!(tr.sample(1.6).hotend_temp, 205.0);
        assert_eq!(tr.sample(99.0).hotend_temp, 205.0); // clamped
        assert_eq!(tr.fan_duty_at(1.9), 0.0);
        assert_eq!(tr.fan_duty_at(2.0), 1.0);
        assert_eq!(tr.sample(2.5).fan_duty, 1.0);
    }

    #[test]
    fn cursor_matches_random_access() {
        let tr = tiny_trajectory();
        let mut cur = tr.cursor();
        for i in 0..60 {
            let t = i as f64 * 0.05;
            let a = cur.sample(t);
            let b = tr.sample(t);
            assert_eq!(a.position, b.position, "t={t}");
            assert_eq!(a.moving, b.moving);
            assert_eq!(a.hotend_temp, b.hotend_temp);
        }
    }
}
