//! # NSYNC — the paper's primary contribution
//!
//! A practical framework to compare a side-channel signal against a
//! reference signal for real-time intrusion detection in Additive
//! Manufacturing systems, tolerant of **time noise** (§VII, Fig 7).
//!
//! The pipeline:
//!
//! ```text
//!  observed a ──┐
//!               ├─► dynamic synchronizer ──► h_disp ──┐
//!  reference b ─┘            (DWM / DTW)              ├─► discriminator ─► alert?
//!               └─────────► comparator  ──► v_dist ───┘
//! ```
//!
//! - the **synchronizer** (from `am-sync`) produces the horizontal
//!   displacement array `h_disp`,
//! - the [`comparator`] produces the vertical distance array `v_dist`
//!   over corresponding points/windows (Eq 14–16),
//! - the [`discriminator`] checks three sub-modules — CADHD (`c_disp`,
//!   Eq 17–18), horizontal distance (`h_dist`, Eq 19), vertical distance
//!   (`v_dist`, Eq 20) — each spike-suppressed by a trailing-min filter
//!   (Eq 21–22),
//! - thresholds come from **One-Class Classification** over benign
//!   training runs only ([`occ`], Eq 23–28).
//!
//! [`ids`] ties everything into a train-once / detect-many API;
//! [`streaming`] runs the same discriminator incrementally on live sample
//! chunks (DWM is window-by-window, so NSYNC/DWM is real-time capable),
//! with per-channel [`health`] tracking, NaN quarantine, and a supervised
//! monitor thread that survives sensor faults and detector panics
//! (DESIGN.md §7).
//!
//! # Example
//!
//! ```
//! use nsync::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy "process": reference + slightly noisy benign repetitions.
//! let wave = |phase: f64| {
//!     Signal::from_fn(20.0, 1, 1200, |t, f| {
//!         f[0] = (0.7 * t).sin() + 0.4 * (2.1 * t + phase).sin()
//!     })
//!     .unwrap()
//! };
//! let reference = wave(0.0);
//! let train: Vec<Signal> = (1..=4).map(|i| wave(i as f64 * 1e-3)).collect();
//!
//! let ids = IdsBuilder::new()
//!     .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
//!     .build()?;
//! let trained = ids.train(&train, reference.clone(), 0.3)?;
//! let verdict = trained.detect(&wave(2e-3))?;
//! assert!(!verdict.intrusion);
//! # Ok(())
//! # }
//! ```

pub mod calibrate;
pub mod comparator;
pub mod discriminator;
pub mod error;
pub mod fusion;
pub mod health;
pub mod ids;
pub mod occ;
pub mod streaming;
pub mod verdict;

pub use calibrate::{CalibrationConfig, CalibrationState, Calibrator};
pub use comparator::vertical_distances;
pub use discriminator::{Detection, DiscriminatorConfig, SubModule, Thresholds};
pub use error::NsyncError;
pub use fusion::{FusedIds, FusedSpec, FusionPolicy, VerdictAssembler};
pub use health::{ChannelState, HealthConfig, HealthReport};
pub use ids::{Analysis, IdsBuilder, IdsConfig, NsyncIds, TrainedIds};
pub use occ::learn_thresholds;
#[allow(deprecated)]
pub use streaming::Alert;
pub use streaming::{ChunkOutcome, StreamSpec, StreamingIds};
pub use verdict::{ChannelEvidence, Severity, Verdict};

/// One-stop imports for the common NSYNC workflow: build with
/// [`IdsBuilder`], train, detect, stream via [`StreamSpec`], and watch
/// the pipeline through [`Telemetry`](am_telemetry::Telemetry).
///
/// ```
/// use nsync::prelude::*;
/// ```
pub mod prelude {
    pub use crate::calibrate::{CalibrationConfig, CalibrationState, Calibrator};
    pub use crate::discriminator::{Detection, DiscriminatorConfig, SubModule, Thresholds};
    pub use crate::error::NsyncError;
    pub use crate::fusion::{FusedIds, FusedSpec, FusionPolicy, VerdictAssembler};
    pub use crate::health::{ChannelState, ChannelStatus, HealthConfig, HealthReport};
    pub use crate::ids::{Analysis, IdsBuilder, IdsConfig, NsyncIds, TrainedIds};
    pub use crate::streaming::monitor::{Backpressure, LiveStatus, MonitorConfig, MonitorHandle};
    #[allow(deprecated)]
    pub use crate::streaming::Alert;
    pub use crate::streaming::{ChunkOutcome, StreamSpec, StreamingIds};
    pub use crate::verdict::{ChannelEvidence, Severity, Verdict};
    pub use am_dsp::metrics::DistanceMetric;
    pub use am_dsp::Signal;
    pub use am_sync::{DtwSynchronizer, DwmParams, DwmSynchronizer, Synchronizer};
    pub use am_telemetry::Telemetry;
}
