//! Real-time NSYNC: incremental detection over live sample chunks.
//!
//! DWM is window-by-window, so the whole NSYNC pipeline can run online —
//! the paper's core practicality claim over DTW ("DTW requires knowing the
//! whole a and the whole b before they can be analyzed"). A [`StreamSpec`]
//! packages everything a live detector needs (reference, DWM parameters,
//! learned thresholds, [`IdsConfig`]); [`StreamSpec::open`] yields a
//! [`StreamingIds`] that consumes chunks as the DAQ produces them and
//! emits structured [`Verdict`]s — severity, confidence, and the
//! per-submodule [`ChannelEvidence`] behind them — as windows complete,
//! while [`StreamSpec::spawn`] runs the detector on its own thread behind
//! crossbeam channels, which is how a deployment would wire it between
//! the DAQ thread and the operator UI.
//!
//! Two quality layers sit between the raw threshold crossings and the
//! emitted verdicts (both default-off / default-permissive, DESIGN.md
//! §15): an online [`Calibrator`](crate::calibrate::Calibrator) that
//! re-derives this printer's critical values from its own benign warmup
//! stream ([`CalibrationConfig`](crate::calibrate::CalibrationConfig) on the [`IdsConfig`]), and a
//! [`VerdictAssembler`](crate::fusion::VerdictAssembler) applying the
//! [`FusionPolicy`](crate::fusion::FusionPolicy) debounce and confidence
//! floor. The flat [`Alert`] surface survives as deprecated zero-drift
//! shims ([`StreamingIds::push_alerts`]).
//!
//! Unlike the batch path, the streaming path must survive its inputs:
//! a print takes hours and a sensor that dies forty minutes in must not
//! take the IDS down with it. Non-finite samples are quarantined (counted,
//! replaced by zeros) before they can reach the synchronizer or the
//! comparator; each channel runs the [`crate::health`] state machine and
//! quarantined channels are excluded from the vertical-distance
//! comparison; [`monitor`] supervises the detector thread with bounded
//! queues, an explicit backpressure policy, and a watchdog that restarts
//! a panicked detector resynchronized from the last good window. The
//! fault model behind all of this is DESIGN.md §7.

use crate::calibrate::{CalibrationState, Calibrator};
use crate::discriminator::{DiscriminatorConfig, SubModule, Thresholds};
use crate::error::NsyncError;
use crate::fusion::VerdictAssembler;
use crate::health::{ChannelHealth, ChannelState, HealthConfig, HealthReport};
use crate::ids::IdsConfig;
use crate::verdict::{ChannelEvidence, Severity, Verdict};
use am_dsp::metrics::DistanceMetric;
use am_dsp::{DspError, Signal};
use am_sync::{DwmParams, DwmStream};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An alert raised by the streaming discriminator (pre-verdict surface).
#[deprecated(
    since = "0.3.0",
    note = "alerts are flattened verdict evidence; consume `Verdict` from \
            `StreamingIds::push` (or `StreamingIds::push_alerts` during migration)"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Window index at which the threshold was crossed.
    pub window: usize,
    /// Which sub-module fired.
    pub module: SubModule,
    /// The offending (filtered) value.
    pub value: f64,
    /// The learned critical value it exceeded.
    pub threshold: f64,
}

/// Everything a live detector needs, in one cloneable value: the
/// reference signal, the DWM sample grid, the learned thresholds, and
/// the [`IdsConfig`] shared with the batch path. Produced directly or by
/// [`crate::ids::TrainedIds::stream_spec`], consumed by
/// [`StreamSpec::open`] (in-process detector), [`StreamSpec::resume`]
/// (mid-print restart), and [`StreamSpec::spawn`] /
/// [`StreamSpec::spawn_with`] (supervised monitor thread, which clones
/// the spec so crashed detectors can be rebuilt).
#[derive(Debug, Clone)]
pub struct StreamSpec {
    reference: Signal,
    params: DwmParams,
    thresholds: Thresholds,
    config: IdsConfig,
}

impl StreamSpec {
    /// A spec with the default [`IdsConfig`] (correlation distance, the
    /// paper's discriminator, default health policy).
    pub fn new(reference: Signal, params: DwmParams, thresholds: Thresholds) -> Self {
        StreamSpec {
            reference,
            params,
            thresholds,
            config: IdsConfig::default(),
        }
    }

    /// Replaces the configuration (typically the trained detector's, via
    /// [`crate::ids::TrainedIds::stream_spec`]).
    #[must_use]
    pub fn with_config(mut self, config: IdsConfig) -> Self {
        self.config = config;
        self
    }

    /// The reference signal.
    pub fn reference(&self) -> &Signal {
        &self.reference
    }

    /// The DWM sample grid.
    pub fn params(&self) -> DwmParams {
        self.params
    }

    /// The learned critical values.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The configuration in effect.
    pub fn config(&self) -> IdsConfig {
        self.config
    }

    /// Opens an in-process streaming detector at window 0.
    ///
    /// # Errors
    ///
    /// Propagates DWM parameter validation failures, and rejects a
    /// reference containing non-finite samples with
    /// [`DspError::NonFinite`] — thresholds learned from a clean
    /// reference are meaningless against a corrupt one.
    pub fn open(&self) -> Result<StreamingIds, NsyncError> {
        StreamingIds::from_spec(self)
    }

    /// Opens a detector that resumes mid-print at `next_window`, as the
    /// monitor's supervisor does after a detector crash: the reference is
    /// re-seated so the next observed window is compared at the position
    /// the lost detector had reached.
    ///
    /// # Errors
    ///
    /// Same as [`StreamSpec::open`].
    pub fn resume(&self, next_window: usize) -> Result<StreamingIds, NsyncError> {
        let mut ids = self.open()?;
        ids.windows_seen = next_window;
        // A resumed detector cannot know how many samples the lost one
        // had buffered; the window grid is the best available estimate.
        ids.samples_seen = next_window * ids.stream.sample_params().n_hop;
        ids.reseat_stream()?;
        Ok(ids)
    }

    /// Spawns the supervised detector thread with default supervision
    /// (see [`monitor`]).
    ///
    /// # Errors
    ///
    /// Propagates detector construction failures.
    pub fn spawn(&self) -> Result<monitor::MonitorHandle, NsyncError> {
        self.spawn_with(monitor::MonitorConfig::default())
    }

    /// Spawns the supervised detector thread with explicit supervision
    /// configuration (see [`monitor`]).
    ///
    /// # Errors
    ///
    /// Propagates detector construction failures.
    pub fn spawn_with(
        &self,
        monitor_config: monitor::MonitorConfig,
    ) -> Result<monitor::MonitorHandle, NsyncError> {
        monitor::spawn_spec(self.clone(), monitor_config)
    }
}

/// Incremental NSYNC/DWM intrusion detector with per-channel health
/// tracking (see the module docs for the degradation semantics).
/// Constructed from a [`StreamSpec`].
#[derive(Debug)]
pub struct StreamingIds {
    /// The original, full reference (the stream may run on a re-seated
    /// slice of it after a resync).
    reference: Signal,
    params: DwmParams,
    stream: DwmStream,
    metric: DistanceMetric,
    thresholds: Thresholds,
    filter_window: usize,
    // Health state.
    health_cfg: HealthConfig,
    health: Vec<ChannelHealth>,
    /// Per-channel cumulative count of non-finite samples, aligned with
    /// the stream's buffer (`prefix[n]` = count among the first `n`
    /// samples), so any window's corruption is two lookups.
    nonfinite_prefix: Vec<Vec<u32>>,
    blind_windows: usize,
    resyncs: usize,
    /// External index of the stream's internal window 0 (non-zero after
    /// a resync or a [`StreamSpec::resume`]).
    window_offset: usize,
    /// Total observed samples accepted across resyncs; a resync reseats
    /// the reference here so no buffered-but-unwindowed sample shifts
    /// the alignment.
    samples_seen: usize,
    last_h: f64,
    // Discriminator state.
    c_disp: f64,
    prev_h: f64,
    h_recent: VecDeque<f64>,
    v_recent: VecDeque<f64>,
    windows_seen: usize,
    /// Per-printer online threshold calibration (inert unless enabled).
    calibrator: Calibrator,
    /// Debounce / confidence floor / verdict latches.
    assembler: VerdictAssembler,
}

impl StreamingIds {
    fn from_spec(spec: &StreamSpec) -> Result<Self, NsyncError> {
        let reference = &spec.reference;
        for ch in 0..reference.channels() {
            if let Some(index) = reference.channel(ch).iter().position(|v| !v.is_finite()) {
                return Err(NsyncError::Dsp(DspError::NonFinite { channel: ch, index }));
            }
        }
        let channels = reference.channels();
        Ok(StreamingIds {
            stream: DwmStream::new(reference.clone(), &spec.params)?,
            reference: reference.clone(),
            params: spec.params,
            metric: spec.config.metric,
            thresholds: spec.thresholds,
            filter_window: spec.config.discriminator.min_filter_window.max(1),
            health_cfg: spec.config.health,
            health: vec![ChannelHealth::default(); channels],
            nonfinite_prefix: vec![vec![0]; channels],
            blind_windows: 0,
            resyncs: 0,
            window_offset: 0,
            samples_seen: 0,
            last_h: 0.0,
            c_disp: 0.0,
            prev_h: 0.0,
            h_recent: VecDeque::new(),
            v_recent: VecDeque::new(),
            windows_seen: 0,
            calibrator: Calibrator::new(spec.config.calibration, spec.thresholds),
            assembler: VerdictAssembler::new(spec.config.fusion),
        })
    }

    /// Creates a streaming detector against `reference` with pre-learned
    /// thresholds.
    ///
    /// # Errors
    ///
    /// Same as [`StreamSpec::open`].
    #[deprecated(
        since = "0.2.0",
        note = "use `StreamSpec::new(..).open()` (or `TrainedIds::stream_spec`) instead"
    )]
    pub fn new(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
    ) -> Result<Self, NsyncError> {
        StreamSpec::new(reference, *params, thresholds)
            .with_config(IdsConfig::default().with_discriminator(*config))
            .open()
    }

    /// Overrides the channel-health tuning.
    #[deprecated(
        since = "0.2.0",
        note = "set the health policy on the spec: `IdsConfig::with_health` + `StreamSpec::with_config`"
    )]
    #[must_use]
    pub fn with_health_config(mut self, cfg: HealthConfig) -> Self {
        self.health_cfg = cfg;
        self
    }

    /// Creates a detector that resumes mid-print at `next_window`.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    #[deprecated(since = "0.2.0", note = "use `StreamSpec::resume` instead")]
    pub fn resume_from(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
        next_window: usize,
    ) -> Result<Self, NsyncError> {
        StreamSpec::new(reference, *params, thresholds)
            .with_config(IdsConfig::default().with_discriminator(*config))
            .resume(next_window)
    }

    /// `true` once any verdict has fired.
    #[deprecated(
        since = "0.3.0",
        note = "use `max_severity().is_some()` — or inspect `last_verdict()` — \
                instead of the flat boolean"
    )]
    pub fn intrusion_detected(&self) -> bool {
        self.max_severity().is_some()
    }

    /// The most recent verdict that fired (latched across windows).
    pub fn last_verdict(&self) -> Option<&Verdict> {
        self.assembler.last_verdict()
    }

    /// The worst severity any emitted verdict reached (latched): the
    /// structured replacement for the old intrusion boolean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.assembler.max_severity()
    }

    /// Where the per-printer online calibrator stands (Disabled /
    /// Warmup / Calibrated / Refused — DESIGN.md §15.1).
    pub fn calibration_state(&self) -> &CalibrationState {
        self.calibrator.state()
    }

    /// The critical values currently enforced: the trained thresholds
    /// until the calibrator (if enabled) completes its warmup, this
    /// printer's calibrated ones afterwards.
    pub fn active_thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Number of fully processed windows (across resyncs).
    pub fn windows_seen(&self) -> usize {
        self.windows_seen
    }

    /// Snapshot of channel health and degradation counters.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            channels: self.health.iter().map(ChannelHealth::status).collect(),
            blind_windows: self.blind_windows,
            resyncs: self.resyncs,
        }
    }

    /// Re-locks the stream after an internal fault: the buffered partial
    /// window is discarded and a fresh synchronizer starts against the
    /// reference sliced at the position the detector had reached, so
    /// window numbering (and the CADHD accumulator) continue across the
    /// gap.
    ///
    /// # Errors
    ///
    /// Propagates stream construction failures.
    pub fn resync(&mut self) -> Result<(), NsyncError> {
        self.reseat_stream()?;
        self.resyncs += 1;
        am_telemetry::count!("monitor.resyncs");
        Ok(())
    }

    /// Hot-swaps the trained model behind a *live* detector: the
    /// reference, DWM grid, thresholds, and configuration are replaced
    /// by `spec`'s, while every progression counter — windows seen,
    /// samples seen, the CADHD accumulator, channel health, resync and
    /// blind-window counts, the intrusion latch — carries over, and the
    /// stream is re-seated so the next observed window is compared
    /// against the *new* reference at the position the old one had
    /// reached. This is the fleet's hot-reload path: re-training (say,
    /// after a nozzle change) must not reset a printer's verdict stream.
    ///
    /// # Errors
    ///
    /// Rejects a spec whose reference channel count differs from the
    /// live detector's (the health ledger is per-channel) with
    /// [`DspError::ShapeMismatch`], rejects a non-finite new reference
    /// exactly as [`StreamSpec::open`] does, and propagates DWM grid
    /// validation failures. On any error the detector is unchanged.
    pub fn adopt_spec(&mut self, spec: &StreamSpec) -> Result<(), NsyncError> {
        if spec.reference.channels() != self.health.len() {
            return Err(NsyncError::Dsp(DspError::ShapeMismatch(format!(
                "new spec reference has {} channels, live detector has {}",
                spec.reference.channels(),
                self.health.len()
            ))));
        }
        for ch in 0..spec.reference.channels() {
            if let Some(index) = spec
                .reference
                .channel(ch)
                .iter()
                .position(|v| !v.is_finite())
            {
                return Err(NsyncError::Dsp(DspError::NonFinite { channel: ch, index }));
            }
        }
        // Validate the new grid and learn its window geometry before
        // touching any state, so a bad spec leaves `self` untouched.
        let probe = DwmStream::new(spec.reference.clone(), &spec.params)?;
        let p = probe.sample_params();
        let start = self.samples_seen as isize + self.last_h.round() as isize;
        let min_len = (p.n_win + 2 * p.n_ext) as isize;
        let end = (spec.reference.len() as isize).max(start + min_len);
        let stream = DwmStream::new(spec.reference.slice_padded(start, end), &spec.params)?;
        // Commit: model swapped, progression preserved, stream re-seated
        // (same bookkeeping as `reseat_stream`).
        self.reference = spec.reference.clone();
        self.params = spec.params;
        self.metric = spec.config.metric;
        self.thresholds = spec.thresholds;
        self.filter_window = spec.config.discriminator.min_filter_window.max(1);
        self.health_cfg = spec.config.health;
        // A re-trained model restarts calibration from its own trained
        // thresholds; the verdict latches (max severity, last verdict)
        // carry over, but any in-flight debounce streak is reset.
        self.calibrator = Calibrator::new(spec.config.calibration, spec.thresholds);
        self.assembler.adopt_policy(spec.config.fusion);
        self.stream = stream;
        self.window_offset = self.windows_seen;
        for prefix in &mut self.nonfinite_prefix {
            prefix.clear();
            prefix.push(0);
        }
        self.last_h = 0.0;
        self.prev_h = 0.0;
        self.h_recent.clear();
        self.v_recent.clear();
        am_telemetry::count!("monitor.spec_swaps");
        Ok(())
    }

    fn reseat_stream(&mut self) -> Result<(), NsyncError> {
        let p = self.stream.sample_params();
        let start = self.samples_seen as isize + self.last_h.round() as isize;
        // Keep at least one extended search window of (zero-padded)
        // reference so the stream constructor never sees a too-short
        // signal near the end of a print.
        let min_len = (p.n_win + 2 * p.n_ext) as isize;
        let end = (self.reference.len() as isize).max(start + min_len);
        let reseated = self.reference.slice_padded(start, end);
        self.stream = DwmStream::new(reseated, &self.params)?;
        self.window_offset = self.windows_seen;
        for prefix in &mut self.nonfinite_prefix {
            prefix.clear();
            prefix.push(0);
        }
        self.last_h = 0.0;
        self.prev_h = 0.0;
        self.h_recent.clear();
        self.v_recent.clear();
        Ok(())
    }

    /// Replaces non-finite samples with 0.0, recording counts per
    /// channel, and returns the sanitized copy of the chunk.
    fn quarantine_samples(&mut self, chunk: &Signal) -> Signal {
        let mut clean = chunk.clone();
        for c in 0..clean.channels() {
            let prefix = &mut self.nonfinite_prefix[c];
            let mut running = prefix.last().copied().unwrap_or(0);
            let mut bad: u64 = 0;
            for v in clean.channel_mut(c).iter_mut() {
                if !v.is_finite() {
                    *v = 0.0;
                    running += 1;
                    bad += 1;
                }
                prefix.push(running);
            }
            self.health[c].record_nonfinite(bad);
        }
        clean
    }

    /// Feeds a chunk of observed samples; returns the verdicts fired by
    /// the windows completed within this chunk (under the configured
    /// [`FusionPolicy`](crate::fusion::FusionPolicy) — with the default
    /// policy, one verdict per window with any threshold crossing).
    /// Non-finite samples never reach the synchronizer or the
    /// comparator: they are zeroed and charged against their channel's
    /// health instead.
    ///
    /// # Errors
    ///
    /// Propagates stream shape errors and comparator failures, and
    /// returns [`NsyncError::StreamDesynced`] if a completed window
    /// cannot be read back (callers may [`StreamingIds::resync`] and
    /// continue).
    pub fn push(&mut self, chunk: &Signal) -> Result<Vec<Verdict>, NsyncError> {
        if chunk.is_empty() {
            return Ok(Vec::new());
        }
        if chunk.channels() != self.health.len() {
            // Reject before mutating any state so a malformed chunk is
            // droppable: the next well-formed chunk continues the stream.
            return Err(NsyncError::Dsp(DspError::ShapeMismatch(format!(
                "chunk has {} channels, detector expects {}",
                chunk.channels(),
                self.health.len()
            ))));
        }
        let clean = self.quarantine_samples(chunk);
        self.samples_seen += clean.len();
        let mut verdicts = Vec::new();
        let completed = self.stream.push(&clean)?;
        for (i, h) in completed {
            if let Some(v) = self.process_window(i, h)? {
                verdicts.push(v);
            }
        }
        if !verdicts.is_empty() {
            am_telemetry::count!("monitor.alerts", verdicts.len() as u64);
        }
        Ok(verdicts)
    }

    /// Feeds a chunk and returns the flat per-crossing [`Alert`] stream
    /// the pre-verdict API produced. Under the default [`FusionPolicy`](crate::fusion::FusionPolicy)
    /// (crate::fusion::FusionPolicy) this is byte-for-byte the old
    /// behaviour (zero drift): each alerting window's evidence flattens
    /// back into its alerts in sub-module order.
    ///
    /// # Errors
    ///
    /// Same as [`StreamingIds::push`].
    #[deprecated(since = "0.3.0", note = "use `push` and consume structured `Verdict`s")]
    #[allow(deprecated)]
    pub fn push_alerts(&mut self, chunk: &Signal) -> Result<Vec<Alert>, NsyncError> {
        Ok(flatten_verdicts(&self.push(chunk)?))
    }

    fn process_window(&mut self, i: usize, h: f64) -> Result<Option<Verdict>, NsyncError> {
        let window = self.window_offset + i;
        let p = self.stream.sample_params();
        let a_win = self
            .stream
            .window(i)
            .ok_or(NsyncError::StreamDesynced { window })?;
        self.last_h = h;
        // The thresholds governing *this* window: trained ones during a
        // calibration warmup, this printer's own afterwards.
        let th = self.thresholds;
        let mut evidence: Vec<ChannelEvidence> = Vec::new();

        // c_disp (Eq 17) incrementally.
        self.c_disp += (h - self.prev_h).abs();
        self.prev_h = h;
        if self.c_disp > th.c_c {
            evidence.push(ChannelEvidence {
                channel: String::new(),
                module: SubModule::CDisp,
                value: self.c_disp,
                threshold: th.c_c,
                window,
            });
        }
        // Trailing-min filtered h_dist.
        push_window(&mut self.h_recent, h.abs(), self.filter_window);
        let h_f = min_of(&self.h_recent);
        if h_f > th.h_c {
            evidence.push(ChannelEvidence {
                channel: String::new(),
                module: SubModule::HDist,
                value: h_f,
                threshold: th.h_c,
                window,
            });
        }

        // Score channel health for this window, then compare only the
        // channels still trusted.
        let start = i * p.n_hop;
        let window_len = p.n_win.max(1) as f64;
        let mut active: Vec<usize> = Vec::with_capacity(self.health.len());
        for c in 0..self.health.len() {
            let prefix = &self.nonfinite_prefix[c];
            let hi = (start + p.n_win).min(prefix.len().saturating_sub(1));
            let lo = start.min(hi);
            let frac = (prefix[hi] - prefix[lo]) as f64 / window_len;
            let data = a_win.channel(c);
            let flat = data.iter().all(|&v| v == data[0]);
            let state = self.health[c].observe_window(window, frac, flat, &self.health_cfg);
            if state != ChannelState::Quarantined {
                active.push(c);
            }
        }

        // v_dist for this window over the trusted channels.
        let mut v_f_observed = None;
        if active.is_empty() {
            // Every channel quarantined: the comparator is blind here.
            // h/c sub-modules above still ran on the synchronizer track.
            self.blind_windows += 1;
        } else {
            let b_start = (i * p.n_hop) as isize + h.round() as isize;
            let b_win = self
                .stream
                .reference()
                .slice_padded(b_start, b_start + p.n_win as isize);
            let v = if active.len() == self.health.len() {
                self.metric.distance_multichannel(&a_win, &b_win)?
            } else {
                self.metric.distance_multichannel(
                    &a_win.select_channels(&active)?,
                    &b_win.select_channels(&active)?,
                )?
            };
            push_window(&mut self.v_recent, v, self.filter_window);
            let v_f = min_of(&self.v_recent);
            v_f_observed = Some(v_f);
            if v_f > th.v_c {
                evidence.push(ChannelEvidence {
                    channel: String::new(),
                    module: SubModule::VDist,
                    value: v_f,
                    threshold: th.v_c,
                    window,
                });
            }
        }
        // Online calibration: samples accumulate through the warmup
        // (detection above keeps using the trained thresholds); when the
        // warmup completes, this printer's own critical values take over
        // from the next window on.
        if let Some(calibrated) = self.calibrator.observe(h_f, v_f_observed) {
            self.thresholds = calibrated;
        }
        self.windows_seen = window + 1;
        Ok(self.assembler.observe(window, evidence))
    }
}

/// Flattens verdict evidence back into the deprecated flat alert stream
/// (migration helper shared by the fleet's deprecated surfaces).
#[deprecated(
    since = "0.3.0",
    note = "migration helper for the pre-verdict `Alert` surface"
)]
#[allow(deprecated)]
pub fn flatten_verdicts(verdicts: &[Verdict]) -> Vec<Alert> {
    verdicts
        .iter()
        .flat_map(|v| v.evidence.iter())
        .map(|e| Alert {
            window: e.window,
            module: e.module,
            value: e.value,
            threshold: e.threshold,
        })
        .collect()
}

/// What one supervised push did to the detector — the per-chunk recovery
/// policy shared by the [`monitor`] worker and any external supervisor
/// multiplexing many detectors (e.g. a fleet shard, see `am-fleet`).
#[derive(Debug)]
pub enum ChunkOutcome {
    /// The chunk was consumed; any verdicts it released are inside.
    Processed(Vec<Verdict>),
    /// The stream had lost lock ([`NsyncError::StreamDesynced`]) and was
    /// resynchronized; the offending chunk's partial buffer is gone and
    /// window numbering continues across the gap.
    Resynced,
    /// The chunk was malformed (wrong shape/rate) and rejected without
    /// touching detector state; the stream continues with the next
    /// well-formed chunk.
    Rejected(NsyncError),
}

impl StreamingIds {
    /// Feeds one chunk under the monitor's standard recovery policy:
    /// desyncs trigger an automatic [`StreamingIds::resync`], malformed
    /// chunks are reported but dropped, and only an unrecoverable
    /// failure (the resync itself failing) escapes as `Err`.
    ///
    /// This is the single supervised step behind the [`monitor`] worker
    /// loop; external supervisors that multiplex many detectors over
    /// shared threads call it directly so their per-chunk semantics stay
    /// identical to a dedicated monitor thread's.
    ///
    /// # Errors
    ///
    /// Returns the resync failure if re-locking the stream after a
    /// desync fails — the detector is unusable at that point.
    pub fn push_supervised(&mut self, chunk: &Signal) -> Result<ChunkOutcome, NsyncError> {
        match self.push(chunk) {
            Ok(verdicts) => Ok(ChunkOutcome::Processed(verdicts)),
            Err(NsyncError::StreamDesynced { .. }) => {
                self.resync()?;
                Ok(ChunkOutcome::Resynced)
            }
            Err(e) => Ok(ChunkOutcome::Rejected(e)),
        }
    }
}

fn push_window(q: &mut VecDeque<f64>, v: f64, n: usize) {
    q.push_back(v);
    while q.len() > n {
        q.pop_front();
    }
}

fn min_of(q: &VecDeque<f64>) -> f64 {
    q.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Thread-backed monitor: the detector runs on its own thread behind
/// bounded crossbeam channels, supervised by a watchdog. Spawned from a
/// [`StreamSpec`] via [`StreamSpec::spawn`] / [`StreamSpec::spawn_with`].
///
/// ```text
///  DAQ ──chunks (bounded, backpressure)──► detector ──alerts (bounded)──► UI
///                                             ▲
///                         watchdog: restart on panic, resync, report stalls
/// ```
///
/// Failure semantics (DESIGN.md §7.4):
///
/// - **Backpressure**: the chunk queue is bounded.
///   [`Backpressure::Block`](monitor::Backpressure::Block) makes
///   [`MonitorHandle::send`](monitor::MonitorHandle::send) wait (a DAQ
///   thread that can buffer);
///   [`Backpressure::DropNewest`](monitor::Backpressure::DropNewest)
///   sheds the incoming chunk and counts it (a DAQ that must never
///   block).
/// - **Malformed chunks** (wrong shape/rate) are dropped and counted;
///   the stream continues with the next well-formed chunk.
/// - **Detector panic**: the watchdog restarts the detector up to
///   [`MonitorConfig::max_restarts`](monitor::MonitorConfig::max_restarts)
///   times, resynchronized from the last good window; the restart count
///   is visible in [`LiveStatus`](monitor::LiveStatus). When the budget
///   is exhausted, [`MonitorHandle::finish`](monitor::MonitorHandle::finish)
///   returns [`NsyncError::MonitorPanicked`] with the last good window.
/// - **Stall**: if the detector stops making progress while chunks are
///   queued for longer than
///   [`MonitorConfig::stall_timeout`](monitor::MonitorConfig::stall_timeout),
///   the watchdog raises
///   [`LiveStatus::stalled`](monitor::LiveStatus::stalled) (threads
///   cannot be safely preempted in Rust, so a hard-stuck detector is
///   reported, not killed; the flag clears if progress resumes).
/// - **Alert overflow**: alerts beyond the bounded queue's capacity are
///   dropped and counted — the intrusion verdict itself is latched in
///   [`LiveStatus`](monitor::LiveStatus) and never lost.
///
/// When [`am_telemetry`] is enabled the monitor also feeds the registry:
/// the `monitor.queue_depth` histogram (chunks waiting at each send), the
/// `monitor.chunk_push` histogram (send latency, which under
/// [`Backpressure::Block`](monitor::Backpressure::Block) is the
/// backpressure wait), the
/// `monitor.heartbeat_age` histogram (watchdog-observed staleness), and
/// the `monitor.restarts` / `monitor.resyncs` / `monitor.quarantines` /
/// `monitor.alerts` counters.
pub mod monitor {
    use super::*;
    use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
    use parking_lot::Mutex;
    use std::sync::{Arc, OnceLock};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// What `send` does when the chunk queue is full.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub enum Backpressure {
        /// Block the caller until the detector catches up.
        Block,
        /// Drop the incoming chunk and count it in
        /// [`LiveStatus::dropped_chunks`].
        DropNewest,
    }

    /// Supervision and queueing configuration.
    ///
    /// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
    /// methods so new supervision knobs can be added without breaking
    /// callers.
    #[derive(Debug, Clone)]
    #[non_exhaustive]
    pub struct MonitorConfig {
        /// Chunk queue capacity (chunks, not samples).
        pub chunk_capacity: usize,
        /// Alert queue capacity.
        pub alert_capacity: usize,
        /// Full-queue policy for [`MonitorHandle::send`].
        pub backpressure: Backpressure,
        /// Detector restarts the watchdog may perform after panics.
        pub max_restarts: usize,
        /// No progress while chunks are queued for this long raises
        /// [`LiveStatus::stalled`].
        pub stall_timeout: Duration,
        /// Watchdog poll cadence.
        pub poll_interval: Duration,
        /// Chaos hook (fault-injection drills only): see
        /// [`MonitorConfig::with_chaos_panic_chunk`].
        chaos_panic_chunk: Option<usize>,
    }

    impl Default for MonitorConfig {
        fn default() -> Self {
            MonitorConfig {
                chunk_capacity: 64,
                alert_capacity: 1024,
                backpressure: Backpressure::Block,
                max_restarts: 2,
                stall_timeout: Duration::from_secs(5),
                poll_interval: Duration::from_millis(10),
                chaos_panic_chunk: None,
            }
        }
    }

    impl MonitorConfig {
        /// Overrides the chunk queue capacity (clamped to ≥ 1 at spawn).
        #[must_use]
        pub fn with_chunk_capacity(mut self, chunks: usize) -> Self {
            self.chunk_capacity = chunks;
            self
        }

        /// Overrides the alert queue capacity (clamped to ≥ 1 at spawn).
        #[must_use]
        pub fn with_alert_capacity(mut self, alerts: usize) -> Self {
            self.alert_capacity = alerts;
            self
        }

        /// Overrides the full-queue policy.
        #[must_use]
        pub fn with_backpressure(mut self, policy: Backpressure) -> Self {
            self.backpressure = policy;
            self
        }

        /// Overrides the watchdog's restart budget.
        #[must_use]
        pub fn with_max_restarts(mut self, restarts: usize) -> Self {
            self.max_restarts = restarts;
            self
        }

        /// Overrides the stall threshold.
        #[must_use]
        pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
            self.stall_timeout = timeout;
            self
        }

        /// Overrides the watchdog poll cadence.
        #[must_use]
        pub fn with_poll_interval(mut self, interval: Duration) -> Self {
            self.poll_interval = interval;
            self
        }

        /// Chaos hook: the detector deliberately panics while processing
        /// this (0-based) chunk index, once — used to exercise the
        /// watchdog restart path in tests and fault-injection drills.
        /// Not part of the supported production surface.
        #[doc(hidden)]
        #[must_use]
        pub fn with_chaos_panic_chunk(mut self, chunk: Option<usize>) -> Self {
            self.chaos_panic_chunk = chunk;
            self
        }
    }

    /// Shared live status of a running monitor.
    #[derive(Debug, Default, Clone)]
    pub struct LiveStatus {
        /// Windows processed so far.
        pub windows_seen: usize,
        /// Whether an intrusion has been declared (latched). Kept for
        /// operators that only need the boolean; equals
        /// `max_severity.is_some()`.
        pub intrusion: bool,
        /// Worst severity any verdict reached (latched).
        pub max_severity: Option<Severity>,
        /// Channel health and degradation counters.
        pub health: HealthReport,
        /// Last window fully processed without error.
        pub last_good_window: Option<usize>,
        /// Detector restarts performed by the watchdog.
        pub restarts: usize,
        /// Chunks shed by the [`Backpressure::DropNewest`] policy.
        pub dropped_chunks: usize,
        /// Malformed chunks rejected by the detector.
        pub skipped_chunks: usize,
        /// Alerts shed because the alert queue was full.
        pub dropped_alerts: usize,
        /// The watchdog currently considers the detector stalled.
        pub stalled: bool,
    }

    /// Status plus the watchdog heartbeat (internal).
    struct Shared {
        status: LiveStatus,
        heartbeat: Instant,
    }

    enum WorkerExit {
        /// Input closed and drained: normal shutdown.
        InputClosed,
        /// The alert receiver disconnected: nobody is listening, stop.
        AlertsGone,
        /// An unrecoverable pipeline error.
        Failed(NsyncError),
    }

    /// Handle to a running monitor.
    pub struct MonitorHandle {
        chunk_tx: Sender<Signal>,
        /// Verdicts stream out here as they fire.
        pub verdicts: Receiver<Verdict>,
        shared: Arc<Mutex<Shared>>,
        backpressure: Backpressure,
        join: Option<JoinHandle<Result<(), NsyncError>>>,
    }

    impl MonitorHandle {
        /// Feeds one chunk, honouring the configured backpressure
        /// policy. Returns `false` if the monitor has stopped.
        pub fn send(&self, chunk: Signal) -> bool {
            let t0 = if am_telemetry::enabled() {
                static QUEUE_DEPTH: OnceLock<am_telemetry::Histogram> = OnceLock::new();
                QUEUE_DEPTH
                    .get_or_init(|| am_telemetry::histogram("monitor.queue_depth"))
                    .record_nanos(self.chunk_tx.len() as u64);
                Some(Instant::now())
            } else {
                None
            };
            let accepted = match self.backpressure {
                Backpressure::Block => self.chunk_tx.send(chunk).is_ok(),
                Backpressure::DropNewest => match self.chunk_tx.try_send(chunk) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        self.shared.lock().status.dropped_chunks += 1;
                        true
                    }
                    Err(TrySendError::Disconnected(_)) => false,
                },
            };
            if let Some(t0) = t0 {
                static CHUNK_PUSH: OnceLock<am_telemetry::Histogram> = OnceLock::new();
                CHUNK_PUSH
                    .get_or_init(|| am_telemetry::histogram("monitor.chunk_push"))
                    .record(t0.elapsed());
            }
            accepted
        }

        /// Snapshot of the live status.
        pub fn status(&self) -> LiveStatus {
            self.shared.lock().status.clone()
        }

        /// Snapshot of the channel-health report.
        pub fn health(&self) -> HealthReport {
            self.shared.lock().status.health.clone()
        }

        /// Closes the input, waits for the detector thread to drain every
        /// queued chunk, and returns any verdicts not yet consumed from
        /// [`MonitorHandle::verdicts`].
        ///
        /// # Errors
        ///
        /// Returns [`NsyncError::MonitorPanicked`] if the detector
        /// crashed beyond its restart budget, or the pipeline error that
        /// stopped it.
        pub fn finish(mut self) -> Result<Vec<Verdict>, NsyncError> {
            drop(self.chunk_tx);
            let result = match self.join.take() {
                Some(h) => match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(NsyncError::MonitorPanicked {
                        last_window: self.shared.lock().status.last_good_window.unwrap_or(0),
                    }),
                },
                None => Ok(()),
            };
            result?;
            Ok(self.verdicts.try_iter().collect())
        }
    }

    fn run_detector(
        mut ids: StreamingIds,
        chunk_rx: &Receiver<Signal>,
        verdict_tx: &Sender<Verdict>,
        shared: &Arc<Mutex<Shared>>,
        chaos_panic_chunk: Option<usize>,
    ) -> WorkerExit {
        let mut chunk_index: usize = 0;
        loop {
            let chunk = match chunk_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(c) => c,
                Err(RecvTimeoutError::Timeout) => {
                    shared.lock().heartbeat = Instant::now();
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return WorkerExit::InputClosed,
            };
            if chaos_panic_chunk == Some(chunk_index) {
                panic!("monitor chaos hook: deliberate panic on chunk {chunk_index}");
            }
            chunk_index += 1;
            match ids.push_supervised(&chunk) {
                Ok(ChunkOutcome::Processed(verdicts)) => {
                    {
                        let mut s = shared.lock();
                        s.heartbeat = Instant::now();
                        s.status.windows_seen = ids.windows_seen();
                        s.status.max_severity = s.status.max_severity.max(ids.max_severity());
                        s.status.intrusion = s.status.max_severity.is_some();
                        s.status.health = ids.health_report();
                        s.status.stalled = false;
                        if ids.windows_seen() > 0 {
                            s.status.last_good_window = Some(ids.windows_seen() - 1);
                        }
                    }
                    for v in verdicts {
                        match verdict_tx.try_send(v) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                shared.lock().status.dropped_alerts += 1;
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                return WorkerExit::AlertsGone;
                            }
                        }
                    }
                }
                Ok(ChunkOutcome::Resynced) => {
                    // Lost the window sequence: the supervised step
                    // dropped the partial buffer and re-locked; the
                    // stream continues numbering where it left off.
                    let mut s = shared.lock();
                    s.heartbeat = Instant::now();
                    s.status.health = ids.health_report();
                }
                Ok(ChunkOutcome::Rejected(_)) => {
                    // Malformed chunk (shape/rate mismatch): reject it,
                    // keep the stream.
                    let mut s = shared.lock();
                    s.heartbeat = Instant::now();
                    s.status.skipped_chunks += 1;
                }
                Err(e) => return WorkerExit::Failed(e),
            }
        }
    }

    /// Spawns the supervised detector for a spec (the implementation
    /// behind [`StreamSpec::spawn_with`]).
    pub(super) fn spawn_spec(
        spec: StreamSpec,
        monitor_config: MonitorConfig,
    ) -> Result<MonitorHandle, NsyncError> {
        let ids = spec.open()?;
        let (chunk_tx, chunk_rx): (Sender<Signal>, Receiver<Signal>) =
            bounded(monitor_config.chunk_capacity.max(1));
        let (verdict_tx, verdict_rx) = bounded(monitor_config.alert_capacity.max(1));
        let shared = Arc::new(Mutex::new(Shared {
            status: LiveStatus::default(),
            heartbeat: Instant::now(),
        }));

        let supervisor_shared = Arc::clone(&shared);
        let backpressure = monitor_config.backpressure;
        let join = std::thread::spawn(move || -> Result<(), NsyncError> {
            let cfg = monitor_config;
            let mut next_ids = Some(ids);
            let mut restarts = 0usize;
            loop {
                let generation_ids = match next_ids.take() {
                    Some(i) => i,
                    None => {
                        // Rebuild after a crash, resynchronized from the
                        // last window the dead detector completed.
                        let next_window = supervisor_shared
                            .lock()
                            .status
                            .last_good_window
                            .map_or(0, |w| w + 1);
                        spec.resume(next_window)?
                    }
                };
                // The chaos hook fires only in the first generation, so a
                // drill proves the restart instead of looping forever.
                let chaos = if restarts == 0 {
                    cfg.chaos_panic_chunk
                } else {
                    None
                };
                let worker_rx = chunk_rx.clone();
                let worker_tx = verdict_tx.clone();
                let worker_shared = Arc::clone(&supervisor_shared);
                let worker = std::thread::spawn(move || {
                    run_detector(
                        generation_ids,
                        &worker_rx,
                        &worker_tx,
                        &worker_shared,
                        chaos,
                    )
                });
                // Watchdog: poll for completion and stalls.
                while !worker.is_finished() {
                    std::thread::sleep(cfg.poll_interval);
                    let mut s = supervisor_shared.lock();
                    let age = s.heartbeat.elapsed();
                    if am_telemetry::enabled() {
                        static HEARTBEAT_AGE: OnceLock<am_telemetry::Histogram> = OnceLock::new();
                        HEARTBEAT_AGE
                            .get_or_init(|| am_telemetry::histogram("monitor.heartbeat_age"))
                            .record(age);
                    }
                    if !chunk_rx.is_empty() && age > cfg.stall_timeout {
                        s.status.stalled = true;
                    }
                }
                match worker.join() {
                    Ok(WorkerExit::InputClosed) | Ok(WorkerExit::AlertsGone) => return Ok(()),
                    Ok(WorkerExit::Failed(e)) => return Err(e),
                    Err(_) => {
                        if restarts >= cfg.max_restarts {
                            let last_window = supervisor_shared
                                .lock()
                                .status
                                .last_good_window
                                .unwrap_or(0);
                            return Err(NsyncError::MonitorPanicked { last_window });
                        }
                        restarts += 1;
                        am_telemetry::count!("monitor.restarts");
                        supervisor_shared.lock().status.restarts = restarts;
                    }
                }
            }
        });
        Ok(MonitorHandle {
            chunk_tx,
            verdicts: verdict_rx,
            shared,
            backpressure,
            join: Some(join),
        })
    }

    /// Spawns the supervised detector with explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates detector construction failures.
    #[deprecated(since = "0.2.0", note = "use `StreamSpec::spawn_with` instead")]
    pub fn spawn_with(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
        monitor_config: MonitorConfig,
    ) -> Result<MonitorHandle, NsyncError> {
        StreamSpec::new(reference, *params, thresholds)
            .with_config(IdsConfig::default().with_discriminator(*config))
            .spawn_with(monitor_config)
    }

    /// Spawns the detector thread with default supervision.
    ///
    /// # Errors
    ///
    /// Propagates detector construction failures.
    #[deprecated(since = "0.2.0", note = "use `StreamSpec::spawn` instead")]
    pub fn spawn(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
    ) -> Result<MonitorHandle, NsyncError> {
        StreamSpec::new(reference, *params, thresholds)
            .with_config(IdsConfig::default().with_discriminator(*config))
            .spawn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NsyncIds;
    use am_sync::DwmSynchronizer;

    fn benign(phase: f64) -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin()
        })
        .unwrap()
    }

    fn benign2ch(phase: f64) -> Signal {
        Signal::from_fn(20.0, 2, 1600, |t, f| {
            f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin();
            f[1] = (1.1 * t).sin() + 0.4 * (3.1 * t + phase).cos();
        })
        .unwrap()
    }

    fn malicious() -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = if t < 30.0 {
                (0.8 * t).sin() + 0.5 * (2.3 * t).sin()
            } else {
                (6.1 * t).sin()
            }
        })
        .unwrap()
    }

    fn params() -> DwmParams {
        DwmParams::from_window(4.0)
    }

    fn train_spec(reference: Signal, train: &[Signal]) -> StreamSpec {
        NsyncIds::builder()
            .synchronizer(DwmSynchronizer::new(params()))
            .build()
            .unwrap()
            .train(train, reference, 0.3)
            .unwrap()
            .stream_spec(params())
    }

    fn spec() -> StreamSpec {
        let train: Vec<Signal> = (1..=4).map(|i| benign(i as f64 * 2e-3)).collect();
        train_spec(benign(0.0), &train)
    }

    fn spec2ch() -> StreamSpec {
        let train: Vec<Signal> = (1..=4).map(|i| benign2ch(i as f64 * 2e-3)).collect();
        train_spec(benign2ch(0.0), &train)
    }

    fn feed(ids: &mut StreamingIds, signal: &Signal, chunk: usize) -> Vec<Verdict> {
        let mut verdicts = Vec::new();
        let mut i = 0;
        while i < signal.len() {
            let end = (i + chunk).min(signal.len());
            verdicts.extend(ids.push(&signal.slice(i..end).unwrap()).unwrap());
            i = end;
        }
        verdicts
    }

    #[test]
    fn benign_stream_stays_quiet() {
        let mut ids = spec().open().unwrap();
        let verdicts = feed(&mut ids, &benign(5e-3), 100);
        assert!(verdicts.is_empty(), "{verdicts:?}");
        assert!(ids.max_severity().is_none());
        assert!(ids.last_verdict().is_none());
        assert!(ids.windows_seen() > 10);
        assert!(ids.health_report().all_healthy());
    }

    #[test]
    fn malicious_stream_alerts_midway() {
        let mut ids = spec().open().unwrap();
        let verdicts = feed(&mut ids, &malicious(), 100);
        assert!(!verdicts.is_empty());
        assert!(ids.max_severity().is_some());
        // The attack starts at t=30 s -> window index ~ 30/2 = 15; the
        // first verdict must come at or after the onset, not before.
        let first = verdicts.iter().map(|v| v.window_span.0).min().unwrap();
        assert!(first >= 13, "first verdict window {first}");
        // Every verdict carries the evidence that justified it.
        assert!(verdicts.iter().all(|v| !v.evidence.is_empty()));
    }

    #[test]
    fn streaming_matches_batch_detection() {
        // The same malicious signal must be flagged by both paths.
        let trained = NsyncIds::builder()
            .synchronizer(DwmSynchronizer::new(params()))
            .build()
            .unwrap()
            .train(
                &(1..=4).map(|i| benign(i as f64 * 2e-3)).collect::<Vec<_>>(),
                benign(0.0),
                0.3,
            )
            .unwrap();
        let mut stream = trained.stream_spec(params()).open().unwrap();
        let stream_verdicts = feed(&mut stream, &malicious(), 64);
        let batch = trained.detect(&malicious()).unwrap();
        assert_eq!(batch.intrusion, !stream_verdicts.is_empty());
    }

    #[test]
    fn non_finite_reference_is_rejected() {
        let good = spec();
        let mut r = benign(0.0);
        r.channel_mut(0)[7] = f64::NAN;
        let e = StreamSpec::new(r, params(), good.thresholds()).open();
        assert!(matches!(
            e,
            Err(NsyncError::Dsp(DspError::NonFinite {
                channel: 0,
                index: 7
            }))
        ));
    }

    #[test]
    fn deprecated_streaming_constructors_still_work() {
        #[allow(deprecated)]
        let mut ids = StreamingIds::new(
            benign(0.0),
            &params(),
            spec().thresholds(),
            &DiscriminatorConfig::default(),
        )
        .unwrap()
        .with_health_config(HealthConfig::default());
        assert!(feed(&mut ids, &benign(5e-3), 100).is_empty());
        #[allow(deprecated)]
        let resumed = StreamingIds::resume_from(
            benign(0.0),
            &params(),
            spec().thresholds(),
            &DiscriminatorConfig::default(),
            7,
        )
        .unwrap();
        assert_eq!(resumed.windows_seen(), 7);
    }

    #[test]
    fn nan_bursts_degrade_but_never_panic() {
        let mut ids = spec2ch().open().unwrap();
        let mut obs = benign2ch(5e-3);
        // Channel 1 goes NaN from t = 20 s onward.
        for v in &mut obs.channel_mut(1)[400..] {
            *v = f64::NAN;
        }
        let mut i = 0;
        while i < obs.len() {
            let end = (i + 64).min(obs.len());
            // Must never panic or error: NaNs are quarantined.
            ids.push(&obs.slice(i..end).unwrap()).unwrap();
            i = end;
        }
        let report = ids.health_report();
        assert_eq!(report.channels[1].state, ChannelState::Quarantined);
        assert!(report.channels[1].nonfinite_samples > 1000);
        // Channel 0 stays healthy and the detector keeps running.
        assert_eq!(report.channels[0].state, ChannelState::Healthy);
        assert!(ids.windows_seen() > 10);
    }

    #[test]
    fn all_channels_nan_goes_blind_not_down() {
        let mut ids = spec().open().unwrap();
        let mut obs = benign(5e-3);
        for v in &mut obs.channel_mut(0)[200..] {
            *v = f64::NAN;
        }
        feed(&mut ids, &obs, 100);
        let report = ids.health_report();
        assert_eq!(report.channels[0].state, ChannelState::Quarantined);
        assert!(report.blind_windows > 0, "{}", report.summary());
        assert!(ids.windows_seen() > 10);
    }

    #[test]
    fn mismatched_chunk_is_rejected_without_corrupting_state() {
        let mut ids = spec2ch().open().unwrap();
        let obs = benign2ch(5e-3);
        feed(&mut ids, &obs.slice(0..400).unwrap(), 100);
        let before = ids.windows_seen();
        // A mono chunk against a 2-channel detector: typed error.
        assert!(matches!(
            ids.push(&benign(0.0).slice(0..50).unwrap()),
            Err(NsyncError::Dsp(DspError::ShapeMismatch(_)))
        ));
        // The stream picks up where it left off.
        feed(&mut ids, &obs.slice(400..1600).unwrap(), 100);
        assert!(ids.windows_seen() > before);
        assert!(ids.max_severity().is_none());
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let mut ids = spec().open().unwrap();
        let empty = Signal::from_channels(20.0, vec![vec![]]).unwrap();
        assert!(ids.push(&empty).unwrap().is_empty());
        assert_eq!(ids.windows_seen(), 0);
    }

    #[test]
    fn resync_continues_window_numbering() {
        let mut ids = spec().open().unwrap();
        let obs = benign(5e-3);
        feed(&mut ids, &obs.slice(0..800).unwrap(), 100);
        let mid = ids.windows_seen();
        assert!(mid > 3);
        ids.resync().unwrap();
        assert_eq!(ids.health_report().resyncs, 1);
        feed(&mut ids, &obs.slice(800..1600).unwrap(), 100);
        assert!(ids.windows_seen() > mid, "windows kept counting up");
        // A benign stream re-locked mid-print stays benign.
        assert!(ids.max_severity().is_none());
    }

    #[test]
    fn monitor_thread_roundtrip() {
        let handle = spec().spawn().unwrap();
        let m = malicious();
        let mut i = 0;
        while i < m.len() {
            let end = (i + 200).min(m.len());
            assert!(handle.send(m.slice(i..end).unwrap()));
            i = end;
        }
        // Close the input; finish() drains the queue and returns any
        // alerts we did not consume live.
        let leftover = handle.finish().unwrap();
        assert!(!leftover.is_empty(), "malicious stream must have alerted");
    }

    #[test]
    fn monitor_drop_newest_sheds_load() {
        let cfg = monitor::MonitorConfig::default()
            .with_chunk_capacity(1)
            .with_backpressure(monitor::Backpressure::DropNewest);
        let handle = spec().spawn_with(cfg).unwrap();
        let b = benign(5e-3);
        // One full-length chunk keeps the detector busy (38 windows of
        // TDEB) while a flood of tiny chunks hits the capacity-1 queue.
        assert!(handle.send(b.clone()));
        for i in 0..(b.len() / 8) {
            assert!(handle.send(b.slice(i * 8..(i + 1) * 8).unwrap()));
        }
        let status = handle.status();
        let dropped = status.dropped_chunks;
        handle.finish().unwrap();
        assert!(dropped > 0, "expected shed chunks, got {dropped}");
    }

    #[test]
    fn monitor_survives_detector_panic_and_still_detects() {
        let cfg = monitor::MonitorConfig::default().with_chaos_panic_chunk(Some(3));
        let handle = spec().spawn_with(cfg).unwrap();
        let m = malicious();
        let mut i = 0;
        while i < m.len() {
            let end = (i + 200).min(m.len());
            assert!(handle.send(m.slice(i..end).unwrap()));
            i = end;
        }
        let status_restarts = {
            // Give the supervisor a moment to restart before closing.
            std::thread::sleep(std::time::Duration::from_millis(100));
            handle.status().restarts
        };
        let leftover = handle.finish().unwrap();
        assert!(status_restarts >= 1, "watchdog must have restarted");
        assert!(
            !leftover.is_empty(),
            "restarted detector must still flag the attack"
        );
    }

    #[test]
    fn monitor_exhausted_restart_budget_reports_panic() {
        let cfg = monitor::MonitorConfig::default()
            .with_chaos_panic_chunk(Some(0))
            .with_max_restarts(0);
        let handle = spec().spawn_with(cfg).unwrap();
        let b = benign(0.0);
        handle.send(b.slice(0..200).unwrap());
        match handle.finish() {
            Err(NsyncError::MonitorPanicked { .. }) => {}
            other => panic!("expected MonitorPanicked, got {other:?}"),
        }
    }
}
