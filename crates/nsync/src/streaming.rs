//! Real-time NSYNC: incremental detection over live sample chunks.
//!
//! DWM is window-by-window, so the whole NSYNC pipeline can run online —
//! the paper's core practicality claim over DTW ("DTW requires knowing the
//! whole a and the whole b before they can be analyzed"). [`StreamingIds`]
//! consumes chunks as the DAQ produces them and emits [`Alert`]s the
//! moment a sub-module's threshold is crossed; [`monitor::spawn`] runs the
//! detector on its own thread behind crossbeam channels, which is how a
//! deployment would wire it between the DAQ thread and the operator UI.

use crate::discriminator::{DiscriminatorConfig, SubModule, Thresholds};
use crate::error::NsyncError;
use am_dsp::metrics::DistanceMetric;
use am_dsp::Signal;
use am_sync::{DwmParams, DwmStream};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An alert raised by the streaming discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Window index at which the threshold was crossed.
    pub window: usize,
    /// Which sub-module fired.
    pub module: SubModule,
    /// The offending (filtered) value.
    pub value: f64,
    /// The learned critical value it exceeded.
    pub threshold: f64,
}

/// Incremental NSYNC/DWM intrusion detector.
#[derive(Debug)]
pub struct StreamingIds {
    stream: DwmStream,
    metric: DistanceMetric,
    thresholds: Thresholds,
    filter_window: usize,
    // Discriminator state.
    c_disp: f64,
    prev_h: f64,
    h_recent: VecDeque<f64>,
    v_recent: VecDeque<f64>,
    windows_seen: usize,
    intrusion: bool,
}

impl StreamingIds {
    /// Creates a streaming detector against `reference` with pre-learned
    /// thresholds (from [`crate::occ`], typically via a batch
    /// [`crate::ids::NsyncIds::train`] pass).
    ///
    /// # Errors
    ///
    /// Propagates DWM parameter validation failures.
    pub fn new(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
    ) -> Result<Self, NsyncError> {
        Ok(StreamingIds {
            stream: DwmStream::new(reference, params)?,
            metric: DistanceMetric::Correlation,
            thresholds,
            filter_window: config.min_filter_window.max(1),
            c_disp: 0.0,
            prev_h: 0.0,
            h_recent: VecDeque::new(),
            v_recent: VecDeque::new(),
            windows_seen: 0,
            intrusion: false,
        })
    }

    /// `true` once any alert has fired.
    pub fn intrusion_detected(&self) -> bool {
        self.intrusion
    }

    /// Number of fully processed windows.
    pub fn windows_seen(&self) -> usize {
        self.windows_seen
    }

    /// Feeds a chunk of observed samples; returns alerts raised by the
    /// windows completed within this chunk.
    ///
    /// # Errors
    ///
    /// Propagates stream shape errors and comparator failures.
    pub fn push(&mut self, chunk: &Signal) -> Result<Vec<Alert>, NsyncError> {
        let mut alerts = Vec::new();
        let completed = self.stream.push(chunk)?;
        for (i, h) in completed {
            // c_disp (Eq 17) incrementally.
            self.c_disp += (h - self.prev_h).abs();
            self.prev_h = h;
            if self.c_disp > self.thresholds.c_c {
                alerts.push(Alert {
                    window: i,
                    module: SubModule::CDisp,
                    value: self.c_disp,
                    threshold: self.thresholds.c_c,
                });
            }
            // Trailing-min filtered h_dist.
            push_window(&mut self.h_recent, h.abs(), self.filter_window);
            let h_f = min_of(&self.h_recent);
            if h_f > self.thresholds.h_c {
                alerts.push(Alert {
                    window: i,
                    module: SubModule::HDist,
                    value: h_f,
                    threshold: self.thresholds.h_c,
                });
            }
            // v_dist for this window.
            let p = self.stream.sample_params();
            let a_win = self
                .stream
                .window(i)
                .expect("window i was just completed by the stream");
            let b_start = (i * p.n_hop) as isize + h.round() as isize;
            let b_win = self
                .stream
                .reference()
                .slice_padded(b_start, b_start + p.n_win as isize);
            let v = self.metric.distance_multichannel(&a_win, &b_win)?;
            push_window(&mut self.v_recent, v, self.filter_window);
            let v_f = min_of(&self.v_recent);
            if v_f > self.thresholds.v_c {
                alerts.push(Alert {
                    window: i,
                    module: SubModule::VDist,
                    value: v_f,
                    threshold: self.thresholds.v_c,
                });
            }
            self.windows_seen += 1;
        }
        if !alerts.is_empty() {
            self.intrusion = true;
        }
        Ok(alerts)
    }
}

fn push_window(q: &mut VecDeque<f64>, v: f64, n: usize) {
    q.push_back(v);
    while q.len() > n {
        q.pop_front();
    }
}

fn min_of(q: &VecDeque<f64>) -> f64 {
    q.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Thread-backed monitor: the detector runs on its own thread; chunks go
/// in through a crossbeam channel, alerts come out through another.
pub mod monitor {
    use super::*;
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// Shared live status of a running monitor.
    #[derive(Debug, Default)]
    pub struct LiveStatus {
        /// Windows processed so far.
        pub windows_seen: usize,
        /// Whether an intrusion has been declared.
        pub intrusion: bool,
    }

    /// Handle to a running monitor thread.
    pub struct MonitorHandle {
        /// Send observed sample chunks here; drop (or send None via
        /// [`MonitorHandle::finish`]) to stop.
        chunk_tx: Sender<Signal>,
        /// Alerts stream out here as they fire.
        pub alerts: Receiver<Alert>,
        status: Arc<Mutex<LiveStatus>>,
        join: Option<JoinHandle<Result<(), NsyncError>>>,
    }

    impl MonitorHandle {
        /// Feeds one chunk. Returns `false` if the monitor has stopped.
        pub fn send(&self, chunk: Signal) -> bool {
            self.chunk_tx.send(chunk).is_ok()
        }

        /// Snapshot of the live status.
        pub fn status(&self) -> LiveStatus {
            let s = self.status.lock();
            LiveStatus {
                windows_seen: s.windows_seen,
                intrusion: s.intrusion,
            }
        }

        /// Closes the input, waits for the detector thread to drain every
        /// queued chunk, and returns any alerts not yet consumed from
        /// [`MonitorHandle::alerts`].
        ///
        /// # Errors
        ///
        /// Propagates any pipeline error the thread hit.
        pub fn finish(mut self) -> Result<Vec<Alert>, NsyncError> {
            drop(self.chunk_tx);
            let result = match self.join.take() {
                Some(h) => h.join().unwrap_or_else(|_| {
                    Err(NsyncError::InvalidParameter(
                        "monitor thread panicked".into(),
                    ))
                }),
                None => Ok(()),
            };
            result?;
            Ok(self.alerts.try_iter().collect())
        }
    }

    /// Spawns the detector thread.
    ///
    /// # Errors
    ///
    /// Propagates detector construction failures.
    pub fn spawn(
        reference: Signal,
        params: &DwmParams,
        thresholds: Thresholds,
        config: &DiscriminatorConfig,
    ) -> Result<MonitorHandle, NsyncError> {
        let mut ids = StreamingIds::new(reference, params, thresholds, config)?;
        let (chunk_tx, chunk_rx): (Sender<Signal>, Receiver<Signal>) = unbounded();
        let (alert_tx, alert_rx) = unbounded();
        let status = Arc::new(Mutex::new(LiveStatus::default()));
        let status_thread = Arc::clone(&status);
        let join = std::thread::spawn(move || -> Result<(), NsyncError> {
            while let Ok(chunk) = chunk_rx.recv() {
                let alerts = ids.push(&chunk)?;
                {
                    let mut s = status_thread.lock();
                    s.windows_seen = ids.windows_seen();
                    s.intrusion = ids.intrusion_detected();
                }
                for a in alerts {
                    // Receiver may be gone; that's fine.
                    let _ = alert_tx.send(a);
                }
            }
            Ok(())
        });
        Ok(MonitorHandle {
            chunk_tx,
            alerts: alert_rx,
            status,
            join: Some(join),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NsyncIds;
    use am_sync::DwmSynchronizer;

    fn benign(phase: f64) -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin()
        })
        .unwrap()
    }

    fn malicious() -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = if t < 30.0 {
                (0.8 * t).sin() + 0.5 * (2.3 * t).sin()
            } else {
                (6.1 * t).sin()
            }
        })
        .unwrap()
    }

    fn params() -> DwmParams {
        DwmParams::from_window(4.0)
    }

    fn thresholds() -> Thresholds {
        let train: Vec<Signal> = (1..=4).map(|i| benign(i as f64 * 2e-3)).collect();
        let ids = NsyncIds::new(Box::new(DwmSynchronizer::new(params())));
        ids.train(&train, benign(0.0), 0.3).unwrap().thresholds()
    }

    fn feed(ids: &mut StreamingIds, signal: &Signal, chunk: usize) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut i = 0;
        while i < signal.len() {
            let end = (i + chunk).min(signal.len());
            alerts.extend(ids.push(&signal.slice(i..end).unwrap()).unwrap());
            i = end;
        }
        alerts
    }

    #[test]
    fn benign_stream_stays_quiet() {
        let mut ids =
            StreamingIds::new(benign(0.0), &params(), thresholds(), &Default::default())
                .unwrap();
        let alerts = feed(&mut ids, &benign(5e-3), 100);
        assert!(alerts.is_empty(), "{alerts:?}");
        assert!(!ids.intrusion_detected());
        assert!(ids.windows_seen() > 10);
    }

    #[test]
    fn malicious_stream_alerts_midway() {
        let mut ids =
            StreamingIds::new(benign(0.0), &params(), thresholds(), &Default::default())
                .unwrap();
        let alerts = feed(&mut ids, &malicious(), 100);
        assert!(!alerts.is_empty());
        assert!(ids.intrusion_detected());
        // The attack starts at t=30 s -> window index ~ 30/2 = 15; the
        // first alert must come at or after the onset, not before.
        let first = alerts.iter().map(|a| a.window).min().unwrap();
        assert!(first >= 13, "first alert window {first}");
    }

    #[test]
    fn streaming_matches_batch_detection() {
        // The same malicious signal must be flagged by both paths.
        let th = thresholds();
        let mut stream =
            StreamingIds::new(benign(0.0), &params(), th, &Default::default()).unwrap();
        let stream_alerts = feed(&mut stream, &malicious(), 64);
        let ids = NsyncIds::new(Box::new(DwmSynchronizer::new(params())));
        let trained = ids
            .train(&(1..=4).map(|i| benign(i as f64 * 2e-3)).collect::<Vec<_>>(), benign(0.0), 0.3)
            .unwrap();
        let batch = trained.detect(&malicious()).unwrap();
        assert_eq!(batch.intrusion, !stream_alerts.is_empty());
    }

    #[test]
    fn monitor_thread_roundtrip() {
        let handle = monitor::spawn(
            benign(0.0),
            &params(),
            thresholds(),
            &Default::default(),
        )
        .unwrap();
        let m = malicious();
        let mut i = 0;
        while i < m.len() {
            let end = (i + 200).min(m.len());
            assert!(handle.send(m.slice(i..end).unwrap()));
            i = end;
        }
        // Close the input; finish() drains the queue and returns any
        // alerts we did not consume live.
        let leftover = handle.finish().unwrap();
        assert!(!leftover.is_empty(), "malicious stream must have alerted");
    }
}
