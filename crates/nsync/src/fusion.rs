//! Cross-channel fusion discriminator (DESIGN.md §15.2).
//!
//! The paper judges each side channel alone; "Multi-Modal Attack
//! Detection for Cyber-Physical Additive Manufacturing" (PAPERS.md)
//! shows why a farm should not: a real attack perturbs the *process*,
//! so its signature appears in every channel observing that process,
//! while sensor noise and faults are channel-local. This module fuses
//! per-channel, per-submodule [`ChannelEvidence`] into one
//! [`Verdict`] stream per printer:
//!
//! - [`FusionPolicy`] — debounce length, emission confidence floor, and
//!   the corroboration bonus;
//! - [`VerdictAssembler`] — the shared debounce/severity/confidence
//!   engine (also used by the single-lane
//!   [`StreamingIds`](crate::StreamingIds));
//! - [`FusedSpec`] / [`FusedIds`] — a multi-lane detector: one
//!   [`StreamSpec`] per side channel, verdicts merged **per window
//!   index** at a watermark (a window fuses only once every lane has
//!   completed it), so arbitrary chunk interleaving across lanes cannot
//!   change the fused stream — the same per-printer-FIFO argument that
//!   makes fleet runs byte-identical to standalone runs.
//!
//! Lanes are windows over *time*: every lane shares the same DWM hop
//! seconds, so window `w` covers the same wall-clock span on every
//! channel regardless of sample rate, and fusing by window index is
//! fusing by time.
//!
//! With a single lane the fusion layer is the identity: lane verdicts
//! pass through untouched, which is what keeps a fleet-registered
//! single-channel printer byte-identical to its standalone detector.

use crate::error::NsyncError;
use crate::health::HealthReport;
use crate::streaming::{ChunkOutcome, StreamSpec, StreamingIds};
use crate::verdict::{ChannelEvidence, Severity, Verdict};
use am_dsp::Signal;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fusion/emission policy, hung off [`IdsConfig`](crate::ids::IdsConfig)
/// (per-lane emission) and [`FusedSpec`] (cross-channel emission).
///
/// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
/// builders. The default is the permissive pre-fusion behaviour: every
/// threshold-crossing window emits immediately (debounce 1, no
/// confidence floor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FusionPolicy {
    /// Consecutive alerting windows required before a verdict fires
    /// (default 1 — no debounce). A transient single-window spike below
    /// this streak never surfaces.
    pub debounce_windows: usize,
    /// Verdicts with confidence below this floor are suppressed
    /// (default 0.0 — everything emits).
    pub min_confidence: f64,
    /// Extra confidence granted when ≥ 2 distinct channels corroborate,
    /// applied as `c + boost · (1 − c)` (default 0.25).
    pub corroboration_boost: f64,
}

impl Default for FusionPolicy {
    fn default() -> Self {
        FusionPolicy {
            debounce_windows: 1,
            min_confidence: 0.0,
            corroboration_boost: 0.25,
        }
    }
}

impl FusionPolicy {
    /// The permissive default policy.
    pub fn new() -> Self {
        FusionPolicy::default()
    }

    /// Overrides the debounce streak length (clamped to ≥ 1 on use).
    #[must_use]
    pub fn with_debounce_windows(mut self, windows: usize) -> Self {
        self.debounce_windows = windows;
        self
    }

    /// Overrides the emission confidence floor.
    #[must_use]
    pub fn with_min_confidence(mut self, floor: f64) -> Self {
        self.min_confidence = floor;
        self
    }

    /// Overrides the cross-channel corroboration bonus.
    #[must_use]
    pub fn with_corroboration_boost(mut self, boost: f64) -> Self {
        self.corroboration_boost = boost;
        self
    }
}

/// The shared verdict engine: consumes one evidence set per completed
/// window, applies the debounce streak and the confidence floor, and
/// latches the running maxima.
///
/// Streak semantics: evidence from windows still inside the debounce
/// streak is buffered, and the verdict that finally fires spans the
/// whole streak (`window_span = (streak start, firing window)`); while
/// a streak persists past the debounce length, each further alerting
/// window fires its own verdict carrying that window's evidence.
#[derive(Debug, Clone)]
pub struct VerdictAssembler {
    policy: FusionPolicy,
    streak: usize,
    span_start: usize,
    buffer: Vec<ChannelEvidence>,
    last: Option<Verdict>,
    max: Option<Severity>,
}

impl VerdictAssembler {
    /// An idle assembler under `policy`.
    pub fn new(policy: FusionPolicy) -> Self {
        VerdictAssembler {
            policy,
            streak: 0,
            span_start: 0,
            buffer: Vec::new(),
            last: None,
            max: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> FusionPolicy {
        self.policy
    }

    /// Swaps the policy on a live assembler (hot-reload): the verdict
    /// latches survive, any in-flight debounce streak is reset.
    pub fn adopt_policy(&mut self, policy: FusionPolicy) {
        self.policy = policy;
        self.streak = 0;
        self.buffer.clear();
    }

    /// Feeds one completed window's evidence (empty = quiet window).
    /// Returns the verdict this window fires, if any.
    pub fn observe(&mut self, window: usize, evidence: Vec<ChannelEvidence>) -> Option<Verdict> {
        if evidence.is_empty() {
            self.streak = 0;
            self.buffer.clear();
            return None;
        }
        if self.streak == 0 {
            self.span_start = window;
        }
        self.streak += 1;
        self.buffer.extend(evidence);
        if self.streak < self.policy.debounce_windows.max(1) {
            return None;
        }
        let evidence = std::mem::take(&mut self.buffer);
        let verdict = Verdict::from_evidence(
            evidence,
            (self.span_start, window),
            self.policy.corroboration_boost,
        )?;
        if verdict.confidence < self.policy.min_confidence {
            return None;
        }
        self.max = Some(
            self.max
                .map_or(verdict.severity, |m| m.max(verdict.severity)),
        );
        self.last = Some(verdict.clone());
        Some(verdict)
    }

    /// The most recent verdict that fired.
    pub fn last_verdict(&self) -> Option<&Verdict> {
        self.last.as_ref()
    }

    /// The worst severity that ever fired (latched).
    pub fn max_severity(&self) -> Option<Severity> {
        self.max
    }
}

/// One side-channel lane of a fused detector.
#[derive(Debug, Clone)]
struct FusedLaneSpec {
    label: String,
    spec: Arc<StreamSpec>,
}

/// A trained multi-lane detector specification: one [`StreamSpec`] per
/// side channel plus the fused emission policy. The fleet registers one
/// of these per printer; [`FusedSpec::single`] wraps a lone spec so
/// single-channel printers ride the same code path.
#[derive(Debug, Clone)]
pub struct FusedSpec {
    lanes: Vec<FusedLaneSpec>,
    policy: FusionPolicy,
}

impl FusedSpec {
    /// An empty fused spec with the given cross-channel policy; add
    /// lanes with [`FusedSpec::with_lane`].
    pub fn new(policy: FusionPolicy) -> Self {
        FusedSpec {
            lanes: Vec::new(),
            policy,
        }
    }

    /// Wraps one single-channel spec (empty lane label, permissive
    /// policy): fusion is the identity for this shape.
    pub fn single(spec: Arc<StreamSpec>) -> Self {
        FusedSpec::new(FusionPolicy::default()).with_lane("", spec)
    }

    /// Appends a labelled lane (`"acc"`, `"pwr"`, …). Lane order is the
    /// routing order: lane index `i` receives the chunks pushed for
    /// lane `i`.
    #[must_use]
    pub fn with_lane(mut self, label: impl Into<String>, spec: Arc<StreamSpec>) -> Self {
        self.lanes.push(FusedLaneSpec {
            label: label.into(),
            spec,
        });
        self
    }

    /// A copy with lane `lane`'s spec replaced (hot-swap support).
    ///
    /// # Errors
    ///
    /// [`NsyncError::InvalidParameter`] when `lane` is out of range.
    pub fn with_lane_spec(
        &self,
        lane: usize,
        spec: Arc<StreamSpec>,
    ) -> Result<FusedSpec, NsyncError> {
        let mut out = self.clone();
        let slot = out.lanes.get_mut(lane).ok_or_else(|| {
            NsyncError::InvalidParameter(format!(
                "lane {lane} out of range ({} lanes)",
                self.lanes.len()
            ))
        })?;
        slot.spec = spec;
        Ok(out)
    }

    /// The cross-channel emission policy.
    pub fn policy(&self) -> FusionPolicy {
        self.policy
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `lane`'s label, if it exists.
    pub fn lane_label(&self, lane: usize) -> Option<&str> {
        self.lanes.get(lane).map(|l| l.label.as_str())
    }

    /// Lane `lane`'s trained spec, if it exists.
    pub fn lane_spec(&self, lane: usize) -> Option<&Arc<StreamSpec>> {
        self.lanes.get(lane).map(|l| &l.spec)
    }

    /// Opens a fused detector at window 0 on every lane.
    ///
    /// # Errors
    ///
    /// [`NsyncError::InvalidParameter`] with no lanes; otherwise any
    /// per-lane open failure.
    pub fn open(&self) -> Result<FusedIds, NsyncError> {
        self.resume_each(|spec| spec.open())
    }

    /// Opens a fused detector with each lane resumed at its own next
    /// window index (crash recovery: lanes may have progressed
    /// unevenly).
    ///
    /// # Errors
    ///
    /// [`NsyncError::InvalidParameter`] when `windows` does not have one
    /// entry per lane; otherwise any per-lane resume failure.
    pub fn resume(&self, windows: &[usize]) -> Result<FusedIds, NsyncError> {
        if windows.len() != self.lanes.len() {
            return Err(NsyncError::InvalidParameter(format!(
                "resume windows: got {} entries for {} lanes",
                windows.len(),
                self.lanes.len()
            )));
        }
        let mut next = windows.iter();
        self.resume_each(|spec| spec.resume(*next.next().expect("length checked")))
    }

    fn resume_each(
        &self,
        mut open: impl FnMut(&StreamSpec) -> Result<StreamingIds, NsyncError>,
    ) -> Result<FusedIds, NsyncError> {
        if self.lanes.is_empty() {
            return Err(NsyncError::InvalidParameter(
                "a fused spec needs at least one lane".into(),
            ));
        }
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                Ok(FusedLane {
                    label: l.label.clone(),
                    ids: open(&l.spec)?,
                })
            })
            .collect::<Result<Vec<_>, NsyncError>>()?;
        let fused_next = lanes
            .iter()
            .map(|l| l.ids.windows_seen())
            .min()
            .unwrap_or(0);
        Ok(FusedIds {
            assembler: VerdictAssembler::new(self.policy),
            pending: BTreeMap::new(),
            fused_next,
            lanes,
        })
    }
}

#[derive(Debug)]
struct FusedLane {
    label: String,
    ids: StreamingIds,
}

/// A live multi-lane detector: per-lane [`StreamingIds`] plus the
/// watermark fusion engine. Chunks are routed by lane index; fused
/// verdicts emit once every lane has completed the window.
///
/// **Liveness caveat**: a lane that stops receiving chunks freezes the
/// watermark — fused verdicts stall until it catches up (per-lane
/// health keeps reporting meanwhile). Feed every lane.
#[derive(Debug)]
pub struct FusedIds {
    lanes: Vec<FusedLane>,
    assembler: VerdictAssembler,
    /// Evidence from lane verdicts, keyed by global window index,
    /// awaiting the watermark.
    pending: BTreeMap<usize, Vec<ChannelEvidence>>,
    /// Next window index to fuse.
    fused_next: usize,
}

impl FusedIds {
    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `lane`'s label, if it exists.
    pub fn lane_label(&self, lane: usize) -> Option<&str> {
        self.lanes.get(lane).map(|l| l.label.as_str())
    }

    /// Completed-window count of one lane (drives crash-resume).
    pub fn lane_windows_seen(&self, lane: usize) -> Option<usize> {
        self.lanes.get(lane).map(|l| l.ids.windows_seen())
    }

    /// The fused watermark: windows every lane has completed. For a
    /// single lane this is that lane's `windows_seen`.
    pub fn windows_seen(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.ids.windows_seen())
            .min()
            .unwrap_or(0)
    }

    /// Pushes one chunk into lane `lane` and returns the fused verdicts
    /// this chunk released.
    ///
    /// # Errors
    ///
    /// [`NsyncError::InvalidParameter`] for an out-of-range lane;
    /// otherwise whatever the lane's [`StreamingIds::push`] returns.
    pub fn push(&mut self, lane: usize, chunk: &Signal) -> Result<Vec<Verdict>, NsyncError> {
        let count = self.lanes.len();
        let slot = self.lanes.get_mut(lane).ok_or_else(|| {
            NsyncError::InvalidParameter(format!("lane {lane} out of range ({count} lanes)"))
        })?;
        let verdicts = slot.ids.push(chunk)?;
        Ok(self.fuse(lane, verdicts))
    }

    /// Supervised push: lane-level faults resync the lane instead of
    /// erroring, mirroring [`StreamingIds::push_supervised`] (an
    /// out-of-range lane is a rejected chunk, not a poisoned detector).
    ///
    /// # Errors
    ///
    /// Only an unrecoverable lane resync failure escapes as `Err`.
    pub fn push_supervised(
        &mut self,
        lane: usize,
        chunk: &Signal,
    ) -> Result<ChunkOutcome, NsyncError> {
        let count = self.lanes.len();
        let Some(slot) = self.lanes.get_mut(lane) else {
            return Ok(ChunkOutcome::Rejected(NsyncError::InvalidParameter(
                format!("lane {lane} out of range ({count} lanes)"),
            )));
        };
        match slot.ids.push_supervised(chunk)? {
            ChunkOutcome::Processed(verdicts) => {
                Ok(ChunkOutcome::Processed(self.fuse(lane, verdicts)))
            }
            // A resync may jump the lane's window counter forward, which
            // can advance the watermark past evidence-less windows.
            ChunkOutcome::Resynced => {
                let drained = self.drain_watermark();
                if drained.is_empty() {
                    Ok(ChunkOutcome::Resynced)
                } else {
                    Ok(ChunkOutcome::Processed(drained))
                }
            }
            rejected => Ok(rejected),
        }
    }

    /// Single lane: identity passthrough. Multi-lane: decompose the lane
    /// verdicts into per-window evidence tagged with the lane label,
    /// then emit everything the watermark now covers.
    fn fuse(&mut self, lane: usize, verdicts: Vec<Verdict>) -> Vec<Verdict> {
        if self.lanes.len() == 1 {
            return verdicts;
        }
        let label = self.lanes[lane].label.clone();
        for verdict in verdicts {
            for mut e in verdict.evidence {
                e.channel = label.clone();
                if e.window >= self.fused_next {
                    self.pending.entry(e.window).or_default().push(e);
                }
            }
        }
        self.drain_watermark()
    }

    fn drain_watermark(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        let watermark = self.windows_seen();
        while self.fused_next < watermark {
            let evidence = self.pending.remove(&self.fused_next).unwrap_or_default();
            if let Some(v) = self.assembler.observe(self.fused_next, evidence) {
                out.push(v);
            }
            self.fused_next += 1;
        }
        out
    }

    /// The most recent fused verdict (for a single lane, the lane's
    /// own).
    pub fn last_verdict(&self) -> Option<&Verdict> {
        if self.lanes.len() == 1 {
            self.lanes[0].ids.last_verdict()
        } else {
            self.assembler.last_verdict()
        }
    }

    /// The worst severity ever emitted (latched).
    pub fn max_severity(&self) -> Option<Severity> {
        if self.lanes.len() == 1 {
            self.lanes[0].ids.max_severity()
        } else {
            self.assembler.max_severity()
        }
    }

    /// Merged health: lane channel statuses concatenated in lane order,
    /// blind windows and resyncs summed. For a single lane this is the
    /// lane's own report.
    pub fn health_report(&self) -> HealthReport {
        let mut merged = HealthReport::default();
        for lane in &self.lanes {
            merged.absorb(&lane.ids.health_report());
        }
        merged
    }

    /// One lane's own health report.
    pub fn lane_health(&self, lane: usize) -> Option<HealthReport> {
        self.lanes.get(lane).map(|l| l.ids.health_report())
    }

    /// Hot-swaps lane 0's spec (the fleet's single-spec swap path);
    /// other lanes keep running.
    ///
    /// # Errors
    ///
    /// Whatever [`StreamingIds::adopt_spec`] returns (shape mismatch,
    /// malformed reference, …).
    pub fn adopt_spec(&mut self, spec: Arc<StreamSpec>) -> Result<(), NsyncError> {
        self.lanes[0].ids.adopt_spec(&spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::SubModule;

    fn ev(channel: &str, module: SubModule, value: f64, window: usize) -> ChannelEvidence {
        ChannelEvidence {
            channel: channel.to_string(),
            module,
            value,
            threshold: 1.0,
            window,
        }
    }

    #[test]
    fn default_policy_emits_every_alerting_window() {
        let mut a = VerdictAssembler::new(FusionPolicy::default());
        assert!(a.observe(0, vec![]).is_none());
        let v = a
            .observe(1, vec![ev("", SubModule::VDist, 2.0, 1)])
            .unwrap();
        assert_eq!(v.window_span, (1, 1));
        let v = a
            .observe(2, vec![ev("", SubModule::VDist, 2.0, 2)])
            .unwrap();
        assert_eq!(v.window_span, (1, 2), "streak span keeps its start");
        assert_eq!(a.max_severity(), Some(Severity::Critical));
    }

    #[test]
    fn debounce_suppresses_short_streaks_and_spans_the_wait() {
        let policy = FusionPolicy::default().with_debounce_windows(3);
        let mut a = VerdictAssembler::new(policy);
        // A single-window transient: never fires.
        assert!(a
            .observe(0, vec![ev("", SubModule::HDist, 5.0, 0)])
            .is_none());
        assert!(a.observe(1, vec![]).is_none());
        assert!(a.last_verdict().is_none());
        // A sustained deviation fires on the third consecutive window,
        // carrying the buffered evidence of the whole streak.
        assert!(a
            .observe(2, vec![ev("", SubModule::HDist, 5.0, 2)])
            .is_none());
        assert!(a
            .observe(3, vec![ev("", SubModule::HDist, 5.0, 3)])
            .is_none());
        let v = a
            .observe(4, vec![ev("", SubModule::HDist, 5.0, 4)])
            .unwrap();
        assert_eq!(v.window_span, (2, 4));
        assert_eq!(v.evidence.len(), 3);
        // The streak keeps emitting per window once established.
        let v = a
            .observe(5, vec![ev("", SubModule::HDist, 5.0, 5)])
            .unwrap();
        assert_eq!(v.window_span, (2, 5));
        assert_eq!(v.evidence.len(), 1);
    }

    #[test]
    fn confidence_floor_suppresses_weak_crossings() {
        let policy = FusionPolicy::default().with_min_confidence(0.4);
        let mut a = VerdictAssembler::new(policy);
        // value 1.2 / threshold 1.0 → score 1/6 ≈ 0.17 < 0.4.
        assert!(a
            .observe(0, vec![ev("", SubModule::VDist, 1.2, 0)])
            .is_none());
        assert!(
            a.max_severity().is_none(),
            "suppressed verdicts do not latch"
        );
        // value 4.0 → score 0.75 ≥ 0.4.
        let v = a
            .observe(1, vec![ev("", SubModule::VDist, 4.0, 1)])
            .unwrap();
        assert!(v.confidence >= 0.4);
        assert_eq!(a.max_severity(), Some(Severity::Critical));
    }

    #[test]
    fn corroborated_evidence_escalates() {
        let mut a = VerdictAssembler::new(FusionPolicy::default());
        let v = a
            .observe(
                7,
                vec![
                    ev("acc", SubModule::HDist, 3.0, 7),
                    ev("pwr", SubModule::HDist, 3.0, 7),
                ],
            )
            .unwrap();
        assert_eq!(v.severity, Severity::Critical);
        assert_eq!(v.channels(), vec!["acc", "pwr"]);
    }
}
