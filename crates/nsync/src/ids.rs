//! The end-to-end NSYNC IDS: train on benign runs, then detect.

use crate::comparator::vertical_distances;
use crate::discriminator::{discriminate, trace_stats, Detection, DiscriminatorConfig, Thresholds};
use crate::error::NsyncError;
use crate::occ::learn_thresholds;
use am_dsp::metrics::DistanceMetric;
use am_dsp::Signal;
use am_sync::{Alignment, Synchronizer};

/// An untrained NSYNC IDS: a synchronizer + comparator + discriminator
/// configuration.
pub struct NsyncIds {
    synchronizer: Box<dyn Synchronizer + Send + Sync>,
    metric: DistanceMetric,
    config: DiscriminatorConfig,
}

/// The intermediate result of analyzing one observed signal against the
/// reference (exposed per C-INTERMEDIATE so callers can plot Fig 8-style
/// traces without re-running the pipeline).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The synchronizer's alignment (h_disp + mapping).
    pub alignment: Alignment,
    /// Vertical distances over the alignment's units.
    pub v_dist: Vec<f64>,
}

impl NsyncIds {
    /// Creates an IDS with the default correlation-distance comparator and
    /// the paper's discriminator configuration.
    pub fn new(synchronizer: Box<dyn Synchronizer + Send + Sync>) -> Self {
        NsyncIds {
            synchronizer,
            metric: DistanceMetric::Correlation,
            config: DiscriminatorConfig::default(),
        }
    }

    /// Overrides the distance metric (for ablations; the paper argues for
    /// correlation distance).
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Overrides the discriminator configuration.
    pub fn with_config(mut self, config: DiscriminatorConfig) -> Self {
        self.config = config;
        self
    }

    /// The synchronizer's display name.
    pub fn synchronizer_name(&self) -> String {
        self.synchronizer.name()
    }

    /// Runs synchronizer + comparator on one observed signal.
    ///
    /// # Errors
    ///
    /// Propagates synchronizer and comparator failures.
    pub fn analyze(&self, observed: &Signal, reference: &Signal) -> Result<Analysis, NsyncError> {
        let alignment = self.synchronizer.synchronize(observed, reference)?;
        let v_dist = vertical_distances(observed, reference, &alignment, self.metric)?;
        Ok(Analysis { alignment, v_dist })
    }

    /// Learns OCC thresholds from benign training runs against the
    /// reference (Eq 23–28) and returns a ready-to-detect IDS.
    ///
    /// # Errors
    ///
    /// Returns [`NsyncError::InvalidTraining`] when `training` is empty
    /// and propagates per-run analysis failures.
    pub fn train(
        self,
        training: &[Signal],
        reference: Signal,
        r: f64,
    ) -> Result<TrainedIds, NsyncError> {
        if training.is_empty() {
            return Err(NsyncError::InvalidTraining(
                "at least one benign training run is required".into(),
            ));
        }
        let mut stats = Vec::with_capacity(training.len());
        for run in training {
            let analysis = self.analyze(run, &reference)?;
            let (s, _, _, _) =
                trace_stats(&analysis.alignment.h_disp, &analysis.v_dist, &self.config);
            stats.push(s);
        }
        let thresholds = learn_thresholds(&stats, r)?;
        Ok(TrainedIds {
            ids: self,
            reference,
            thresholds,
        })
    }
}

impl std::fmt::Debug for NsyncIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsyncIds")
            .field("synchronizer", &self.synchronizer.name())
            .field("metric", &self.metric)
            .field("config", &self.config)
            .finish()
    }
}

/// A trained NSYNC IDS holding the reference signal and learned
/// thresholds.
pub struct TrainedIds {
    ids: NsyncIds,
    reference: Signal,
    thresholds: Thresholds,
}

impl TrainedIds {
    /// The learned critical values.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The reference signal.
    pub fn reference(&self) -> &Signal {
        &self.reference
    }

    /// The discriminator configuration in effect.
    pub fn config(&self) -> DiscriminatorConfig {
        self.ids.config
    }

    /// Analyzes and discriminates one observed signal.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn detect(&self, observed: &Signal) -> Result<Detection, NsyncError> {
        let analysis = self.ids.analyze(observed, &self.reference)?;
        Ok(discriminate(
            &analysis.alignment.h_disp,
            &analysis.v_dist,
            &self.thresholds,
            &self.ids.config,
        ))
    }

    /// Like [`TrainedIds::detect`] but also returns the intermediate
    /// analysis (for plots and sub-module studies).
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn detect_with_analysis(
        &self,
        observed: &Signal,
    ) -> Result<(Detection, Analysis), NsyncError> {
        let analysis = self.ids.analyze(observed, &self.reference)?;
        let detection = discriminate(
            &analysis.alignment.h_disp,
            &analysis.v_dist,
            &self.thresholds,
            &self.ids.config,
        );
        Ok((detection, analysis))
    }
}

impl std::fmt::Debug for TrainedIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedIds")
            .field("ids", &self.ids)
            .field("thresholds", &self.thresholds)
            .field("reference_len", &self.reference.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_sync::{DwmParams, DwmSynchronizer};

    /// Benign process generator: same underlying waveform with tiny phase
    /// perturbations standing in for benign run-to-run variation.
    fn benign(phase: f64) -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin() + 0.2 * (5.1 * t).cos()
        })
        .unwrap()
    }

    /// Malicious process: different content in the second half.
    fn malicious() -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = if t < 40.0 {
                (0.8 * t).sin() + 0.5 * (2.3 * t).sin() + 0.2 * (5.1 * t).cos()
            } else {
                (4.3 * t).sin() * 0.8 + (0.3 * t).cos()
            }
        })
        .unwrap()
    }

    fn ids() -> NsyncIds {
        NsyncIds::new(Box::new(DwmSynchronizer::new(DwmParams::from_window(4.0))))
    }

    fn trained() -> TrainedIds {
        let train: Vec<Signal> = (1..=5).map(|i| benign(i as f64 * 2e-3)).collect();
        ids().train(&train, benign(0.0), 0.3).unwrap()
    }

    #[test]
    fn benign_test_run_passes() {
        let t = trained();
        let d = t.detect(&benign(7e-3)).unwrap();
        assert!(!d.intrusion, "triggered {:?}", d.triggered);
    }

    #[test]
    fn malicious_run_flags() {
        let t = trained();
        let d = t.detect(&malicious()).unwrap();
        assert!(d.intrusion);
        // Content change must show up in v_dist at least.
        assert!(
            d.fired(crate::discriminator::SubModule::VDist)
                || d.fired(crate::discriminator::SubModule::CDisp),
            "triggered {:?}",
            d.triggered
        );
        // The alert points into the second (tampered) half.
        let idx = d.first_alert_index.unwrap();
        assert!(idx > 0);
    }

    #[test]
    fn train_requires_data() {
        assert!(matches!(
            ids().train(&[], benign(0.0), 0.3),
            Err(NsyncError::InvalidTraining(_))
        ));
    }

    #[test]
    fn analyze_exposes_intermediates() {
        let i = ids();
        let a = benign(1e-3);
        let b = benign(0.0);
        let analysis = i.analyze(&a, &b).unwrap();
        assert_eq!(analysis.alignment.h_disp.len(), analysis.v_dist.len());
        assert!(!analysis.v_dist.is_empty());
        assert_eq!(i.synchronizer_name(), "DWM");
    }

    #[test]
    fn debug_impls_nonempty() {
        let t = trained();
        assert!(!format!("{t:?}").is_empty());
        assert!(!format!("{:?}", ids()).is_empty());
    }

    #[test]
    fn detect_with_analysis_consistent() {
        let t = trained();
        let obs = benign(4e-3);
        let (d1, analysis) = t.detect_with_analysis(&obs).unwrap();
        let d2 = t.detect(&obs).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(analysis.v_dist.len(), analysis.alignment.len());
    }

    #[test]
    fn thresholds_accessible() {
        let t = trained();
        let th = t.thresholds();
        assert!(th.c_c >= 0.0 && th.h_c >= 0.0 && th.v_c >= 0.0);
        assert_eq!(t.config().min_filter_window, 3);
        assert!(!t.reference().is_empty());
    }
}
