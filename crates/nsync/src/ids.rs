//! The end-to-end NSYNC IDS: train on benign runs, then detect.
//!
//! Entry point: [`IdsBuilder`] (or [`NsyncIds::builder`]) assembles the
//! synchronizer and every tuning knob — distance metric, discriminator,
//! channel health — into one [`IdsConfig`] shared by the batch and
//! streaming paths:
//!
//! ```
//! use nsync::prelude::*;
//!
//! # fn main() -> Result<(), NsyncError> {
//! let ids = IdsBuilder::new()
//!     .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
//!     .metric(DistanceMetric::Correlation)
//!     .build()?;
//! # let _ = ids;
//! # Ok(())
//! # }
//! ```

use crate::calibrate::CalibrationConfig;
use crate::comparator::vertical_distances;
use crate::discriminator::{discriminate, trace_stats, Detection, DiscriminatorConfig, Thresholds};
use crate::error::NsyncError;
use crate::fusion::FusionPolicy;
use crate::health::HealthConfig;
use crate::occ::learn_thresholds;
use crate::streaming::StreamSpec;
use am_dsp::metrics::DistanceMetric;
use am_dsp::Signal;
use am_sync::{Alignment, DwmParams, SyncArena, Synchronizer};
use serde::{Deserialize, Serialize};

/// Every tuning knob of an NSYNC detector except the synchronizer:
/// comparator metric, discriminator, and streaming channel-health policy.
/// One value of this type configures the batch IDS, the streaming IDS,
/// and the supervised monitor identically.
///
/// Construct via [`Default`] plus the `with_*` methods (the struct is
/// `#[non_exhaustive]`, so it cannot be built literally outside this
/// crate — new knobs can be added without breaking callers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct IdsConfig {
    /// Comparator distance metric (the paper argues for correlation).
    pub metric: DistanceMetric,
    /// Discriminator tuning (trailing-min filter width).
    pub discriminator: DiscriminatorConfig,
    /// Streaming per-channel health policy (ignored by the batch path).
    pub health: HealthConfig,
    /// Verdict emission policy — debounce, confidence floor,
    /// corroboration bonus (streaming path; the default is permissive:
    /// every alerting window emits).
    pub fusion: FusionPolicy,
    /// Per-printer online threshold calibration (streaming path;
    /// disabled by default — the trained thresholds rule).
    pub calibration: CalibrationConfig,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            metric: DistanceMetric::Correlation,
            discriminator: DiscriminatorConfig::default(),
            health: HealthConfig::default(),
            fusion: FusionPolicy::default(),
            calibration: CalibrationConfig::default(),
        }
    }
}

impl IdsConfig {
    /// The paper's defaults: correlation distance, filter width 3,
    /// default health policy, permissive verdict emission, no online
    /// calibration.
    pub fn new() -> Self {
        IdsConfig::default()
    }

    /// Overrides the comparator distance metric.
    #[must_use]
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Overrides the discriminator configuration.
    #[must_use]
    pub fn with_discriminator(mut self, discriminator: DiscriminatorConfig) -> Self {
        self.discriminator = discriminator;
        self
    }

    /// Overrides the streaming channel-health policy.
    #[must_use]
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Overrides the verdict emission policy.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = fusion;
        self
    }

    /// Overrides the online calibration policy.
    #[must_use]
    pub fn with_calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.calibration = calibration;
        self
    }
}

/// Fluent constructor for [`NsyncIds`]: synchronizer, metric,
/// discriminator, and health policy in one build (see the
/// [module docs](self) for an example).
#[derive(Default)]
pub struct IdsBuilder {
    synchronizer: Option<Box<dyn Synchronizer + Send + Sync>>,
    config: IdsConfig,
}

impl IdsBuilder {
    /// An empty builder; a synchronizer must be supplied before
    /// [`IdsBuilder::build`].
    pub fn new() -> Self {
        IdsBuilder::default()
    }

    /// Sets the synchronizer (DWM, DTW, FastDTW, or any custom
    /// [`Synchronizer`]).
    #[must_use]
    pub fn synchronizer(self, synchronizer: impl Synchronizer + Send + Sync + 'static) -> Self {
        self.boxed_synchronizer(Box::new(synchronizer))
    }

    /// Sets an already-boxed synchronizer (for callers selecting one at
    /// runtime).
    #[must_use]
    pub fn boxed_synchronizer(mut self, synchronizer: Box<dyn Synchronizer + Send + Sync>) -> Self {
        self.synchronizer = Some(synchronizer);
        self
    }

    /// Overrides the comparator distance metric.
    #[must_use]
    pub fn metric(mut self, metric: DistanceMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// Overrides the discriminator configuration.
    #[must_use]
    pub fn discriminator(mut self, discriminator: DiscriminatorConfig) -> Self {
        self.config.discriminator = discriminator;
        self
    }

    /// Overrides the streaming channel-health policy.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.config.health = health;
        self
    }

    /// Overrides the verdict emission policy.
    #[must_use]
    pub fn fusion(mut self, fusion: FusionPolicy) -> Self {
        self.config.fusion = fusion;
        self
    }

    /// Overrides the online calibration policy.
    #[must_use]
    pub fn calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Replaces the whole configuration at once (e.g. one deserialized
    /// from a deployment file).
    #[must_use]
    pub fn config(mut self, config: IdsConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the IDS.
    ///
    /// # Errors
    ///
    /// Returns [`NsyncError::InvalidParameter`] if no synchronizer was
    /// set.
    pub fn build(self) -> Result<NsyncIds, NsyncError> {
        let synchronizer = self.synchronizer.ok_or_else(|| {
            NsyncError::InvalidParameter(
                "IdsBuilder requires a synchronizer (IdsBuilder::synchronizer)".into(),
            )
        })?;
        Ok(NsyncIds {
            synchronizer,
            config: self.config,
        })
    }
}

impl std::fmt::Debug for IdsBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdsBuilder")
            .field(
                "synchronizer",
                &self.synchronizer.as_ref().map(|s| s.name()),
            )
            .field("config", &self.config)
            .finish()
    }
}

/// An untrained NSYNC IDS: a synchronizer + comparator + discriminator
/// configuration. Built with [`IdsBuilder`].
pub struct NsyncIds {
    synchronizer: Box<dyn Synchronizer + Send + Sync>,
    config: IdsConfig,
}

/// The intermediate result of analyzing one observed signal against the
/// reference (exposed per C-INTERMEDIATE so callers can plot Fig 8-style
/// traces without re-running the pipeline).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The synchronizer's alignment (h_disp + mapping).
    pub alignment: Alignment,
    /// Vertical distances over the alignment's units.
    pub v_dist: Vec<f64>,
}

impl NsyncIds {
    /// Starts an [`IdsBuilder`].
    pub fn builder() -> IdsBuilder {
        IdsBuilder::new()
    }

    /// Creates an IDS with the default correlation-distance comparator and
    /// the paper's discriminator configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use `NsyncIds::builder().synchronizer(..).build()` (`IdsBuilder`) instead"
    )]
    pub fn new(synchronizer: Box<dyn Synchronizer + Send + Sync>) -> Self {
        NsyncIds {
            synchronizer,
            config: IdsConfig::default(),
        }
    }

    /// Overrides the distance metric (for ablations; the paper argues for
    /// correlation distance).
    #[deprecated(since = "0.2.0", note = "use `IdsBuilder::metric` instead")]
    #[must_use]
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// Overrides the discriminator configuration.
    #[deprecated(since = "0.2.0", note = "use `IdsBuilder::discriminator` instead")]
    #[must_use]
    pub fn with_config(mut self, config: DiscriminatorConfig) -> Self {
        self.config.discriminator = config;
        self
    }

    /// The synchronizer's display name.
    pub fn synchronizer_name(&self) -> String {
        self.synchronizer.name()
    }

    /// The full configuration in effect.
    pub fn ids_config(&self) -> IdsConfig {
        self.config
    }

    /// Runs synchronizer + comparator on one observed signal.
    ///
    /// # Errors
    ///
    /// Propagates synchronizer and comparator failures.
    pub fn analyze(&self, observed: &Signal, reference: &Signal) -> Result<Analysis, NsyncError> {
        let alignment = self.synchronizer.synchronize(observed, reference)?;
        let v_dist = vertical_distances(observed, reference, &alignment, self.config.metric)?;
        Ok(Analysis { alignment, v_dist })
    }

    /// [`NsyncIds::analyze`] running on a caller-owned [`SyncArena`]
    /// instead of per-call scratch — the worker-pinned path schedulers
    /// use. Bit-identical to `analyze`.
    ///
    /// # Errors
    ///
    /// Same as [`NsyncIds::analyze`].
    pub fn analyze_with(
        &self,
        observed: &Signal,
        reference: &Signal,
        arena: &mut SyncArena,
    ) -> Result<Analysis, NsyncError> {
        let alignment = self
            .synchronizer
            .synchronize_with(observed, reference, arena)?;
        let v_dist = vertical_distances(observed, reference, &alignment, self.config.metric)?;
        Ok(Analysis { alignment, v_dist })
    }

    /// Learns OCC thresholds from benign training runs against the
    /// reference (Eq 23–28) and returns a ready-to-detect IDS.
    ///
    /// # Errors
    ///
    /// Returns [`NsyncError::InvalidTraining`] when `training` is empty
    /// and propagates per-run analysis failures.
    pub fn train(
        self,
        training: &[Signal],
        reference: Signal,
        r: f64,
    ) -> Result<TrainedIds, NsyncError> {
        let mut arena = SyncArena::new();
        self.train_with(training, reference, r, &mut arena)
    }

    /// [`NsyncIds::train`] running every per-run analysis on a
    /// caller-owned [`SyncArena`]. Bit-identical to `train`.
    ///
    /// # Errors
    ///
    /// Same as [`NsyncIds::train`].
    pub fn train_with(
        self,
        training: &[Signal],
        reference: Signal,
        r: f64,
        arena: &mut SyncArena,
    ) -> Result<TrainedIds, NsyncError> {
        if training.is_empty() {
            return Err(NsyncError::InvalidTraining(
                "at least one benign training run is required".into(),
            ));
        }
        let mut stats = Vec::with_capacity(training.len());
        for run in training {
            let analysis = self.analyze_with(run, &reference, arena)?;
            let (s, _, _, _) = trace_stats(
                &analysis.alignment.h_disp,
                &analysis.v_dist,
                &self.config.discriminator,
            );
            stats.push(s);
        }
        let thresholds = learn_thresholds(&stats, r)?;
        Ok(TrainedIds {
            ids: self,
            reference,
            thresholds,
        })
    }
}

impl std::fmt::Debug for NsyncIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsyncIds")
            .field("synchronizer", &self.synchronizer.name())
            .field("config", &self.config)
            .finish()
    }
}

/// A trained NSYNC IDS holding the reference signal and learned
/// thresholds.
pub struct TrainedIds {
    ids: NsyncIds,
    reference: Signal,
    thresholds: Thresholds,
}

impl TrainedIds {
    /// The learned critical values.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The reference signal.
    pub fn reference(&self) -> &Signal {
        &self.reference
    }

    /// The discriminator configuration in effect.
    pub fn config(&self) -> DiscriminatorConfig {
        self.ids.config.discriminator
    }

    /// The full configuration in effect (shared with the streaming path
    /// via [`TrainedIds::stream_spec`]).
    pub fn ids_config(&self) -> IdsConfig {
        self.ids.config
    }

    /// Packages this detector's reference, thresholds, and configuration
    /// as a [`StreamSpec`] — everything the streaming runtime needs to
    /// [`open`](StreamSpec::open) or [`spawn`](StreamSpec::spawn) a live
    /// detector consistent with the batch training.
    pub fn stream_spec(&self, params: DwmParams) -> StreamSpec {
        StreamSpec::new(self.reference.clone(), params, self.thresholds)
            .with_config(self.ids.config)
    }

    /// Analyzes and discriminates one observed signal.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn detect(&self, observed: &Signal) -> Result<Detection, NsyncError> {
        let mut arena = SyncArena::new();
        self.detect_with(observed, &mut arena)
    }

    /// [`TrainedIds::detect`] running on a caller-owned [`SyncArena`] —
    /// the worker-pinned path. Bit-identical to `detect`.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn detect_with(
        &self,
        observed: &Signal,
        arena: &mut SyncArena,
    ) -> Result<Detection, NsyncError> {
        let analysis = self.ids.analyze_with(observed, &self.reference, arena)?;
        Ok(discriminate(
            &analysis.alignment.h_disp,
            &analysis.v_dist,
            &self.thresholds,
            &self.ids.config.discriminator,
        ))
    }

    /// Like [`TrainedIds::detect`] but also returns the intermediate
    /// analysis (for plots and sub-module studies).
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn detect_with_analysis(
        &self,
        observed: &Signal,
    ) -> Result<(Detection, Analysis), NsyncError> {
        let analysis = self.ids.analyze(observed, &self.reference)?;
        let detection = discriminate(
            &analysis.alignment.h_disp,
            &analysis.v_dist,
            &self.thresholds,
            &self.ids.config.discriminator,
        );
        Ok((detection, analysis))
    }
}

impl std::fmt::Debug for TrainedIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedIds")
            .field("ids", &self.ids)
            .field("thresholds", &self.thresholds)
            .field("reference_len", &self.reference.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_sync::{DwmParams, DwmSynchronizer};

    /// Benign process generator: same underlying waveform with tiny phase
    /// perturbations standing in for benign run-to-run variation.
    fn benign(phase: f64) -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = (0.8 * t).sin() + 0.5 * (2.3 * t + phase).sin() + 0.2 * (5.1 * t).cos()
        })
        .unwrap()
    }

    /// Malicious process: different content in the second half.
    fn malicious() -> Signal {
        Signal::from_fn(20.0, 1, 1600, |t, f| {
            f[0] = if t < 40.0 {
                (0.8 * t).sin() + 0.5 * (2.3 * t).sin() + 0.2 * (5.1 * t).cos()
            } else {
                (4.3 * t).sin() * 0.8 + (0.3 * t).cos()
            }
        })
        .unwrap()
    }

    fn ids() -> NsyncIds {
        NsyncIds::builder()
            .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
            .build()
            .unwrap()
    }

    fn trained() -> TrainedIds {
        let train: Vec<Signal> = (1..=5).map(|i| benign(i as f64 * 2e-3)).collect();
        ids().train(&train, benign(0.0), 0.3).unwrap()
    }

    #[test]
    fn builder_requires_a_synchronizer() {
        assert!(matches!(
            IdsBuilder::new().build(),
            Err(NsyncError::InvalidParameter(_))
        ));
    }

    #[test]
    fn builder_wires_every_knob() {
        let health = HealthConfig::default().with_recovery_windows(9);
        let fusion = FusionPolicy::new()
            .with_debounce_windows(2)
            .with_min_confidence(0.1);
        let calibration = CalibrationConfig::adaptive().with_warmup_windows(16);
        let built = IdsBuilder::new()
            .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
            .metric(DistanceMetric::Euclidean)
            .discriminator(DiscriminatorConfig::new().with_min_filter_window(5))
            .health(health)
            .fusion(fusion)
            .calibration(calibration)
            .build()
            .unwrap();
        let cfg = built.ids_config();
        assert_eq!(cfg.metric, DistanceMetric::Euclidean);
        assert_eq!(cfg.discriminator.min_filter_window, 5);
        assert_eq!(cfg.health, health);
        assert_eq!(cfg.fusion, fusion);
        assert_eq!(cfg.calibration, calibration);
        // Wholesale config replacement wins over earlier knobs.
        let replaced = IdsBuilder::new()
            .metric(DistanceMetric::Euclidean)
            .config(IdsConfig::default())
            .boxed_synchronizer(Box::new(DwmSynchronizer::new(DwmParams::from_window(4.0))))
            .build()
            .unwrap();
        assert_eq!(replaced.ids_config(), IdsConfig::default());
        assert!(!format!("{:?}", NsyncIds::builder()).is_empty());
    }

    #[test]
    fn deprecated_constructors_match_builder() {
        #[allow(deprecated)]
        let old = NsyncIds::new(Box::new(DwmSynchronizer::new(DwmParams::from_window(4.0))))
            .with_metric(DistanceMetric::Manhattan)
            .with_config(DiscriminatorConfig::new().with_min_filter_window(7));
        let new = NsyncIds::builder()
            .synchronizer(DwmSynchronizer::new(DwmParams::from_window(4.0)))
            .metric(DistanceMetric::Manhattan)
            .discriminator(DiscriminatorConfig::new().with_min_filter_window(7))
            .build()
            .unwrap();
        assert_eq!(old.ids_config(), new.ids_config());
    }

    #[test]
    fn benign_test_run_passes() {
        let t = trained();
        let d = t.detect(&benign(7e-3)).unwrap();
        assert!(!d.intrusion, "triggered {:?}", d.triggered);
    }

    #[test]
    fn malicious_run_flags() {
        let t = trained();
        let d = t.detect(&malicious()).unwrap();
        assert!(d.intrusion);
        // Content change must show up in v_dist at least.
        assert!(
            d.fired(crate::discriminator::SubModule::VDist)
                || d.fired(crate::discriminator::SubModule::CDisp),
            "triggered {:?}",
            d.triggered
        );
        // The alert points into the second (tampered) half.
        let idx = d.first_alert_index.unwrap();
        assert!(idx > 0);
    }

    #[test]
    fn train_requires_data() {
        assert!(matches!(
            ids().train(&[], benign(0.0), 0.3),
            Err(NsyncError::InvalidTraining(_))
        ));
    }

    #[test]
    fn analyze_exposes_intermediates() {
        let i = ids();
        let a = benign(1e-3);
        let b = benign(0.0);
        let analysis = i.analyze(&a, &b).unwrap();
        assert_eq!(analysis.alignment.h_disp.len(), analysis.v_dist.len());
        assert!(!analysis.v_dist.is_empty());
        assert_eq!(i.synchronizer_name(), "DWM");
    }

    #[test]
    fn debug_impls_nonempty() {
        let t = trained();
        assert!(!format!("{t:?}").is_empty());
        assert!(!format!("{:?}", ids()).is_empty());
    }

    #[test]
    fn detect_with_analysis_consistent() {
        let t = trained();
        let obs = benign(4e-3);
        let (d1, analysis) = t.detect_with_analysis(&obs).unwrap();
        let d2 = t.detect(&obs).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(analysis.v_dist.len(), analysis.alignment.len());
    }

    #[test]
    fn thresholds_accessible() {
        let t = trained();
        let th = t.thresholds();
        assert!(th.c_c >= 0.0 && th.h_c >= 0.0 && th.v_c >= 0.0);
        assert_eq!(t.config().min_filter_window, 3);
        assert!(!t.reference().is_empty());
    }

    #[test]
    fn arena_paths_match_default_paths() {
        // train_with/detect_with on one reused arena must be bit-identical
        // to the allocating train/detect pair.
        let train: Vec<Signal> = (1..=5).map(|i| benign(i as f64 * 2e-3)).collect();
        let mut arena = SyncArena::new();
        let t_default = ids().train(&train, benign(0.0), 0.3).unwrap();
        let t_arena = ids()
            .train_with(&train, benign(0.0), 0.3, &mut arena)
            .unwrap();
        assert_eq!(t_default.thresholds(), t_arena.thresholds());
        for obs in [benign(7e-3), malicious()] {
            let d1 = t_default.detect(&obs).unwrap();
            let d2 = t_arena.detect_with(&obs, &mut arena).unwrap();
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn stream_spec_carries_training_artifacts() {
        let t = trained();
        let spec = t.stream_spec(DwmParams::from_window(4.0));
        assert_eq!(spec.thresholds(), t.thresholds());
        assert_eq!(spec.config(), t.ids_config());
        assert_eq!(spec.reference().len(), t.reference().len());
        let mut live = spec.open().unwrap();
        let verdicts = live.push(&benign(7e-3)).unwrap();
        assert!(verdicts.is_empty(), "{verdicts:?}");
    }
}
