//! The discriminator: automatic intrusion detection (§VII-B, Fig 8).
//!
//! Three sub-modules, each with its own learned critical value; an
//! intrusion is declared if **any** sub-module fires:
//!
//! 1. `c_disp`-based: the Cumulative Absolute Difference of the
//!    Horizontal Displacement (CADHD, Eq 17) exceeds `c_c` — catches
//!    failed synchronization (h_disp thrashing),
//! 2. `h_dist`-based: `|h_disp[i]|` exceeds `h_c` — catches timing drift
//!    (e.g. the Speed0.95 attack),
//! 3. `v_dist`-based: the vertical distance exceeds `v_c` — catches
//!    content changes (e.g. InfillGrid).
//!
//! `h_dist` and `v_dist` are spike-suppressed with a trailing-minimum
//! filter of window 3 (Eq 21–22) before thresholding, so an isolated
//! time-noise spike cannot raise a false alarm — a deviation must persist
//! for the full filter window.

use am_dsp::filter::trailing_min;
use am_dsp::stats;
use serde::{Deserialize, Serialize};

/// Discriminator configuration.
///
/// `#[non_exhaustive]`: construct with [`DiscriminatorConfig::new`] (or
/// [`Default`]) and override fields with the `with_*` builders, mirroring
/// [`MonitorConfig`](crate::streaming::monitor::MonitorConfig) — new
/// tuning knobs can then be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct DiscriminatorConfig {
    /// Trailing-min filter window for `h_dist` and `v_dist` (paper: 3).
    pub min_filter_window: usize,
}

impl Default for DiscriminatorConfig {
    fn default() -> Self {
        DiscriminatorConfig {
            min_filter_window: 3,
        }
    }
}

impl DiscriminatorConfig {
    /// The paper's configuration (filter window 3).
    pub fn new() -> Self {
        DiscriminatorConfig::default()
    }

    /// Overrides the trailing-min filter window (must be ≥ 1).
    #[must_use]
    pub fn with_min_filter_window(mut self, window: usize) -> Self {
        self.min_filter_window = window;
        self
    }
}

/// The three detection sub-modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubModule {
    /// CADHD (Eq 17–18).
    CDisp,
    /// Horizontal distance (Eq 19).
    HDist,
    /// Vertical distance (Eq 20).
    VDist,
}

impl SubModule {
    /// All three, in the paper's order.
    pub fn all() -> [SubModule; 3] {
        [SubModule::CDisp, SubModule::HDist, SubModule::VDist]
    }
}

impl std::fmt::Display for SubModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SubModule::CDisp => "c_disp",
            SubModule::HDist => "h_dist",
            SubModule::VDist => "v_dist",
        };
        f.write_str(s)
    }
}

/// Learned critical values (Eq 26–28).
///
/// `#[non_exhaustive]`: construct with [`Thresholds::new`] and adjust
/// with the `with_*` builders so calibration-era fields can be added
/// without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Thresholds {
    /// Critical CADHD `c_c`.
    pub c_c: f64,
    /// Critical horizontal distance `h_c`.
    pub h_c: f64,
    /// Critical vertical distance `v_c`.
    pub v_c: f64,
}

impl Thresholds {
    /// Critical values for the three sub-modules, in the paper's order.
    pub fn new(c_c: f64, h_c: f64, v_c: f64) -> Self {
        Thresholds { c_c, h_c, v_c }
    }

    /// Overrides the critical CADHD `c_c`.
    #[must_use]
    pub fn with_c_c(mut self, c_c: f64) -> Self {
        self.c_c = c_c;
        self
    }

    /// Overrides the critical horizontal distance `h_c`.
    #[must_use]
    pub fn with_h_c(mut self, h_c: f64) -> Self {
        self.h_c = h_c;
        self
    }

    /// Overrides the critical vertical distance `v_c`.
    #[must_use]
    pub fn with_v_c(mut self, v_c: f64) -> Self {
        self.v_c = v_c;
        self
    }
}

/// Outcome of running the discriminator on one process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// `true` if any sub-module fired.
    pub intrusion: bool,
    /// Which sub-modules fired.
    pub triggered: Vec<SubModule>,
    /// Earliest index at which any sub-module fired.
    pub first_alert_index: Option<usize>,
    /// The CADHD trace (Eq 17).
    pub c_disp: Vec<f64>,
    /// Filtered horizontal distances (Eq 21).
    pub h_dist_filtered: Vec<f64>,
    /// Filtered vertical distances (Eq 22).
    pub v_dist_filtered: Vec<f64>,
}

impl Detection {
    /// `true` if the given sub-module fired.
    pub fn fired(&self, module: SubModule) -> bool {
        self.triggered.contains(&module)
    }
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.intrusion {
            return write!(f, "benign ({} windows checked)", self.v_dist_filtered.len());
        }
        let modules: Vec<String> = self.triggered.iter().map(|m| m.to_string()).collect();
        write!(
            f,
            "INTRUSION via [{}] first at window {}",
            modules.join(", "),
            self.first_alert_index.unwrap_or(0)
        )
    }
}

/// CADHD (Eq 17): `c_disp[i] = Σ_{j≤i} |h_disp[j] − h_disp[j−1]|` with
/// `h_disp[-1] = 0`.
pub fn cadhd(h_disp: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut prev = 0.0;
    h_disp
        .iter()
        .map(|&h| {
            acc += (h - prev).abs();
            prev = h;
            acc
        })
        .collect()
}

/// Per-run statistics the OCC trainer needs (Eq 23–25): the maxima of the
/// CADHD trace and the **filtered** h/v distance traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// `max_i c_disp[i]` (Eq 23).
    pub c_max: f64,
    /// `max_i h_dist_f[i]` (Eq 24).
    pub h_max: f64,
    /// `max_i v_dist_f[i]` (Eq 25).
    pub v_max: f64,
}

/// Computes the three traces and their maxima for one run.
///
/// # Panics
///
/// Panics if `config.min_filter_window == 0` (a config invariant).
pub fn trace_stats(
    h_disp: &[f64],
    v_dist: &[f64],
    config: &DiscriminatorConfig,
) -> (TraceStats, Vec<f64>, Vec<f64>, Vec<f64>) {
    let c_disp = cadhd(h_disp);
    let h_dist: Vec<f64> = h_disp.iter().map(|v| v.abs()).collect();
    let h_f = trailing_min(&h_dist, config.min_filter_window).expect("filter window must be >= 1");
    let v_f = trailing_min(v_dist, config.min_filter_window).expect("filter window must be >= 1");
    let stats = TraceStats {
        c_max: stats::max(&c_disp).unwrap_or(0.0),
        h_max: stats::max(&h_f).unwrap_or(0.0),
        v_max: stats::max(&v_f).unwrap_or(0.0),
    };
    (stats, c_disp, h_f, v_f)
}

/// Runs the full discriminator (Eq 18–20 over the filtered traces).
pub fn discriminate(
    h_disp: &[f64],
    v_dist: &[f64],
    thresholds: &Thresholds,
    config: &DiscriminatorConfig,
) -> Detection {
    let (_, c_disp, h_f, v_f) = trace_stats(h_disp, v_dist, config);
    let mut triggered = Vec::new();
    let mut first: Option<usize> = None;
    let mut note = |module: SubModule, idx: Option<usize>| {
        if let Some(i) = idx {
            triggered.push(module);
            first = Some(first.map_or(i, |f| f.min(i)));
        }
    };
    note(
        SubModule::CDisp,
        c_disp.iter().position(|&v| v > thresholds.c_c),
    );
    note(
        SubModule::HDist,
        h_f.iter().position(|&v| v > thresholds.h_c),
    );
    note(
        SubModule::VDist,
        v_f.iter().position(|&v| v > thresholds.v_c),
    );
    Detection {
        intrusion: !triggered.is_empty(),
        triggered,
        first_alert_index: first,
        c_disp,
        h_dist_filtered: h_f,
        v_dist_filtered: v_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th(c: f64, h: f64, v: f64) -> Thresholds {
        Thresholds::new(c, h, v)
    }

    #[test]
    fn cadhd_accumulates_from_zero() {
        assert_eq!(cadhd(&[]), Vec::<f64>::new());
        // h_disp[-1] = 0, so a first value of 2 contributes 2.
        assert_eq!(cadhd(&[2.0, 2.0, 0.0]), vec![2.0, 2.0, 4.0]);
        assert_eq!(cadhd(&[0.0, 1.0, -1.0]), vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn quiet_process_raises_nothing() {
        let h = vec![0.0, 1.0, 1.0, 0.0, -1.0];
        let v = vec![0.01, 0.02, 0.01, 0.03, 0.02];
        let d = discriminate(&h, &v, &th(10.0, 5.0, 0.5), &DiscriminatorConfig::default());
        assert!(!d.intrusion);
        assert!(d.triggered.is_empty());
        assert_eq!(d.first_alert_index, None);
    }

    #[test]
    fn cadhd_fires_on_thrashing_hdisp() {
        // Oscillating h_disp — failed DSYNC (Fig 8a's malicious case).
        let h: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let v = vec![0.0; 50];
        let d = discriminate(
            &h,
            &v,
            &th(50.0, 100.0, 1.0),
            &DiscriminatorConfig::default(),
        );
        assert!(d.intrusion);
        assert!(d.fired(SubModule::CDisp));
        assert!(!d.fired(SubModule::HDist));
    }

    #[test]
    fn hdist_fires_on_sustained_drift() {
        let mut h = vec![0.0; 20];
        for (i, v) in h.iter_mut().enumerate() {
            *v = i as f64; // steady drift up to 19
        }
        let v = vec![0.0; 20];
        let d = discriminate(&h, &v, &th(1e9, 10.0, 1.0), &DiscriminatorConfig::default());
        assert!(d.fired(SubModule::HDist));
        // First alert where filtered |h| exceeds 10: h=[..] filtered with
        // window 3 -> value 11 at index 13.
        assert_eq!(d.first_alert_index, Some(13));
    }

    #[test]
    fn isolated_spikes_are_suppressed() {
        let mut h = vec![0.0; 20];
        h[7] = 100.0; // single spike
        let mut v = vec![0.0; 20];
        v[11] = 9.0; // single spike
        let d = discriminate(&h, &v, &th(1e9, 10.0, 1.0), &DiscriminatorConfig::default());
        assert!(!d.fired(SubModule::HDist), "h spike should be filtered");
        assert!(!d.fired(SubModule::VDist), "v spike should be filtered");
    }

    #[test]
    fn sustained_vdist_fires() {
        let h = vec![0.0; 20];
        let mut v = vec![0.0; 20];
        for val in v.iter_mut().skip(10).take(5) {
            *val = 2.0; // persists 5 windows > filter window 3
        }
        let d = discriminate(&h, &v, &th(1e9, 1e9, 1.0), &DiscriminatorConfig::default());
        assert!(d.fired(SubModule::VDist));
        assert_eq!(d.first_alert_index, Some(12));
    }

    #[test]
    fn trace_stats_maxima() {
        let h = vec![0.0, 3.0, -3.0];
        let v = vec![0.5, 0.5, 0.5];
        let (s, c, hf, vf) = trace_stats(&h, &v, &DiscriminatorConfig::default());
        assert_eq!(c, vec![0.0, 3.0, 9.0]);
        assert_eq!(s.c_max, 9.0);
        assert_eq!(s.h_max, 0.0); // trailing min over [0,3,3] windows
        assert_eq!(s.v_max, 0.5);
        assert_eq!(hf.len(), 3);
        assert_eq!(vf.len(), 3);
    }

    #[test]
    fn submodule_display_and_all() {
        assert_eq!(SubModule::all().len(), 3);
        assert_eq!(SubModule::CDisp.to_string(), "c_disp");
        assert_eq!(SubModule::VDist.to_string(), "v_dist");
    }

    #[test]
    fn detection_display_forms() {
        let quiet = discriminate(
            &[0.0; 4],
            &[0.0; 4],
            &th(1.0, 1.0, 1.0),
            &DiscriminatorConfig::default(),
        );
        assert!(quiet.to_string().contains("benign"));
        let mut v = vec![0.0; 8];
        for x in v.iter_mut().skip(2) {
            *x = 5.0;
        }
        let loud = discriminate(
            &[0.0; 8],
            &v,
            &th(1e9, 1e9, 1.0),
            &DiscriminatorConfig::default(),
        );
        let text = loud.to_string();
        assert!(text.contains("INTRUSION"), "{text}");
        assert!(text.contains("v_dist"), "{text}");
    }
}
