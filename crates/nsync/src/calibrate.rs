//! Online per-printer threshold calibration (DESIGN.md §15.1).
//!
//! The OCC thresholds (Eq 26–28) are learned once, from the benign
//! training runs of *one* reference printer. A farm's machines differ —
//! worn belts, louder power supplies, different acoustic mounts — so a
//! fleet-wide threshold is either too tight for the noisy printers
//! (false alarms) or too loose for the quiet ones. The [`Calibrator`]
//! re-derives each printer's critical values from the first
//! [`CalibrationConfig::warmup_windows`] windows of **its own stream**:
//!
//! ```text
//!            observe h_f / v_f            warmup full
//!  Warmup ──────────────────► Warmup ──┬──────────────► Calibrated
//!   (detecting with trained            │  drift guard
//!    thresholds throughout)            └──────────────► Refused
//! ```
//!
//! - **Robust quantile tracking** — the calibrated threshold is
//!   `q_hi + margin · (q_hi − median)` over the warmup samples
//!   ([`crate::occ::quantile`]), the streaming analogue of the Eq 26–28
//!   `max + r·(max − min)` that a single outlier window cannot set.
//! - **Raise-only clamp** — the result is clamped to
//!   `[trained, trained · max_scale]`: calibration may desensitize a
//!   noisy printer, never sharpen below the vetted training floor.
//! - **Drift guard** — if the second half of the warmup runs hot against
//!   the first (median ratio above [`CalibrationConfig::drift_guard`]),
//!   the stream is already trending away from benign and calibration is
//!   [refused](CalibrationState::Refused): a slow-ramp attack must not
//!   be allowed to poison its own baseline.
//! - **Freeze** — after warmup the thresholds never move again, so a
//!   pure-benign stream converges to one fixed, reproducible
//!   [`Thresholds`] (the determinism pin in `tests/fusion_quality.rs`).
//!
//! Detection keeps running with the *trained* thresholds during warmup —
//! calibration adjusts sensitivity, it never opens a blind window.

use crate::discriminator::Thresholds;
use crate::occ::quantile;
use serde::{Deserialize, Serialize};

/// Online calibration knobs, hung off
/// [`IdsConfig`](crate::ids::IdsConfig).
///
/// `#[non_exhaustive]`: construct with [`Default`] (disabled) or
/// [`CalibrationConfig::adaptive`] and override with the `with_*`
/// builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct CalibrationConfig {
    /// Master switch; `false` (default) keeps the trained thresholds
    /// untouched and the calibrator inert.
    pub enabled: bool,
    /// Completed windows observed before thresholds are recomputed.
    pub warmup_windows: usize,
    /// Upper quantile `q_hi` of the warmup samples (default 0.9).
    pub quantile: f64,
    /// Margin `r` in `q_hi + r · (q_hi − median)` (default 0.3, the
    /// small-profile OCC margin).
    pub margin: f64,
    /// Calibrated thresholds are clamped to
    /// `[trained, trained · max_scale]` (default 4.0).
    pub max_scale: f64,
    /// Refuse calibration when the second warmup half's median exceeds
    /// the first's by this factor (default 1.6).
    pub drift_guard: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            enabled: false,
            warmup_windows: 32,
            quantile: 0.9,
            margin: 0.3,
            max_scale: 4.0,
            drift_guard: 1.6,
        }
    }
}

impl CalibrationConfig {
    /// Calibration enabled with the default warmup/quantile/guard.
    pub fn adaptive() -> Self {
        CalibrationConfig {
            enabled: true,
            ..CalibrationConfig::default()
        }
    }

    /// Switches calibration on or off.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Overrides the warmup length in completed windows.
    #[must_use]
    pub fn with_warmup_windows(mut self, windows: usize) -> Self {
        self.warmup_windows = windows;
        self
    }

    /// Overrides the upper quantile `q_hi`.
    #[must_use]
    pub fn with_quantile(mut self, q: f64) -> Self {
        self.quantile = q;
        self
    }

    /// Overrides the margin `r`.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Overrides the raise-only clamp ceiling factor.
    #[must_use]
    pub fn with_max_scale(mut self, scale: f64) -> Self {
        self.max_scale = scale;
        self
    }

    /// Overrides the drift-guard refusal ratio.
    #[must_use]
    pub fn with_drift_guard(mut self, ratio: f64) -> Self {
        self.drift_guard = ratio;
        self
    }
}

/// Where a calibrator is in its life cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CalibrationState {
    /// Calibration is switched off; trained thresholds apply forever.
    Disabled,
    /// Still collecting warmup samples (detecting with the trained
    /// thresholds meanwhile).
    Warmup {
        /// Windows observed so far.
        seen: usize,
        /// Windows required.
        need: usize,
    },
    /// Warmup complete; these thresholds are active and frozen.
    Calibrated {
        /// The recalibrated critical values.
        thresholds: Thresholds,
    },
    /// The drift guard fired; the trained thresholds stay active.
    Refused {
        /// Human-readable refusal reason (which statistic drifted).
        reason: String,
    },
}

impl std::fmt::Display for CalibrationState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationState::Disabled => f.write_str("disabled"),
            CalibrationState::Warmup { seen, need } => write!(f, "warmup {seen}/{need}"),
            CalibrationState::Calibrated { thresholds } => write!(
                f,
                "calibrated (c_c {:.4}, h_c {:.4}, v_c {:.4})",
                thresholds.c_c, thresholds.h_c, thresholds.v_c
            ),
            CalibrationState::Refused { reason } => write!(f, "refused: {reason}"),
        }
    }
}

/// Drift-guard check over one statistic's warmup samples, in arrival
/// order: `true` when the second half runs hot against the first.
fn drifting(samples: &[f64], guard: f64, floor: f64) -> bool {
    if samples.len() < 4 || guard.is_nan() || guard <= 0.0 {
        return false;
    }
    let mid = samples.len() / 2;
    let median = |part: &[f64]| {
        let mut sorted: Vec<f64> = part.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        quantile(&sorted, 0.5).unwrap_or(0.0)
    };
    let first = median(&samples[..mid]);
    let second = median(&samples[mid..]);
    // `floor` keeps micro-noise around zero from tripping the ratio: a
    // drift only matters once it is a visible fraction of the trained
    // critical value.
    second > guard * first.max(floor)
}

/// Pure calibration math: quantile thresholds from warmup samples, the
/// raise-only clamp, and the drift guard. Returns `Err(reason)` on
/// refusal.
///
/// `h_samples`/`v_samples` are the filtered per-window statistics in
/// arrival order; the CADHD critical value is not re-estimated from a
/// quantile (it is cumulative, so warmup quantiles undershoot a full
/// print) — it scales by the same factor the `h` threshold moved,
/// since CADHD accumulates `|Δh_disp|` and its growth rate tracks the
/// printer's timing noise.
pub fn calibrate_thresholds(
    h_samples: &[f64],
    v_samples: &[f64],
    trained: &Thresholds,
    cfg: &CalibrationConfig,
) -> Result<Thresholds, String> {
    if drifting(h_samples, cfg.drift_guard, 0.05 * trained.h_c.abs()) {
        return Err("h_dist warmup drifted (possible slow-ramp attack)".to_string());
    }
    if drifting(v_samples, cfg.drift_guard, 0.05 * trained.v_c.abs()) {
        return Err("v_dist warmup drifted (possible slow-ramp attack)".to_string());
    }
    let learn = |samples: &[f64], trained: f64| -> f64 {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let (Some(hi), Some(med)) = (quantile(&sorted, cfg.quantile), quantile(&sorted, 0.5))
        else {
            return trained;
        };
        let raw = hi + cfg.margin * (hi - med);
        let ceiling = trained * cfg.max_scale.max(1.0);
        raw.clamp(trained.min(ceiling), trained.max(ceiling))
    };
    let h_c = learn(h_samples, trained.h_c);
    let v_c = learn(v_samples, trained.v_c);
    let h_ratio = if trained.h_c > 0.0 {
        (h_c / trained.h_c).clamp(1.0, cfg.max_scale.max(1.0))
    } else {
        1.0
    };
    Ok(Thresholds::new(trained.c_c * h_ratio, h_c, v_c))
}

/// The per-detector calibration state machine. Owned by
/// [`StreamingIds`](crate::StreamingIds); fed one sample per completed
/// window.
#[derive(Debug, Clone)]
pub struct Calibrator {
    cfg: CalibrationConfig,
    trained: Thresholds,
    h: Vec<f64>,
    v: Vec<f64>,
    seen: usize,
    state: CalibrationState,
}

impl Calibrator {
    /// A calibrator for one detector, starting from its trained
    /// thresholds.
    pub fn new(cfg: CalibrationConfig, trained: Thresholds) -> Self {
        let state = if cfg.enabled && cfg.warmup_windows > 0 {
            CalibrationState::Warmup {
                seen: 0,
                need: cfg.warmup_windows,
            }
        } else {
            CalibrationState::Disabled
        };
        Calibrator {
            cfg,
            trained,
            h: Vec::new(),
            v: Vec::new(),
            seen: 0,
            state,
        }
    }

    /// Current life-cycle state.
    pub fn state(&self) -> &CalibrationState {
        &self.state
    }

    /// Feeds one completed window's filtered statistics (`v_f` is absent
    /// on blind windows). Returns the recalibrated thresholds exactly
    /// once — on the window that completes the warmup, unless refused.
    pub fn observe(&mut self, h_f: f64, v_f: Option<f64>) -> Option<Thresholds> {
        if !matches!(self.state, CalibrationState::Warmup { .. }) {
            return None;
        }
        if h_f.is_finite() {
            self.h.push(h_f);
        }
        if let Some(v) = v_f.filter(|v| v.is_finite()) {
            self.v.push(v);
        }
        self.seen += 1;
        if self.seen < self.cfg.warmup_windows {
            self.state = CalibrationState::Warmup {
                seen: self.seen,
                need: self.cfg.warmup_windows,
            };
            return None;
        }
        match calibrate_thresholds(&self.h, &self.v, &self.trained, &self.cfg) {
            Ok(thresholds) => {
                self.h = Vec::new();
                self.v = Vec::new();
                self.state = CalibrationState::Calibrated { thresholds };
                am_telemetry::count!("calibrate.calibrated");
                Some(thresholds)
            }
            Err(reason) => {
                self.h = Vec::new();
                self.v = Vec::new();
                self.state = CalibrationState::Refused { reason };
                am_telemetry::count!("calibrate.refused");
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> Thresholds {
        Thresholds::new(10.0, 2.0, 0.5)
    }

    #[test]
    fn disabled_config_never_calibrates() {
        let mut cal = Calibrator::new(CalibrationConfig::default(), trained());
        assert_eq!(*cal.state(), CalibrationState::Disabled);
        for _ in 0..100 {
            assert!(cal.observe(1.0, Some(0.1)).is_none());
        }
        assert_eq!(*cal.state(), CalibrationState::Disabled);
    }

    #[test]
    fn warmup_completes_once_and_freezes() {
        let cfg = CalibrationConfig::adaptive().with_warmup_windows(8);
        let mut cal = Calibrator::new(cfg, trained());
        let mut fired = Vec::new();
        for i in 0..20 {
            if let Some(t) = cal.observe(1.0 + 0.01 * (i % 3) as f64, Some(0.1)) {
                fired.push((i, t));
            }
        }
        assert_eq!(fired.len(), 1, "calibration fires exactly once");
        assert_eq!(fired[0].0, 7, "on the warmup-completing window");
        assert!(matches!(cal.state(), CalibrationState::Calibrated { .. }));
    }

    #[test]
    fn calibration_is_raise_only_and_clamped() {
        let t = trained();
        let cfg = CalibrationConfig::adaptive();
        // Quiet printer: samples far below trained thresholds — clamped
        // up to the trained floor.
        let quiet = calibrate_thresholds(&[0.1; 32], &[0.01; 32], &t, &cfg).unwrap();
        assert_eq!(quiet.h_c, t.h_c);
        assert_eq!(quiet.v_c, t.v_c);
        assert_eq!(quiet.c_c, t.c_c);
        // Noisy printer: samples above the trained thresholds raise them,
        // bounded by max_scale.
        let noisy = calibrate_thresholds(&[6.0; 32], &[1.4; 32], &t, &cfg).unwrap();
        assert!(noisy.h_c > t.h_c && noisy.h_c <= t.h_c * cfg.max_scale);
        assert!(noisy.v_c > t.v_c && noisy.v_c <= t.v_c * cfg.max_scale);
        // CADHD scales with the h ratio.
        assert!(noisy.c_c > t.c_c && noisy.c_c <= t.c_c * cfg.max_scale);
        // Absurd noise cannot push past the ceiling.
        let wild = calibrate_thresholds(&[1e6; 32], &[1e6; 32], &t, &cfg).unwrap();
        assert_eq!(wild.h_c, t.h_c * cfg.max_scale);
        assert_eq!(wild.v_c, t.v_c * cfg.max_scale);
    }

    #[test]
    fn drift_guard_refuses_a_ramping_warmup() {
        let cfg = CalibrationConfig::adaptive().with_warmup_windows(16);
        let mut cal = Calibrator::new(cfg, trained());
        // h_f ramps through warmup: a slow attack trying to poison its
        // own baseline. Values are a visible fraction of h_c = 2.0.
        for i in 0..16 {
            let h = 0.2 + 0.15 * i as f64;
            assert!(cal.observe(h, Some(0.05)).is_none());
        }
        match cal.state() {
            CalibrationState::Refused { reason } => {
                assert!(reason.contains("h_dist"), "{reason}")
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        // Refusal is terminal.
        assert!(cal.observe(0.1, Some(0.05)).is_none());
        assert!(matches!(cal.state(), CalibrationState::Refused { .. }));
    }

    #[test]
    fn micro_noise_around_zero_does_not_trip_the_guard() {
        let t = trained();
        let cfg = CalibrationConfig::adaptive();
        // First half exactly zero, second half tiny — ratio is huge but
        // absolute drift is negligible vs the trained threshold.
        let mut h = vec![0.0; 16];
        h.extend(vec![1e-6; 16]);
        assert!(calibrate_thresholds(&h, &[0.01; 32], &t, &cfg).is_ok());
    }

    #[test]
    fn calibration_is_deterministic() {
        let cfg = CalibrationConfig::adaptive().with_warmup_windows(12);
        let run = || {
            let mut cal = Calibrator::new(cfg, trained());
            let mut out = None;
            for i in 0..12 {
                let h = 2.2 + (i as f64 * 0.7).sin().abs();
                let v = 0.55 + (i as f64 * 0.3).cos().abs() * 0.1;
                if let Some(t) = cal.observe(h, Some(v)) {
                    out = Some(t);
                }
            }
            out.expect("warmup completed")
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn blind_windows_still_advance_warmup() {
        let cfg = CalibrationConfig::adaptive().with_warmup_windows(4);
        let mut cal = Calibrator::new(cfg, trained());
        assert!(cal.observe(1.0, None).is_none());
        assert!(cal.observe(1.0, None).is_none());
        assert!(cal.observe(1.0, None).is_none());
        // Fourth window completes warmup even with no v samples at all:
        // v_c stays trained.
        let t = cal.observe(1.0, None).expect("calibrates");
        assert_eq!(t.v_c, trained().v_c);
    }

    #[test]
    fn state_display_forms() {
        assert_eq!(CalibrationState::Disabled.to_string(), "disabled");
        let w = CalibrationState::Warmup { seen: 3, need: 8 };
        assert_eq!(w.to_string(), "warmup 3/8");
        let c = CalibrationState::Calibrated {
            thresholds: trained(),
        };
        assert!(c.to_string().contains("calibrated"));
        let r = CalibrationState::Refused { reason: "x".into() };
        assert!(r.to_string().contains("refused"));
    }
}
