//! Structured detection verdicts.
//!
//! The streaming surface used to collapse every detection into a flat
//! boolean plus a bag of per-window [`Alert`](crate::streaming::Alert)s.
//! That shape loses exactly the information a fusion layer needs: *which*
//! side channel saw *what*, *how far* over its critical value, and *for
//! how long*. This module replaces it with [`Verdict`] — severity,
//! confidence, and the per-channel, per-submodule [`ChannelEvidence`]
//! that justified it — emitted by [`StreamingIds::push`](crate::streaming::StreamingIds::push)
//! (crate::StreamingIds::push) and by the cross-channel
//! [`FusedIds`](crate::fusion::FusedIds).
//!
//! Severity is a property of the *mechanism* that fired (DESIGN.md §15):
//! CADHD creep is advisory (synchronization stress), sustained timing
//! drift is major (a kinetic-timing attack signature), and a vertical
//! distance excursion is critical (the print's content no longer matches
//! the reference). Corroboration across two or more independent side
//! channels escalates one level — the multi-modal argument that a single
//! faulty sensor should not be able to mint a critical alarm on its own.

use crate::discriminator::SubModule;
use serde::{Deserialize, Serialize};

/// How bad a verdict is, ordered: `Advisory < Major < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Synchronization stress (CADHD creep): worth an operator's glance,
    /// not an alarm on its own.
    Advisory,
    /// Sustained timing deviation (filtered `h_dist`): the toolpath is
    /// running off-clock against the reference.
    Major,
    /// Content deviation (filtered `v_dist`), or any lower severity
    /// corroborated by a second independent side channel.
    Critical,
}

impl Severity {
    /// The CEF severity field (0–10 scale) this level maps to; the full
    /// mapping table lives in DESIGN.md §15.
    pub fn cef(self) -> u8 {
        match self {
            Severity::Advisory => 4,
            Severity::Major => 7,
            Severity::Critical => 9,
        }
    }

    /// One step up the scale (`Critical` saturates).
    #[must_use]
    pub fn escalate(self) -> Severity {
        match self {
            Severity::Advisory => Severity::Major,
            _ => Severity::Critical,
        }
    }

    /// The base severity of one discriminator sub-module.
    pub fn of(module: SubModule) -> Severity {
        match module {
            SubModule::CDisp => Severity::Advisory,
            SubModule::HDist => Severity::Major,
            SubModule::VDist => Severity::Critical,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Severity::Advisory => "advisory",
            Severity::Major => "major",
            Severity::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// One sub-module threshold crossing on one side channel, in one
/// detection window — the atom a fused verdict is built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelEvidence {
    /// Side-channel lane label (`"acc"`, `"pwr"`, …). Empty for a
    /// standalone single-lane detector.
    pub channel: String,
    /// Which discriminator sub-module crossed.
    pub module: SubModule,
    /// The observed (filtered) statistic.
    pub value: f64,
    /// The critical value it crossed (post-calibration, if a calibrator
    /// replaced the trained one).
    pub threshold: f64,
    /// The global window index the crossing was observed in.
    pub window: usize,
}

impl ChannelEvidence {
    /// Exceedance score in `[0, 1)`: 0 at the threshold, asymptotically 1
    /// as the observed value dwarfs it. Monotone in the relative margin
    /// `(value − threshold) / threshold`, so it is scale-free across
    /// sub-modules whose statistics have wildly different units.
    pub fn score(&self) -> f64 {
        if !self.value.is_finite() || self.threshold.is_nan() || self.threshold <= 0.0 {
            return 0.0;
        }
        let margin = ((self.value - self.threshold) / self.threshold).max(0.0);
        margin / (margin + 1.0)
    }
}

impl std::fmt::Display for ChannelEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.channel.is_empty() {
            write!(
                f,
                "{}={:.4}/{:.4}@w{}",
                self.module, self.value, self.threshold, self.window
            )
        } else {
            write!(
                f,
                "{}:{}={:.4}/{:.4}@w{}",
                self.channel, self.module, self.value, self.threshold, self.window
            )
        }
    }
}

/// A structured detection verdict: what fired, how sure, how bad, and
/// over which window span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Worst mechanism implicated, escalated on cross-channel
    /// corroboration.
    pub severity: Severity,
    /// Noisy-OR of the per-evidence exceedance scores, in `[0, 1)` —
    /// deterministic arithmetic over the evidence, no randomness.
    pub confidence: f64,
    /// Every threshold crossing that contributed, in observation order.
    pub evidence: Vec<ChannelEvidence>,
    /// Inclusive `(first, last)` global window indices covered: a
    /// debounced verdict spans the windows it waited through.
    pub window_span: (usize, usize),
}

impl Verdict {
    /// The last window of the span (the window the verdict fired in).
    pub fn window(&self) -> usize {
        self.window_span.1
    }

    /// Distinct non-empty channel labels in the evidence.
    pub fn channels(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for e in &self.evidence {
            if !e.channel.is_empty() && !seen.contains(&e.channel.as_str()) {
                seen.push(&e.channel);
            }
        }
        seen
    }

    /// The evidence entry with the highest base severity (ties broken by
    /// observation order) — what CEF egress reports as the signature.
    pub fn dominant(&self) -> Option<&ChannelEvidence> {
        self.evidence
            .iter()
            .max_by(|a, b| Severity::of(a.module).cmp(&Severity::of(b.module)))
    }

    /// Builds a verdict from evidence: severity = max base severity,
    /// escalated one level when ≥ 2 distinct channels corroborate;
    /// confidence = noisy-OR of the evidence scores, with the
    /// corroboration bonus applied on escalation.
    ///
    /// Returns `None` for empty evidence.
    pub fn from_evidence(
        evidence: Vec<ChannelEvidence>,
        window_span: (usize, usize),
        corroboration_boost: f64,
    ) -> Option<Verdict> {
        let base = evidence.iter().map(|e| Severity::of(e.module)).max()?;
        let mut confidence = 1.0 - evidence.iter().map(|e| 1.0 - e.score()).product::<f64>();
        let mut channels: Vec<&str> = Vec::new();
        for e in &evidence {
            if !e.channel.is_empty() && !channels.contains(&e.channel.as_str()) {
                channels.push(&e.channel);
            }
        }
        let severity = if channels.len() >= 2 {
            confidence += corroboration_boost.clamp(0.0, 1.0) * (1.0 - confidence);
            base.escalate()
        } else {
            base
        };
        Some(Verdict {
            severity,
            confidence: confidence.clamp(0.0, 1.0),
            evidence,
            window_span,
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.evidence.iter().map(|e| e.to_string()).collect();
        write!(
            f,
            "{} (conf {:.2}) w{}-{} [{}]",
            self.severity,
            self.confidence,
            self.window_span.0,
            self.window_span.1,
            parts.join("; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        channel: &str,
        module: SubModule,
        value: f64,
        threshold: f64,
        window: usize,
    ) -> ChannelEvidence {
        ChannelEvidence {
            channel: channel.to_string(),
            module,
            value,
            threshold,
            window,
        }
    }

    #[test]
    fn severity_ordering_and_cef() {
        assert!(Severity::Advisory < Severity::Major);
        assert!(Severity::Major < Severity::Critical);
        assert_eq!(Severity::Advisory.cef(), 4);
        assert_eq!(Severity::Major.cef(), 7);
        assert_eq!(Severity::Critical.cef(), 9);
        assert_eq!(Severity::Critical.escalate(), Severity::Critical);
        assert_eq!(Severity::of(SubModule::VDist), Severity::Critical);
    }

    #[test]
    fn score_is_zero_at_threshold_and_grows() {
        let at = ev("", SubModule::VDist, 1.0, 1.0, 0);
        assert_eq!(at.score(), 0.0);
        let over = ev("", SubModule::VDist, 2.0, 1.0, 0);
        assert!((over.score() - 0.5).abs() < 1e-12);
        let way_over = ev("", SubModule::VDist, 100.0, 1.0, 0);
        assert!(way_over.score() > 0.98 && way_over.score() < 1.0);
        let bad = ev("", SubModule::VDist, f64::NAN, 1.0, 0);
        assert_eq!(bad.score(), 0.0);
        let degenerate = ev("", SubModule::VDist, 1.0, 0.0, 0);
        assert_eq!(degenerate.score(), 0.0);
    }

    #[test]
    fn single_channel_keeps_base_severity() {
        let v =
            Verdict::from_evidence(vec![ev("acc", SubModule::HDist, 2.0, 1.0, 5)], (5, 5), 0.25)
                .unwrap();
        assert_eq!(v.severity, Severity::Major);
        assert!((v.confidence - 0.5).abs() < 1e-12);
        assert_eq!(v.window(), 5);
        assert_eq!(v.channels(), vec!["acc"]);
    }

    #[test]
    fn corroboration_escalates_and_boosts() {
        let lone =
            Verdict::from_evidence(vec![ev("acc", SubModule::HDist, 2.0, 1.0, 5)], (5, 5), 0.25)
                .unwrap();
        let both = Verdict::from_evidence(
            vec![
                ev("acc", SubModule::HDist, 2.0, 1.0, 5),
                ev("pwr", SubModule::HDist, 2.0, 1.0, 5),
            ],
            (5, 5),
            0.25,
        )
        .unwrap();
        assert_eq!(both.severity, Severity::Critical);
        assert!(both.confidence > lone.confidence);
        assert!(both.confidence <= 1.0);
    }

    #[test]
    fn dominant_picks_highest_base_severity() {
        let v = Verdict::from_evidence(
            vec![
                ev("acc", SubModule::CDisp, 9.0, 1.0, 3),
                ev("acc", SubModule::VDist, 1.1, 1.0, 3),
            ],
            (3, 3),
            0.0,
        )
        .unwrap();
        assert_eq!(v.dominant().unwrap().module, SubModule::VDist);
        // Severity from the v_dist crossing, no escalation (one channel).
        assert_eq!(v.severity, Severity::Critical);
    }

    #[test]
    fn empty_evidence_yields_no_verdict() {
        assert!(Verdict::from_evidence(Vec::new(), (0, 0), 0.25).is_none());
    }

    #[test]
    fn display_forms() {
        let v = Verdict::from_evidence(vec![ev("pwr", SubModule::VDist, 2.0, 1.0, 7)], (6, 7), 0.0)
            .unwrap();
        let text = v.to_string();
        assert!(text.contains("critical"), "{text}");
        assert!(text.contains("pwr:v_dist"), "{text}");
        assert!(text.contains("w6-7"), "{text}");
    }
}
